//! Distance computation cost: the paper's core efficiency claim is that
//! `BDist` (and even the positional optimistic bound) is computable in
//! `O(|T1| + |T2|)`, orders of magnitude cheaper than the Zhang–Shasha
//! `O(|T1|·|T2|·…)` edit distance — this bench quantifies the gap across
//! tree sizes 25 / 50 / 100 / 200.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treesim_core::{BranchVocab, PositionalVector};
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::{zhang_shasha, TreeInfo, UnitCost, ZsWorkspace};
use treesim_tree::{Forest, TreeId};

fn pair_of_size(size: f64) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(4.0, 0.5),
        size: Normal::new(size, 2.0),
        label_count: 8,
        decay: 0.05,
        seed_count: 1,
        tree_count: 2,
        rng_seed: size as u64 ^ 0xd157,
    })
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_cost");
    group.sample_size(30);
    for size in [25.0, 50.0, 100.0, 200.0] {
        let forest = pair_of_size(size);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));

        // Zhang–Shasha with precomputed infos (the refinement-step cost).
        let info1 = TreeInfo::new(t1);
        let info2 = TreeInfo::new(t2);
        group.bench_with_input(
            BenchmarkId::new("zhang_shasha", size as u64),
            &size,
            |b, _| {
                let mut workspace = ZsWorkspace::new();
                b.iter(|| {
                    black_box(zhang_shasha(
                        black_box(&info1),
                        black_box(&info2),
                        &UnitCost,
                        &mut workspace,
                    ))
                })
            },
        );

        // Plain binary branch distance on prebuilt vectors.
        let mut vocab = BranchVocab::new(2);
        let v1 = PositionalVector::build(t1, &mut vocab);
        let v2 = PositionalVector::build(t2, &mut vocab);
        group.bench_with_input(BenchmarkId::new("bdist", size as u64), &size, |b, _| {
            b.iter(|| black_box(v1.bdist(black_box(&v2))))
        });

        // The positional optimistic bound (binary search over PosBDist).
        group.bench_with_input(
            BenchmarkId::new("optimistic_bound", size as u64),
            &size,
            |b, _| b.iter(|| black_box(v1.optimistic_bound(black_box(&v2)))),
        );

        // Vectorization cost (per comparison when done from scratch).
        group.bench_with_input(BenchmarkId::new("vectorize", size as u64), &size, |b, _| {
            b.iter(|| {
                let mut vocab = BranchVocab::new(2);
                let a = PositionalVector::build(black_box(t1), &mut vocab);
                let b2 = PositionalVector::build(black_box(t2), &mut vocab);
                black_box(a.bdist(&b2))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
