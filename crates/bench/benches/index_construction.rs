//! Vector-construction throughput (Algorithm 1): building the inverted file
//! index and materializing positional vectors is `O(Σ|Tᵢ|)`; this bench
//! verifies the linear scaling over dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use treesim_core::InvertedFileIndex;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::{BiBranchFilter, BiBranchMode, HistogramFilter};
use treesim_tree::Forest;

fn dataset(trees: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(4.0, 0.5),
        size: Normal::new(50.0, 2.0),
        label_count: 8,
        decay: 0.05,
        seed_count: 10.min(trees),
        tree_count: trees,
        rng_seed: trees as u64 ^ 0x1f1,
    })
}

fn bench_index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_construction");
    group.sample_size(10);
    for trees in [100usize, 400, 1000] {
        let forest = dataset(trees);
        let total_nodes = forest.stats().total_nodes as u64;
        group.throughput(Throughput::Elements(total_nodes));

        group.bench_with_input(BenchmarkId::new("ifi_build_q2", trees), &trees, |b, _| {
            b.iter(|| black_box(InvertedFileIndex::build(black_box(&forest), 2)))
        });

        group.bench_with_input(BenchmarkId::new("ifi_build_q3", trees), &trees, |b, _| {
            b.iter(|| black_box(InvertedFileIndex::build(black_box(&forest), 3)))
        });

        group.bench_with_input(
            BenchmarkId::new("bibranch_filter_build", trees),
            &trees,
            |b, _| {
                b.iter(|| {
                    black_box(BiBranchFilter::build(
                        black_box(&forest),
                        2,
                        BiBranchMode::Positional,
                    ))
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("histogram_filter_build", trees),
            &trees,
            |b, _| b.iter(|| black_box(HistogramFilter::build(black_box(&forest)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_index_construction);
criterion_main!(benches);
