//! Positional matching micro-bench: the convex greedy fast path versus
//! Kuhn's exact augmenting-path matching, over list lengths and windows.
//! (Ablation for the design note in DESIGN.md §4 — exact matching is
//! required for correctness; this measures what the fast path saves.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use treesim_core::matching::{max_matching, Pos};

/// Co-sorted lists (ancestor-free): hits the greedy fast path.
fn convex_lists(n: usize, seed: u64) -> (Vec<Pos>, Vec<Pos>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let make = |rng: &mut StdRng| {
        let mut cursor = (1u32, 1u32);
        (0..n)
            .map(|_| {
                cursor.0 += rng.random_range(1..4);
                cursor.1 += rng.random_range(1..4);
                cursor
            })
            .collect::<Vec<Pos>>()
    };
    (make(&mut rng), make(&mut rng))
}

/// Lists with inverted postorders (nested occurrences): forces Kuhn.
fn nested_lists(n: usize, seed: u64) -> (Vec<Pos>, Vec<Pos>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let make = |rng: &mut StdRng| {
        (0..n)
            .map(|i| (i as u32 + 1, (2 * n - i) as u32 + rng.random_range(0..3)))
            .collect::<Vec<Pos>>()
    };
    (make(&mut rng), make(&mut rng))
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("positional_matching");
    for n in [8usize, 32, 128] {
        let (cx, cy) = convex_lists(n, n as u64);
        group.bench_with_input(BenchmarkId::new("greedy_convex", n), &n, |b, _| {
            b.iter(|| black_box(max_matching(black_box(&cx), black_box(&cy), 5)))
        });
        let (nx, ny) = nested_lists(n, n as u64);
        group.bench_with_input(BenchmarkId::new("kuhn_exact", n), &n, |b, _| {
            b.iter(|| black_box(max_matching(black_box(&nx), black_box(&ny), 5)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
