//! End-to-end query latency: k-NN and range queries through the
//! filter-and-refine engine with each filter, against sequential scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::{BiBranchFilter, BiBranchMode, HistogramFilter, NoFilter, SearchEngine};
use treesim_tree::{Forest, TreeId};

fn dataset() -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(4.0, 0.5),
        size: Normal::new(50.0, 2.0),
        label_count: 8,
        decay: 0.05,
        seed_count: 10,
        tree_count: 300,
        rng_seed: 0x9e,
    })
}

fn bench_queries(c: &mut Criterion) {
    let forest = dataset();
    let query = forest.tree(TreeId(42));
    let tau = 8u32;
    let k = 5usize;

    let bibranch = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let bibranch_plain = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Plain),
    );
    let histogram = SearchEngine::new(&forest, HistogramFilter::build(&forest));
    let sequential = SearchEngine::new(&forest, NoFilter::build(&forest));

    let mut group = c.benchmark_group("range_query");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("bibranch", tau), |b| {
        b.iter(|| black_box(bibranch.range(black_box(query), tau)))
    });
    group.bench_function(BenchmarkId::new("bibranch_plain", tau), |b| {
        b.iter(|| black_box(bibranch_plain.range(black_box(query), tau)))
    });
    group.bench_function(BenchmarkId::new("histogram", tau), |b| {
        b.iter(|| black_box(histogram.range(black_box(query), tau)))
    });
    group.bench_function(BenchmarkId::new("sequential", tau), |b| {
        b.iter(|| black_box(sequential.range(black_box(query), tau)))
    });
    group.finish();

    let mut group = c.benchmark_group("knn_query");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("bibranch", k), |b| {
        b.iter(|| black_box(bibranch.knn(black_box(query), k)))
    });
    group.bench_function(BenchmarkId::new("bibranch_plain", k), |b| {
        b.iter(|| black_box(bibranch_plain.knn(black_box(query), k)))
    });
    group.bench_function(BenchmarkId::new("histogram", k), |b| {
        b.iter(|| black_box(histogram.knn(black_box(query), k)))
    });
    group.bench_function(BenchmarkId::new("sequential", k), |b| {
        b.iter(|| black_box(sequential.knn(black_box(query), k)))
    });
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
