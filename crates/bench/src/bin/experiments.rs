//! Regenerates the figures of the SIGMOD 2005 evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [FIGURE...] [--full] [--markdown PATH] [--metrics-out PATH]
//!
//! FIGURE        fig7 … fig15, or "all" (default: all)
//! --full        the paper's scale (2000 trees, 100 queries); default is a
//!               quick scale that finishes in minutes
//! --markdown    also append the results as Markdown to PATH
//! --metrics-out write the run's cascade funnel + full metrics snapshot as
//!               JSON to PATH (the BENCH_cascade.json schema)
//! ```

use std::io::Write;

use treesim_bench::{run_figure, Scale, ABLATIONS, ALL_FIGURES};

fn main() {
    let mut figures: Vec<String> = Vec::new();
    let mut scale = Scale::quick();
    let mut markdown_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::full(),
            "--smoke" => scale = Scale::smoke(),
            "--markdown" => {
                markdown_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--markdown needs a path")),
                );
            }
            "--metrics-out" => {
                metrics_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-out needs a path")),
                );
            }
            "--help" | "-h" => usage(""),
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            "ablations" => figures.extend(ABLATIONS.iter().map(|s| s.to_string())),
            other if other.starts_with("fig") || other.starts_with("ablation") => {
                figures.push(other.to_owned())
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    if figures.is_empty() {
        figures.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    let mut markdown = String::new();
    for figure in &figures {
        let started = std::time::Instant::now();
        match run_figure(figure, &scale) {
            Some(table) => {
                println!("{}", table.render());
                println!("({} completed in {:.1?})\n", figure, started.elapsed());
                markdown.push_str(&table.render_markdown());
            }
            None => eprintln!("unknown figure id: {figure} (expected fig7..fig15 or ablation-*)"),
        }
    }

    if let Some(path) = markdown_path {
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
        write!(file, "{markdown}").expect("write markdown");
        println!("markdown appended to {path}");
    }

    if let Some(path) = metrics_path {
        let report = treesim_bench::cascade_report(&scale, &figures);
        std::fs::write(&path, report.to_string_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("metrics snapshot written to {path}");
    }
}

fn usage(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: experiments [fig7..fig15|ablation-q|ablation-bound|all|ablations]... [--full|--smoke] [--markdown PATH] [--metrics-out PATH]");
    std::process::exit(if message.is_empty() { 0 } else { 2 });
}
