//! Ablations for the design choices DESIGN.md calls out — not part of the
//! paper's figures, but quantifying its two tuning knobs:
//!
//! * **q-level** (§3.4): higher q encodes more structure per branch but
//!   divides by a larger factor `4(q−1)+1`; the paper argues q = 2 is the
//!   sweet spot except on deep trees.
//! * **bound mode** (§4.2): the positional optimistic bound is tighter than
//!   `⌈BDist/5⌉` but costs a binary search over `PosBDist`; stacking the
//!   histogram filter on top (`MaxFilter`) tests whether the baselines add
//!   anything once binary branches are in play.

use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_search::{
    BiBranchFilter, BiBranchMode, HistogramFilter, MaxFilter, PostingsFilter, SearchEngine,
    ShardedEngine, ShardedForest,
};
use treesim_tree::Forest;

use crate::experiments::{estimate_range_radius, sample_queries};
use crate::runner::{run_workload, MethodSummary, QueryMode};
use crate::scale::Scale;
use crate::table::{f2, ms, Table};

fn synthetic(scale: &Scale) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(4.0, 0.5),
        size: Normal::new(50.0, 2.0),
        label_count: 8,
        decay: 0.05,
        seed_count: 10,
        tree_count: scale.dataset_size,
        rng_seed: scale.rng_seed ^ 0xab1,
    })
}

/// Ablation A: branch level q ∈ {2, 3, 4} on synthetic and DBLP data,
/// range + k-NN.
pub fn q_level_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-q",
        "Ablation: branch level q",
        &[
            "dataset", "q", "range %", "knn %", "range ms", "knn ms", "param",
        ],
    );
    let datasets: Vec<(&str, Forest)> = vec![
        ("synthetic", synthetic(scale)),
        ("dblp", crate::experiments::dblp::dblp_forest(scale)),
    ];
    for (name, forest) in &datasets {
        let queries = sample_queries(forest, scale, q_salt(name));
        let (_, tau) = estimate_range_radius(forest, scale, q_salt(name));
        let k = scale.knn_k();
        for q in 2..=4usize {
            let engine = SearchEngine::new(
                forest,
                BiBranchFilter::build(forest, q, BiBranchMode::Positional),
            );
            let range = run_workload(&engine, &queries, QueryMode::Range(tau));
            let knn = run_workload(&engine, &queries, QueryMode::Knn(k));
            table.push_row(vec![
                (*name).to_owned(),
                q.to_string(),
                f2(range.accessed_percent),
                f2(knn.accessed_percent),
                ms(range.total_time()),
                ms(knn.total_time()),
                format!("τ={tau}, k={k}"),
            ]);
        }
    }
    table.push_note(
        "expected: q=2 best or tied on shallow data (DBLP), higher q only helps when deep structure dominates; factor 4(q−1)+1 dilutes the bound as q grows",
    );
    table
}

fn q_salt(name: &str) -> u64 {
    name.bytes().fold(0xa1u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(b as u64)
    })
}

/// Ablation B: bound mode — plain ⌈BDist/5⌉ vs positional propt vs
/// positional stacked with the histogram filter.
pub fn bound_mode_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-bound",
        "Ablation: lower-bound mode (synthetic range queries)",
        &["mode", "accessed %", "result %", "filter ms", "refine ms"],
    );
    let forest = synthetic(scale);
    let queries = sample_queries(&forest, scale, 0xb0);
    let (_, tau) = estimate_range_radius(&forest, scale, 0xb0);

    let plain_engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Plain),
    );
    let plain = run_workload(&plain_engine, &queries, QueryMode::Range(tau));
    drop(plain_engine);

    let positional_engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let positional = run_workload(&positional_engine, &queries, QueryMode::Range(tau));
    drop(positional_engine);

    let stacked_engine = SearchEngine::new(
        &forest,
        MaxFilter {
            first: BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            second: HistogramFilter::build(&forest),
        },
    );
    let stacked = run_workload(&stacked_engine, &queries, QueryMode::Range(tau));

    for summary in [&plain, &positional, &stacked] {
        table.push_row(vec![
            summary.name.to_owned(),
            f2(summary.accessed_percent),
            f2(summary.result_percent),
            ms(summary.filter_time),
            ms(summary.refine_time),
        ]);
    }
    table.push_note(format!(
        "τ={tau}; expected: positional ≤ plain in accesses at slightly higher filter cost; stacking Histo on top should add little once binary branches filter"
    ));
    table
}

/// Ablation C: scalability — index build time and per-query cost as the
/// dataset grows (the paper's "massive datasets" claim, quantified).
pub fn scalability_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-scale",
        "Ablation: dataset-size scaling (synthetic, k-NN k=5)",
        &[
            "trees",
            "build ms",
            "build ms (4 threads)",
            "knn %",
            "knn ms",
            "seq ms",
        ],
    );
    for factor in [1usize, 2, 4] {
        let mut sized = *scale;
        sized.dataset_size = scale.dataset_size * factor;
        let forest = synthetic(&sized);
        let queries = sample_queries(&forest, scale, 0x5ca1e);

        let build_start = std::time::Instant::now();
        let index = treesim_core::InvertedFileIndex::build(&forest, 2);
        let build_serial = build_start.elapsed();
        let build_start = std::time::Instant::now();
        let _ = treesim_core::InvertedFileIndex::build_parallel(&forest, 2, 4);
        let build_parallel = build_start.elapsed();

        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::from_index(&index, BiBranchMode::Positional),
        );
        let knn = run_workload(&engine, &queries, QueryMode::Knn(5));
        drop(engine);
        let sequential = SearchEngine::new(&forest, treesim_search::NoFilter::build(&forest));
        let seq = run_workload(&sequential, &queries, QueryMode::Knn(5));

        table.push_row(vec![
            forest.len().to_string(),
            ms(build_serial),
            ms(build_parallel),
            f2(knn.accessed_percent),
            ms(knn.total_time()),
            ms(seq.total_time()),
        ]);
    }
    table.push_note(
        "expected: build time linear in total nodes; accessed % roughly flat; sequential per-query time linear in dataset size",
    );
    table
}

/// Ablation D: the staged bound cascade — per-stage candidate funnel and
/// batch thread scaling.
///
/// Quantifies the tentpole claim: with the cascade, the expensive `propt`
/// binary search runs only for candidates the O(1) size difference and the
/// `⌈BDist/5⌉` merge could not prune, so final-stage bound computations are
/// **strictly fewer** than the dataset size (the pre-cascade engine computed
/// `propt` for every tree on every query) while results stay identical.
pub fn cascade_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-cascade",
        "Ablation: staged bound cascade (synthetic, positional q=2)",
        &["workload", "stage", "avg bounds", "avg pruned", "ms"],
    );
    let forest = synthetic(scale);
    let query_ids = sample_queries(&forest, scale, 0xca5c);
    let (_, tau) = estimate_range_radius(&forest, scale, 0xca5c);
    let k = scale.knn_k();
    let engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );

    let knn = run_workload(&engine, &query_ids, QueryMode::Knn(k));
    let range = run_workload(&engine, &query_ids, QueryMode::Range(tau));
    for (workload, summary) in [
        (format!("knn k={k}"), &knn),
        (format!("range τ={tau}"), &range),
    ] {
        for stage in &summary.stages {
            table.push_row(vec![
                workload.clone(),
                stage.name.to_owned(),
                f2(stage.avg_evaluated),
                f2(stage.avg_pruned),
                ms(stage.avg_time),
            ]);
        }
        // The same funnel, rendered by AveragedStage's Display impl (the
        // format the CLI prints) so table and CLI reports stay in sync.
        table.push_note(format!(
            "{workload}: {}",
            summary
                .stages
                .iter()
                .map(|stage| stage.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }

    // Batch scaling: identical per-query work, wall-clock divided across
    // the pool.
    let queries: Vec<&treesim_tree::Tree> = query_ids.iter().map(|&id| forest.tree(id)).collect();
    for threads in [1usize, 2, 4] {
        let start = std::time::Instant::now();
        let results = engine.knn_batch_threads(&queries, k, threads);
        let wall = start.elapsed();
        table.push_row(vec![
            format!("knn batch ×{threads}"),
            "all".to_owned(),
            f2(results
                .iter()
                .map(|(_, s)| s.final_stage_evaluated() as f64)
                .sum::<f64>()
                / queries.len().max(1) as f64),
            "-".to_owned(),
            ms(wall),
        ]);
    }

    table.push_note(format!(
        "dataset = {} trees; final-stage (propt) bounds per query must stay below the dataset size — the pre-cascade engine computed propt for all {} trees on every query; batch rows report total wall-clock for {} queries across {} available core(s) (wall-clock only drops with >1 core; per-query results are identical at every thread count)",
        forest.len(),
        forest.len(),
        queries.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    table
}

/// Ablation G: the dense/SIMD kernel paths vs the sparse originals.
///
/// Micro-benchmarks the three `BDist` kernel paths (the sparse SoA merge,
/// the arena lookup with the scalar accumulator, and the explicitly
/// chunked 8-lane accumulator) plus the hot-path dispatch, and the two
/// stage −1 postings merges (k-way heap vs dense scatter), on the same
/// query × dataset sweep — asserting bit-identical checksums across every
/// variant. The engine rows then report the per-stage µs the batched
/// arena-order sweeps actually achieve end to end.
pub fn simd_kernel_ablation(scale: &Scale) -> Table {
    use std::hint::black_box;
    use treesim_core::dense::{shared_mass_lookup_chunked, shared_mass_lookup_scalar};
    use treesim_core::{DenseQuery, InvertedFileIndex, VectorArena};

    let mut table = Table::new(
        "ablation-simd",
        "Ablation: dense/SIMD kernels vs sparse originals (synthetic, q=2)",
        &["kernel", "calls", "total µs", "checksum"],
    );
    let forest = synthetic(scale);
    let index = InvertedFileIndex::build(&forest, 2);
    let arena = VectorArena::from_index(&index);
    let vectors = index.positional_vectors();
    let query_ids = sample_queries(&forest, scale, 0x51d);
    // Query artifacts are built outside the timed loops, as the engine's
    // prepare_query does.
    let dense_queries: Vec<DenseQuery> = query_ids
        .iter()
        .map(|&id| {
            let vector = &vectors[id.index()];
            DenseQuery::new(
                index.vocab().len(),
                vector.iter_counts(),
                u64::from(vector.tree_size()),
            )
        })
        .collect();
    let calls = query_ids.len() * arena.len();

    let mut time_sweep = |name: &str, kernel: &mut dyn FnMut(usize, u32) -> u64| -> u64 {
        let tick = std::time::Instant::now();
        let mut checksum = 0u64;
        for qi in 0..query_ids.len() {
            for raw in 0..arena.len() as u32 {
                checksum = checksum.wrapping_add(black_box(kernel(qi, raw)));
            }
        }
        let elapsed = tick.elapsed();
        table.push_row(vec![
            name.to_owned(),
            calls.to_string(),
            f2(elapsed.as_secs_f64() * 1e6),
            checksum.to_string(),
        ]);
        checksum
    };

    let sparse = time_sweep("bdist sparse SoA merge", &mut |qi, raw| {
        vectors[query_ids[qi].index()].bdist(&vectors[raw as usize])
    });
    let lookup_bdist = |qi: usize, raw: u32, mass: u64| {
        dense_queries[qi].total() + u64::from(arena.tree_size(raw)) - 2 * mass
    };
    let scalar = time_sweep("bdist arena lookup (scalar)", &mut |qi, raw| {
        let (ids, counts) = arena.tree_entries(raw);
        lookup_bdist(
            qi,
            raw,
            shared_mass_lookup_scalar(dense_queries[qi].lookup(), ids, counts),
        )
    });
    let chunked = time_sweep("bdist arena lookup (chunked x8)", &mut |qi, raw| {
        let (ids, counts) = arena.tree_entries(raw);
        lookup_bdist(
            qi,
            raw,
            shared_mass_lookup_chunked(dense_queries[qi].lookup(), ids, counts),
        )
    });
    let dispatch = time_sweep("bdist arena dispatch (hot path)", &mut |qi, raw| {
        arena.bdist(raw, &dense_queries[qi])
    });
    assert_eq!(sparse, scalar, "scalar lookup kernel diverged");
    assert_eq!(sparse, chunked, "chunked lookup kernel diverged");
    assert_eq!(sparse, dispatch, "dispatched kernel diverged");

    // The stage −1 postings merge: k-way heap (the sparse original) vs the
    // dense scatter that replaced it, over the same per-query run sets.
    let runs_for = |qi: usize| {
        vectors[query_ids[qi].index()]
            .iter_counts()
            .map(|(branch, count)| {
                (
                    count,
                    index
                        .postings(branch)
                        .iter()
                        .map(|posting| (posting.tree, posting.count())),
                )
            })
            .collect::<Vec<(u32, _)>>()
    };
    let merge_checksum = |merged: &[(treesim_tree::TreeId, u64)]| -> u64 {
        merged
            .iter()
            .map(|&(tree, mass)| mass.wrapping_mul(u64::from(tree.0) + 1))
            .fold(0u64, u64::wrapping_add)
    };
    let tick = std::time::Instant::now();
    let mut heap_sum = 0u64;
    for qi in 0..query_ids.len() {
        let merged = treesim_core::merge_shared_mass_sparse(black_box(runs_for(qi)));
        heap_sum = heap_sum.wrapping_add(merge_checksum(&merged));
    }
    let heap_time = tick.elapsed();
    table.push_row(vec![
        "postings merge k-way heap".to_owned(),
        query_ids.len().to_string(),
        f2(heap_time.as_secs_f64() * 1e6),
        heap_sum.to_string(),
    ]);
    let tick = std::time::Instant::now();
    let mut scatter_sum = 0u64;
    for qi in 0..query_ids.len() {
        let merged = treesim_core::merge_shared_mass(arena.len(), black_box(runs_for(qi)));
        scatter_sum = scatter_sum.wrapping_add(merge_checksum(&merged));
    }
    let scatter_time = tick.elapsed();
    table.push_row(vec![
        "postings merge dense scatter".to_owned(),
        query_ids.len().to_string(),
        f2(scatter_time.as_secs_f64() * 1e6),
        scatter_sum.to_string(),
    ]);
    assert_eq!(heap_sum, scatter_sum, "scatter merge diverged");

    // End to end: the per-stage µs the batched arena-order sweeps achieve
    // through the full cascade (the numbers the kernel deltas must move).
    let engine = SearchEngine::new(&forest, PostingsFilter::build(&forest, 2));
    let (_, tau) = estimate_range_radius(&forest, scale, 0x51d);
    let k = scale.knn_k();
    let knn = run_workload(&engine, &query_ids, QueryMode::Knn(k));
    let range = run_workload(&engine, &query_ids, QueryMode::Range(tau));
    for (workload, summary) in [
        (format!("knn k={k}"), &knn),
        (format!("range τ={tau}"), &range),
    ] {
        for stage in &summary.stages {
            table.push_row(vec![
                format!("stage {} ({workload})", stage.name),
                f2(stage.avg_evaluated),
                f2(stage.avg_time.as_secs_f64() * 1e6),
                "-".to_owned(),
            ]);
        }
        table.push_note(format!(
            "{workload} per-stage µs: {}",
            summary
                .stages
                .iter()
                .map(|stage| format!("{} {:.2}", stage.name, stage.avg_time.as_secs_f64() * 1e6))
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    table.push_note(format!(
        "all kernel variants are asserted bit-identical (equal checksums); the hot-path dispatch compiled to the {} kernel in this build (simd feature {}); merge rows time one whole k-way merge per query",
        if treesim_core::dense::SIMD_DISPATCH {
            "chunked 8-lane"
        } else {
            "scalar"
        },
        if treesim_core::dense::SIMD_DISPATCH {
            "on"
        } else {
            "off"
        },
    ));
    table
}

/// One table row per cascade stage of `summary`.
fn push_funnel_rows(table: &mut Table, engine: &str, workload: &str, summary: &MethodSummary) {
    for stage in &summary.stages {
        table.push_row(vec![
            engine.to_owned(),
            workload.to_owned(),
            stage.name.to_owned(),
            f2(stage.avg_evaluated),
            f2(stage.avg_pruned),
            ms(stage.avg_time),
        ]);
    }
}

/// Ablation E: the inverted-list stage −1 candidate generator, and shard
/// scaling.
///
/// Side-by-side funnels of the plain positional cascade (size → bdist →
/// propt) and the postings-fronted cascade (postings → size → bdist →
/// propt) on the same workload. Because the stage −1 bound equals the
/// exact BDist bound and runs *first*, every candidate it prunes never
/// reaches the `bdist` merge: `bdist` avg bounds must not exceed the
/// plain cascade's, with identical results. The shard rows then answer
/// the same k-NN workload through [`ShardedEngine`] at S ∈ {1, 2, 4},
/// reporting wall-clock for the whole query set (per-query work is
/// identical; only wall-clock drops with more cores).
pub fn postings_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-postings",
        "Ablation: inverted-list stage -1 (postings) and shard scaling",
        &[
            "engine",
            "workload",
            "stage",
            "avg bounds",
            "avg pruned",
            "ms",
        ],
    );
    let forest = synthetic(scale);
    let query_ids = sample_queries(&forest, scale, 0x9057);
    let (_, tau) = estimate_range_radius(&forest, scale, 0x9057);
    let k = scale.knn_k();

    let bibranch_engine = SearchEngine::new(
        &forest,
        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
    );
    let postings_engine = SearchEngine::new(&forest, PostingsFilter::build(&forest, 2));
    for (workload, mode) in [
        (format!("knn k={k}"), QueryMode::Knn(k)),
        (format!("range τ={tau}"), QueryMode::Range(tau)),
    ] {
        let plain = run_workload(&bibranch_engine, &query_ids, mode);
        let fronted = run_workload(&postings_engine, &query_ids, mode);
        push_funnel_rows(&mut table, "BiBranch", &workload, &plain);
        push_funnel_rows(&mut table, "Postings", &workload, &fronted);
    }

    // Shard scaling: identical answers, wall-clock split across workers.
    let queries: Vec<&treesim_tree::Tree> = query_ids.iter().map(|&id| forest.tree(id)).collect();
    let reference: Vec<_> = queries
        .iter()
        .map(|q| postings_engine.knn(q, k).0)
        .collect();
    for shards in [1usize, 2, 4] {
        let sharded_forest = ShardedForest::split(&forest, shards);
        let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
        let start = std::time::Instant::now();
        let answers: Vec<_> = queries.iter().map(|q| sharded.knn(q, k).0).collect();
        let wall = start.elapsed();
        assert_eq!(answers, reference, "sharded results diverged at S={shards}");
        table.push_row(vec![
            format!("sharded ×{shards}"),
            format!("knn k={k}"),
            "all".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            ms(wall),
        ]);
    }

    table.push_note(format!(
        "dataset = {} trees; stage -1 prunes before the ⌈BDist/5⌉ merge, so the Postings engine's bdist avg bounds must not exceed BiBranch's; sharded rows are total wall-clock for {} k-NN queries, results identical at every S ({} core(s) available)",
        forest.len(),
        queries.len(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    ));
    table
}

/// Label-skewed synthetic data: many labels, aggressive decay mutation, so
/// per-tree label histograms are discriminative (the regime where the
/// histogram bound can pay for itself).
fn label_skewed(scale: &Scale) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(3.0, 0.8),
        size: Normal::new(30.0, 5.0),
        label_count: 64,
        decay: 0.4,
        seed_count: 6,
        tree_count: scale.dataset_size,
        rng_seed: scale.rng_seed ^ 0x5eed,
    })
}

/// Ablation F: the label-histogram bound as a built-in cascade stage.
///
/// [`PostingsFilter::with_histogram`] inserts a `histo` stage between
/// `size` and `bdist`. On label-skewed data this measures how many
/// candidates the O(bins) histogram intersection removes before the more
/// expensive `bdist` merge runs — the evidence for (or against) wiring it
/// into the default cascade (recorded in EXPERIMENTS.md).
pub fn histo_stage_ablation(scale: &Scale) -> Table {
    let mut table = Table::new(
        "ablation-histo",
        "Ablation: label-histogram stage on label-skewed data",
        &[
            "engine",
            "workload",
            "stage",
            "avg bounds",
            "avg pruned",
            "ms",
        ],
    );
    let forest = label_skewed(scale);
    let query_ids = sample_queries(&forest, scale, 0x815);
    let (_, tau) = estimate_range_radius(&forest, scale, 0x815);
    let k = scale.knn_k();

    let plain_engine = SearchEngine::new(&forest, PostingsFilter::build(&forest, 2));
    let histo_engine = SearchEngine::new(&forest, PostingsFilter::with_histogram(&forest, 2));
    for (workload, mode) in [
        (format!("knn k={k}"), QueryMode::Knn(k)),
        (format!("range τ={tau}"), QueryMode::Range(tau)),
    ] {
        let plain = run_workload(&plain_engine, &query_ids, mode);
        let with_histo = run_workload(&histo_engine, &query_ids, mode);
        push_funnel_rows(&mut table, "Postings", &workload, &plain);
        push_funnel_rows(&mut table, "Postings+histo", &workload, &with_histo);
    }
    table.push_note(format!(
        "dataset = {} trees (L64 D0.4 — label-skewed); the histo stage sits between size and bdist: its avg pruned column is the work the bdist merge is spared; verdict recorded in EXPERIMENTS.md",
        forest.len()
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_ablation_smoke() {
        let table = q_level_ablation(&Scale::smoke());
        assert_eq!(table.rows.len(), 6);
    }

    #[test]
    fn scalability_ablation_smoke() {
        let table = scalability_ablation(&Scale::smoke());
        assert_eq!(table.rows.len(), 3);
        // Dataset sizes multiply.
        let n0: usize = table.rows[0][0].parse().unwrap();
        let n2: usize = table.rows[2][0].parse().unwrap();
        assert_eq!(n2, 4 * n0);
    }

    #[test]
    fn bound_ablation_smoke() {
        let table = bound_mode_ablation(&Scale::smoke());
        assert_eq!(table.rows.len(), 3);
        // Positional must never access more than plain.
        let plain: f64 = table.rows[0][1].parse().unwrap();
        let positional: f64 = table.rows[1][1].parse().unwrap();
        let stacked: f64 = table.rows[2][1].parse().unwrap();
        assert!(positional <= plain + 1e-9);
        assert!(stacked <= positional + 1e-9);
    }

    #[test]
    fn postings_ablation_demonstrates_bdist_savings() {
        let table = postings_ablation(&Scale::smoke());
        // 2 workloads × (3 BiBranch stages + 4 Postings stages) + 3 shard rows.
        assert_eq!(table.rows.len(), 17);
        // Range workload (deterministic sweep): the stage −1 generator
        // prunes before the ⌈BDist/5⌉ merge, so the Postings engine
        // evaluates strictly fewer bdist bounds than the plain cascade.
        let bdist = |engine: &str, workload_prefix: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == engine && r[1].starts_with(workload_prefix) && r[2] == "bdist")
                .expect("bdist row present")[3]
                .parse()
                .unwrap()
        };
        let plain = bdist("BiBranch", "range");
        let fronted = bdist("Postings", "range");
        assert!(
            fronted < plain,
            "postings saved no bdist work: {fronted} vs {plain}"
        );
        // The shard rows cover S = 1, 2, 4 (result equality is asserted
        // inside postings_ablation itself).
        let shard_rows = table
            .rows
            .iter()
            .filter(|r| r[0].starts_with("sharded"))
            .count();
        assert_eq!(shard_rows, 3);
    }

    #[test]
    fn histo_ablation_measures_the_extra_stage() {
        let table = histo_stage_ablation(&Scale::smoke());
        // 2 workloads × (4 + 5 stages).
        assert_eq!(table.rows.len(), 18);
        let stages = |engine: &str, workload_prefix: &str| -> Vec<String> {
            table
                .rows
                .iter()
                .filter(|r| r[0] == engine && r[1].starts_with(workload_prefix))
                .map(|r| r[2].clone())
                .collect()
        };
        assert_eq!(
            stages("Postings+histo", "range"),
            vec!["postings", "size", "histo", "bdist", "propt"]
        );
        // On the deterministic range sweep the histo stage can only spare
        // bdist work, never add to it.
        let bdist = |engine: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == engine && r[1].starts_with("range") && r[2] == "bdist")
                .expect("bdist row present")[3]
                .parse()
                .unwrap()
        };
        assert!(bdist("Postings+histo") <= bdist("Postings") + 1e-9);
    }

    #[test]
    fn simd_ablation_kernels_are_bit_identical() {
        let table = simd_kernel_ablation(&Scale::smoke());
        // 4 bdist kernel rows + 2 merge rows + 2 workloads × 4 postings
        // cascade stages.
        assert_eq!(table.rows.len(), 14);
        // Bit-identity across every bdist kernel path: equal checksums
        // (the function itself asserts; the table must show it too).
        let checksums: Vec<&String> = table.rows.iter().take(4).map(|row| &row[3]).collect();
        assert!(checksums.iter().all(|&c| c == checksums[0]));
        // …and across the two postings merges.
        assert_eq!(table.rows[4][3], table.rows[5][3]);
        // The per-stage µs deltas ride in the notes, plus the dispatch note.
        assert!(table.notes.iter().any(|n| n.contains("per-stage µs")));
        assert!(table.notes.iter().any(|n| n.contains("bit-identical")));
    }

    #[test]
    fn cascade_ablation_demonstrates_savings() {
        let scale = Scale::smoke();
        let table = cascade_ablation(&scale);
        // 3 cascade stages × 2 workloads + 3 batch rows.
        assert_eq!(table.rows.len(), 9);
        // The funnel narrows: stage s+1 never evaluates more bounds than
        // stage s, and the final (propt) stage evaluates strictly fewer
        // than the size stage did — i.e. strictly fewer propt computations
        // than the pre-cascade engine, which bounded every tree.
        for workload in 0..2 {
            let base = workload * 3;
            let evaluated: Vec<f64> = (base..base + 3)
                .map(|r| table.rows[r][2].parse().unwrap())
                .collect();
            assert!(evaluated[1] <= evaluated[0]);
            assert!(evaluated[2] <= evaluated[1]);
            assert!(
                evaluated[2] < evaluated[0],
                "cascade saved no propt work: {evaluated:?}"
            );
        }
    }
}
