//! Figures 13–14: query-parameter sweeps on the DBLP-style dataset (§5.2).
//!
//! One dataset of `scale.dataset_size` bibliographic records (the paper
//! samples 2000 real DBLP records; see DESIGN.md §5 for the substitution).
//! Figure 13 varies k over {5,7,10,12,15,17,20}; Figure 14 varies the range
//! radius over {1,2,3,4,5,7,10}.
//!
//! Expected shapes: BiBranch accesses 1–3× less data than Histo for k-NN
//! and clearly wins for ranges below the mean distance (≈5); as τ → 10 the
//! result set approaches the whole dataset and the filters converge. The
//! advantage is smaller than on the synthetic data because the trees are
//! shallow and small (the binary branch universe is less discriminative).

use treesim_datagen::dblp::{generate_forest, DblpConfig};
use treesim_tree::Forest;

use crate::experiments::{
    annotate_scale, method_row, run_all_methods, sample_queries, METHOD_HEADERS,
};
use crate::runner::QueryMode;
use crate::scale::Scale;
use crate::table::Table;

/// Builds the DBLP-style dataset for the given scale.
pub fn dblp_forest(scale: &Scale) -> Forest {
    generate_forest(&DblpConfig::with_count(
        scale.dataset_size,
        scale.rng_seed ^ 0xdb,
    ))
}

/// Figure 13: k-NN on DBLP with k ∈ {5, 7, 10, 12, 15, 17, 20}.
pub fn knn_sweep(scale: &Scale) -> Table {
    let forest = dblp_forest(scale);
    let queries = sample_queries(&forest, scale, 0xf13);
    let mut table = Table::new("fig13", "k-NN Searches on DBLP", &METHOD_HEADERS);
    for k in [5usize, 7, 10, 12, 15, 17, 20] {
        let outcome = run_all_methods(&forest, &queries, QueryMode::Knn(k));
        table.push_row(method_row(&k.to_string(), &outcome, &format!("k={k}")));
    }
    annotate_scale(&mut table, scale);
    let stats = forest.stats();
    table.push_note(format!(
        "DBLP-style records: avg size {:.2}, avg height {:.2} (paper: 10.15 / 2.902); paper: BiBranch 1–3× better than Histo, ≈1/6 of sequential time",
        stats.avg_size, stats.avg_height
    ));
    table
}

/// Figure 14: range queries on DBLP with τ ∈ {1, 2, 3, 4, 5, 7, 10}.
pub fn range_sweep(scale: &Scale) -> Table {
    let forest = dblp_forest(scale);
    let queries = sample_queries(&forest, scale, 0xf14);
    let mut table = Table::new("fig14", "Range Searches on DBLP", &METHOD_HEADERS);
    for tau in [1u32, 2, 3, 4, 5, 7, 10] {
        let outcome = run_all_methods(&forest, &queries, QueryMode::Range(tau));
        table.push_row(method_row(&tau.to_string(), &outcome, &format!("τ={tau}")));
    }
    annotate_scale(&mut table, scale);
    table.push_note(
        "paper: clear BiBranch win below the mean distance (≈5.03); advantage shrinks as τ→10 because the result set approaches the dataset",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knn_sweep_smoke() {
        let table = knn_sweep(&Scale::smoke());
        assert_eq!(table.id, "fig13");
        assert_eq!(table.rows.len(), 7);
    }

    #[test]
    fn range_sweep_smoke() {
        let table = range_sweep(&Scale::smoke());
        assert_eq!(table.id, "fig14");
        assert_eq!(table.rows.len(), 7);
        // Result % grows (weakly) with τ.
        let results: Vec<f64> = table.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(results.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }
}
