//! Figure 15: the cumulative distribution of data over distance, comparing
//! the competing lower bounds against the true edit distance (§5.3).
//!
//! For every (query, data) pair, five values are computed: the exact edit
//! distance, the histogram lower bound and the plain binary branch lower
//! bounds at levels q ∈ {2, 3, 4} (`⌈BDist_q / (4(q−1)+1)⌉`). The table
//! reports, for each distance threshold 1..=12, the percentage of data
//! whose value is ≤ the threshold.
//!
//! Reading the shape: the Edit row is the ground truth; a *better* lower
//! bound has a *lower* curve (closer to Edit), because overestimating
//! closeness (high curve) admits false positives. The paper finds
//! BiBranch(2) closest to Edit everywhere, BiBranch(3)/(4) better than
//! Histo only below distance 3 — multi-level branches are too
//! discriminative for shallow DBLP records.

use treesim_core::{BranchVector, BranchVocab};
use treesim_edit::{TreeInfo, UnitCost, ZsWorkspace};
use treesim_search::HistogramFilter;
use treesim_tree::Forest;

use crate::experiments::sample_queries;
use crate::scale::Scale;
use crate::table::{f2, Table};

/// Maximum distance threshold reported (the paper plots 1..=12).
pub const MAX_DISTANCE: u64 = 12;

/// Per-measure cumulative distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionRow {
    /// Measure name.
    pub measure: &'static str,
    /// `cumulative[d-1]` = % of pairs with value ≤ d, for d = 1..=12.
    pub cumulative: Vec<f64>,
}

/// Computes Figure 15 on the DBLP-style dataset.
pub fn distance_distribution(scale: &Scale) -> Table {
    let forest = crate::experiments::dblp::dblp_forest(scale);
    let queries = sample_queries(&forest, scale, 0xf15);
    let rows = compute_rows(&forest, &queries);

    let mut headers: Vec<String> = vec!["measure".to_owned()];
    headers.extend((1..=MAX_DISTANCE).map(|d| format!("≤{d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "fig15",
        "Data Distribution on Distance (DBLP)",
        &header_refs,
    );
    for row in rows {
        let mut cells = vec![row.measure.to_owned()];
        cells.extend(row.cumulative.iter().map(|&p| f2(p)));
        table.push_row(cells);
    }
    table.push_note(format!(
        "{} queries × {} records; lower curves = tighter bounds (closer to Edit); paper: BiBranch(2) best everywhere, BiBranch(3)/(4) beat Histo only below distance 3",
        queries.len(),
        forest.len()
    ));
    table
}

/// Raw computation, exposed for tests and the facade examples.
pub fn compute_rows(forest: &Forest, queries: &[treesim_tree::TreeId]) -> Vec<DistributionRow> {
    let infos: Vec<TreeInfo> = forest.iter().map(|(_, t)| TreeInfo::new(t)).collect();
    // Space-matched (bucketed) histograms — the same configuration the
    // filter comparison uses (§5's equal-space rule).
    let histograms = HistogramFilter::build(forest);
    let mut vocabs: Vec<BranchVocab> = (2..=4).map(BranchVocab::new).collect();
    let branch_vectors: Vec<Vec<BranchVector>> = vocabs
        .iter_mut()
        .map(|vocab| {
            forest
                .iter()
                .map(|(_, t)| BranchVector::build(t, vocab))
                .collect()
        })
        .collect();

    let measures: [&'static str; 5] =
        ["Edit", "Histo", "BiBranch(2)", "BiBranch(3)", "BiBranch(4)"];
    let mut counts = vec![vec![0u64; MAX_DISTANCE as usize]; measures.len()];
    let mut workspace = ZsWorkspace::new();
    let mut pairs = 0u64;

    for &query_id in queries {
        let query_tree = forest.tree(query_id);
        let query_info = TreeInfo::new(query_tree);
        for (data_id, _) in forest.iter() {
            pairs += 1;
            let edist = treesim_edit::zhang_shasha(
                &query_info,
                &infos[data_id.index()],
                &UnitCost,
                &mut workspace,
            );
            let histo = histograms
                .vector(query_id)
                .lower_bound(histograms.vector(data_id));
            let values = [
                edist,
                histo,
                branch_vectors[0][query_id.index()]
                    .edit_lower_bound(&branch_vectors[0][data_id.index()]),
                branch_vectors[1][query_id.index()]
                    .edit_lower_bound(&branch_vectors[1][data_id.index()]),
                branch_vectors[2][query_id.index()]
                    .edit_lower_bound(&branch_vectors[2][data_id.index()]),
            ];
            for (measure_index, &value) in values.iter().enumerate() {
                for d in 1..=MAX_DISTANCE {
                    if value <= d {
                        counts[measure_index][(d - 1) as usize] += 1;
                    }
                }
            }
        }
    }

    measures
        .iter()
        .enumerate()
        .map(|(i, &measure)| DistributionRow {
            measure,
            cumulative: counts[i]
                .iter()
                .map(|&c| c as f64 / pairs.max(1) as f64 * 100.0)
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_rows_are_cumulative_and_ordered() {
        let scale = Scale::smoke();
        let forest = crate::experiments::dblp::dblp_forest(&scale);
        let queries = sample_queries(&forest, &scale, 1);
        let rows = compute_rows(&forest, &queries);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert_eq!(row.cumulative.len(), MAX_DISTANCE as usize);
            // Cumulative: non-decreasing in the threshold.
            assert!(row.cumulative.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        }
        // Every lower bound admits at least as much data as Edit at every
        // threshold (bounds underestimate distance).
        let edit = &rows[0].cumulative;
        for row in &rows[1..] {
            for (lb, e) in row.cumulative.iter().zip(edit) {
                assert!(lb + 1e-9 >= *e, "{} below Edit", row.measure);
            }
        }
    }

    #[test]
    fn table_renders() {
        let table = distance_distribution(&Scale::smoke());
        assert_eq!(table.id, "fig15");
        assert_eq!(table.rows.len(), 5);
        assert!(table.render().contains("BiBranch(2)"));
    }
}
