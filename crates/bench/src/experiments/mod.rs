//! The paper's evaluation, one module per figure group:
//!
//! * [`synthetic`] — Figures 7–12 (sensitivity to fanout, tree size, label
//!   count, for range and k-NN queries);
//! * [`dblp`] — Figures 13–14 (query-parameter sweeps on DBLP-style data);
//! * [`distribution`] — Figure 15 (distance distributions of the competing
//!   lower bounds).

pub mod ablation;
pub mod dblp;
pub mod distribution;
pub mod synthetic;

use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim_datagen::workload;
use treesim_edit::edit_distance;
use treesim_search::{BiBranchFilter, BiBranchMode, HistogramFilter, NoFilter, SearchEngine};
use treesim_tree::{Forest, TreeId};

use crate::runner::{run_workload, MethodSummary, QueryMode};
use crate::scale::Scale;
use crate::table::Table;

/// The three methods compared throughout §5.
#[derive(Debug, Clone)]
pub struct MethodsOutcome {
    /// The paper's binary branch filtration (positional, q = 2).
    pub bibranch: MethodSummary,
    /// The histogram filtration baseline.
    pub histo: MethodSummary,
    /// Sequential scan (no filtering).
    pub sequential: MethodSummary,
}

/// Runs BiBranch, Histo and Sequential over the same workload.
pub fn run_all_methods(forest: &Forest, queries: &[TreeId], mode: QueryMode) -> MethodsOutcome {
    let bibranch_engine = SearchEngine::new(
        forest,
        BiBranchFilter::build(forest, 2, BiBranchMode::Positional),
    );
    let bibranch = run_workload(&bibranch_engine, queries, mode);
    drop(bibranch_engine);

    let histo_engine = SearchEngine::new(forest, HistogramFilter::build(forest));
    let histo = run_workload(&histo_engine, queries, mode);
    drop(histo_engine);

    let sequential_engine = SearchEngine::new(forest, NoFilter::build(forest));
    let sequential = run_workload(&sequential_engine, queries, mode);

    MethodsOutcome {
        bibranch,
        histo,
        sequential,
    }
}

/// Samples the workload queries for a figure.
pub fn sample_queries(forest: &Forest, scale: &Scale, salt: u64) -> Vec<TreeId> {
    let mut rng = StdRng::seed_from_u64(scale.rng_seed ^ salt);
    workload::sample_queries(forest, scale.query_count, &mut rng)
}

/// Estimates the dataset's mean pairwise edit distance by sampling, and
/// derives the paper's range radius τ = mean/5 (at least 1).
pub fn estimate_range_radius(forest: &Forest, scale: &Scale, salt: u64) -> (f64, u32) {
    let mut rng = StdRng::seed_from_u64(scale.rng_seed ^ salt ^ 0xd15);
    let avg = workload::estimate_avg_distance(
        forest,
        scale.distance_sample_pairs,
        &mut rng,
        edit_distance,
    );
    let tau = ((avg / 5.0).round() as u32).max(1);
    (avg, tau)
}

/// Standard headers for the method-comparison tables of Figures 7–14.
pub const METHOD_HEADERS: [&str; 8] = [
    "x",
    "BiBranch %",
    "Histo %",
    "Result %",
    "BiBranch ms",
    "Histo ms",
    "Seq ms",
    "param",
];

/// Formats one sweep point into a row of [`METHOD_HEADERS`] shape.
pub fn method_row(x: &str, outcome: &MethodsOutcome, param: &str) -> Vec<String> {
    use crate::table::{f2, ms};
    vec![
        x.to_owned(),
        f2(outcome.bibranch.accessed_percent),
        f2(outcome.histo.accessed_percent),
        f2(outcome.bibranch.result_percent),
        ms(outcome.bibranch.total_time()),
        ms(outcome.histo.total_time()),
        ms(outcome.sequential.total_time()),
        param.to_owned(),
    ]
}

/// Sanity notes shared by the method tables.
pub fn annotate_scale(table: &mut Table, scale: &Scale) {
    table.push_note(format!(
        "dataset={} trees, {} queries, k={} (0.25%), mean-distance sample={} pairs",
        scale.dataset_size,
        scale.query_count,
        scale.knn_k(),
        scale.distance_sample_pairs
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for i in 0..30 {
            forest
                .parse_bracket(&format!("a(b{} c(d{}) e)", i % 3, i % 5))
                .unwrap();
        }
        forest
    }

    #[test]
    fn run_all_methods_produces_consistent_results() {
        let forest = forest();
        let queries: Vec<TreeId> = (0..4).map(TreeId).collect();
        let outcome = run_all_methods(&forest, &queries, QueryMode::Range(2));
        assert!((outcome.sequential.accessed_percent - 100.0).abs() < 1e-9);
        assert!(outcome.bibranch.accessed_percent <= 100.0);
        // All methods return the same result sets, hence equal result %.
        assert!((outcome.bibranch.result_percent - outcome.histo.result_percent).abs() < 1e-9);
        assert!((outcome.bibranch.result_percent - outcome.sequential.result_percent).abs() < 1e-9);
    }

    #[test]
    fn radius_estimation_is_positive() {
        let forest = forest();
        let scale = Scale::smoke();
        let (avg, tau) = estimate_range_radius(&forest, &scale, 1);
        assert!(avg >= 0.0);
        assert!(tau >= 1);
    }

    #[test]
    fn sampled_queries_are_in_range() {
        let forest = forest();
        let scale = Scale::smoke();
        let queries = sample_queries(&forest, &scale, 2);
        assert_eq!(queries.len(), scale.query_count);
        assert!(queries.iter().all(|q| q.index() < forest.len()));
    }

    #[test]
    fn method_row_shape() {
        let forest = forest();
        let queries: Vec<TreeId> = (0..2).map(TreeId).collect();
        let outcome = run_all_methods(&forest, &queries, QueryMode::Knn(2));
        let row = method_row("4", &outcome, "k=2");
        assert_eq!(row.len(), METHOD_HEADERS.len());
    }
}
