//! Figures 7–12: sensitivity of the filters to dataset parameters on
//! synthetic data (§5.1).
//!
//! Each sweep regenerates the paper's datasets — 2000 trees per setting in
//! full scale — varying one generator parameter while pinning the others at
//! `N{4,0.5} N{50,2} L8 D0.05`, then measures the percentage of accessed
//! data and CPU time for binary branch filtration, histogram filtration and
//! sequential scan, averaged over the sampled queries.
//!
//! Expected shapes (the paper's findings):
//! * BiBranch accesses a small fraction of what Histo accesses for range
//!   queries (up to 70× at tree size 125) and stays ahead for k-NN;
//! * fanout 2 is hardest for both (tall trees, high height variance);
//! * Histo improves with more labels until the label histogram saturates
//!   (~32), then both degrade as the mean distance grows;
//! * sequential time grows quadratically with tree size, filter time is
//!   negligible next to it.

use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};

use crate::experiments::{
    annotate_scale, estimate_range_radius, method_row, run_all_methods, sample_queries,
    METHOD_HEADERS,
};
use crate::runner::QueryMode;
use crate::scale::Scale;
use crate::table::Table;

/// Which query type a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepMode {
    /// Range queries with τ = mean-distance / 5 (Figures 7, 9, 11).
    RangeAvgOverFive,
    /// k-NN with k = 0.25 % of the dataset (Figures 8, 10, 12).
    KnnQuarterPercent,
}

fn base_config(scale: &Scale, salt: u64) -> SyntheticConfig {
    SyntheticConfig {
        fanout: Normal::new(4.0, 0.5),
        size: Normal::new(50.0, 2.0),
        label_count: 8,
        decay: 0.05,
        seed_count: 10,
        tree_count: scale.dataset_size,
        rng_seed: scale.rng_seed ^ salt,
    }
}

fn sweep(
    id: &str,
    title: &str,
    scale: &Scale,
    mode: SweepMode,
    points: Vec<(String, SyntheticConfig)>,
) -> Table {
    let mut table = Table::new(id, title, &METHOD_HEADERS);
    for (x, config) in points {
        let forest = generate(&config);
        let queries = sample_queries(&forest, scale, hash_salt(id, &x));
        let (mode_enum, param) = match mode {
            SweepMode::RangeAvgOverFive => {
                let (avg, tau) = estimate_range_radius(&forest, scale, hash_salt(id, &x));
                (QueryMode::Range(tau), format!("τ={tau} (avg≈{avg:.1})"))
            }
            SweepMode::KnnQuarterPercent => {
                let k = scale.knn_k();
                (QueryMode::Knn(k), format!("k={k}"))
            }
        };
        let outcome = run_all_methods(&forest, &queries, mode_enum);
        table.push_row(method_row(&x, &outcome, &param));
    }
    annotate_scale(&mut table, scale);
    table
}

fn hash_salt(id: &str, x: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    id.hash(&mut hasher);
    x.hash(&mut hasher);
    hasher.finish()
}

/// Figure 7 (range) / Figure 8 (k-NN): fanout mean ∈ {2, 4, 6, 8}.
pub fn fanout_sweep(scale: &Scale, mode: SweepMode) -> Table {
    let (id, title, kind) = match mode {
        SweepMode::RangeAvgOverFive => ("fig7", "Sensitivity to Fanout — Range Queries", "range"),
        SweepMode::KnnQuarterPercent => ("fig8", "Sensitivity to Fanout — k-NN Queries", "knn"),
    };
    let points = [2.0, 4.0, 6.0, 8.0]
        .into_iter()
        .map(|f| {
            let mut config = base_config(scale, 0xfa0);
            config.fanout = Normal::new(f, 0.5);
            (format!("{f}"), config)
        })
        .collect();
    let mut table = sweep(id, title, scale, mode, points);
    table.push_note(format!(
        "workload N{{f,0.5}}N{{50,2}}L8D0.05, {kind} queries; paper: BiBranch ≤3.35% of Histo accesses (range), ≤23.08% (k-NN); worst case at fanout 2"
    ));
    table
}

/// Figure 9 (range) / Figure 10 (k-NN): tree size mean ∈ {25, 50, 75, 125}.
pub fn size_sweep(scale: &Scale, mode: SweepMode) -> Table {
    let (id, title, kind) = match mode {
        SweepMode::RangeAvgOverFive => {
            ("fig9", "Sensitivity to Tree Size — Range Queries", "range")
        }
        SweepMode::KnnQuarterPercent => ("fig10", "Sensitivity to Tree Size — k-NN Queries", "knn"),
    };
    let points = [25.0, 50.0, 75.0, 125.0]
        .into_iter()
        .map(|s| {
            let mut config = base_config(scale, 0x512e);
            config.size = Normal::new(s, 2.0);
            (format!("{s}"), config)
        })
        .collect();
    let mut table = sweep(id, title, scale, mode, points);
    table.push_note(format!(
        "workload N{{4,0.5}}N{{s,2}}L8D0.05, {kind} queries; paper: BiBranch ≈ result size for range queries, up to 70× less access than Histo at size 125; sequential time grows quadratically"
    ));
    table
}

/// Figure 11 (range) / Figure 12 (k-NN): label count ∈ {8, 16, 32, 64}.
pub fn label_sweep(scale: &Scale, mode: SweepMode) -> Table {
    let (id, title, kind) = match mode {
        SweepMode::RangeAvgOverFive => (
            "fig11",
            "Sensitivity to Label Count — Range Queries",
            "range",
        ),
        SweepMode::KnnQuarterPercent => {
            ("fig12", "Sensitivity to Label Count — k-NN Queries", "knn")
        }
    };
    let points = [8u32, 16, 32, 64]
        .into_iter()
        .map(|labels| {
            let mut config = base_config(scale, 0x1ab5);
            config.label_count = labels;
            (labels.to_string(), config)
        })
        .collect();
    let mut table = sweep(id, title, scale, mode, points);
    table.push_note(format!(
        "workload N{{4,0.5}}N{{50,2}}L{{y}}D0.05, {kind} queries; paper: BiBranch ahead everywhere (>20× at 8 labels); Histo improves up to 32 labels then both degrade"
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_sweep_smoke() {
        let table = fanout_sweep(&Scale::smoke(), SweepMode::RangeAvgOverFive);
        assert_eq!(table.id, "fig7");
        assert_eq!(table.rows.len(), 4);
        // Accessed percentages are percentages.
        for row in &table.rows {
            let bibranch: f64 = row[1].parse().unwrap();
            let histo: f64 = row[2].parse().unwrap();
            assert!((0.0..=100.0).contains(&bibranch));
            assert!((0.0..=100.0).contains(&histo));
        }
    }

    #[test]
    fn knn_sweep_smoke() {
        let table = label_sweep(&Scale::smoke(), SweepMode::KnnQuarterPercent);
        assert_eq!(table.id, "fig12");
        assert_eq!(table.rows.len(), 4);
        assert!(table.rows[0][7].starts_with("k="));
    }
}
