//! Experiment harness regenerating every figure of the SIGMOD 2005
//! evaluation (§5), plus shared infrastructure for the Criterion
//! micro-benchmarks.
//!
//! The `experiments` binary drives the figures:
//!
//! ```text
//! cargo run -p treesim-bench --release --bin experiments -- all
//! cargo run -p treesim-bench --release --bin experiments -- fig9 fig10 --full
//! ```
//!
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for a recorded
//! paper-vs-measured comparison.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod runner;
pub mod scale;
pub mod table;

pub use report::cascade_report;
pub use runner::{run_workload, MethodSummary, QueryMode};
pub use scale::Scale;
pub use table::Table;

/// Runs one figure by id ("fig7" … "fig15"). Returns `None` for unknown ids.
pub fn run_figure(id: &str, scale: &Scale) -> Option<Table> {
    use experiments::synthetic::{fanout_sweep, label_sweep, size_sweep, SweepMode};
    let table = match id {
        "fig7" => fanout_sweep(scale, SweepMode::RangeAvgOverFive),
        "fig8" => fanout_sweep(scale, SweepMode::KnnQuarterPercent),
        "fig9" => size_sweep(scale, SweepMode::RangeAvgOverFive),
        "fig10" => size_sweep(scale, SweepMode::KnnQuarterPercent),
        "fig11" => label_sweep(scale, SweepMode::RangeAvgOverFive),
        "fig12" => label_sweep(scale, SweepMode::KnnQuarterPercent),
        "fig13" => experiments::dblp::knn_sweep(scale),
        "fig14" => experiments::dblp::range_sweep(scale),
        "fig15" => experiments::distribution::distance_distribution(scale),
        "ablation-q" => experiments::ablation::q_level_ablation(scale),
        "ablation-bound" => experiments::ablation::bound_mode_ablation(scale),
        "ablation-scale" => experiments::ablation::scalability_ablation(scale),
        "ablation-cascade" => experiments::ablation::cascade_ablation(scale),
        "ablation-postings" => experiments::ablation::postings_ablation(scale),
        "ablation-histo" => experiments::ablation::histo_stage_ablation(scale),
        "ablation-simd" => experiments::ablation::simd_kernel_ablation(scale),
        _ => return None,
    };
    Some(table)
}

/// All figure ids in paper order.
pub const ALL_FIGURES: [&str; 9] = [
    "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
];

/// Extra ablation experiments beyond the paper (design-choice studies).
pub const ABLATIONS: [&str; 7] = [
    "ablation-q",
    "ablation-bound",
    "ablation-scale",
    "ablation-cascade",
    "ablation-postings",
    "ablation-histo",
    "ablation-simd",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig99", &Scale::smoke()).is_none());
    }

    #[test]
    fn all_figures_listed_are_runnable() {
        // Smoke-run the two cheapest figures end to end; the rest share the
        // same code paths and are covered by their module tests.
        for id in ["fig13", "fig15"] {
            let table = run_figure(id, &Scale::smoke()).unwrap();
            assert_eq!(table.id, id);
            assert!(!table.rows.is_empty());
        }
        assert_eq!(ALL_FIGURES.len(), 9);
    }
}
