//! The `BENCH_cascade.json` report: a machine-readable snapshot of the
//! cascade funnel and every metric the run accumulated, written by the
//! `experiments` binary under `--metrics-out PATH`.
//!
//! Schema (`treesim-bench-cascade/v1`):
//!
//! ```json
//! {
//!   "schema": "treesim-bench-cascade/v1",
//!   "scale": { "dataset_size": 60, "query_count": 6, ... },
//!   "figures": ["ablation-cascade"],
//!   "funnel": [ { "stage": "size", "evaluated": 720, "pruned": 310 }, ... ],
//!   "metrics": { "counters": [...], "gauges": [...], "histograms": [...] },
//!   "recorder": { "held": 40, "recorded_total": 640, "wall_us": {...}, ... }
//! }
//! ```
//!
//! `funnel` lists the global `cascade.<stage>.evaluated` / `.pruned`
//! counters in cascade order ([`CASCADE_STAGES`]), keeping only the stages
//! the run actually exercised; `metrics` embeds the full
//! [`MetricsSnapshot`] (so latency histograms like `cascade.propt.us`,
//! `refine.zs.us` and `engine.knn.filter.us` ride along and round-trip via
//! [`MetricsSnapshot::from_json`]). `recorder` summarizes the global query
//! flight recorder at report time: ring occupancy, per-kind query counts,
//! and exact wall-time quantiles over the records still held (the tail of
//! the run — the recorder is a bounded ring, not a full log).

use std::collections::BTreeMap;

use treesim_obs::recorder::FlightRecorder;
use treesim_obs::{Json, MetricsSnapshot};

use crate::scale::Scale;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "treesim-bench-cascade/v1";

/// Every cascade stage name any built-in filter can report, coarsest
/// first — the order the `funnel` array uses. `postings` leads: the
/// inverted-list stage −1 generator runs before every per-candidate
/// bound.
pub const CASCADE_STAGES: [&str; 5] = ["postings", "size", "bdist", "propt", "histo"];

/// Builds the report from the *current* global metrics registry and
/// flight recorder.
pub fn cascade_report(scale: &Scale, figures: &[String]) -> Json {
    let mut report = report_from_snapshot(scale, figures, &treesim_obs::metrics::snapshot());
    if let Json::Obj(entries) = &mut report {
        entries.push((
            "recorder".to_owned(),
            recorder_summary(treesim_obs::recorder::global()),
        ));
    }
    report
}

/// Summarizes a flight recorder: ring occupancy, per-kind counts, and
/// exact wall-time quantiles over the records currently held. Held
/// records are the *tail* of the run (bounded ring), so the quantiles
/// describe recent queries, not necessarily the whole workload.
pub fn recorder_summary(recorder: &FlightRecorder) -> Json {
    let records = recorder.records();
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut batch = 0u64;
    let mut walls: Vec<u64> = Vec::with_capacity(records.len());
    for record in &records {
        *by_kind.entry(record.kind.label()).or_insert(0) += 1;
        if record.batch {
            batch += 1;
        }
        walls.push(record.wall_us);
    }
    walls.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if walls.is_empty() {
            return 0;
        }
        let rank = ((q * walls.len() as f64).ceil() as usize).clamp(1, walls.len());
        walls[rank - 1]
    };
    Json::obj(vec![
        ("capacity", Json::U64(recorder.capacity() as u64)),
        ("held", Json::U64(records.len() as u64)),
        ("recorded_total", Json::U64(recorder.recorded_total())),
        ("batch_queries", Json::U64(batch)),
        (
            "kinds",
            Json::obj(
                by_kind
                    .into_iter()
                    .map(|(kind, count)| (kind, Json::U64(count)))
                    .collect(),
            ),
        ),
        (
            "wall_us",
            Json::obj(vec![
                ("p50", Json::U64(quantile(0.50))),
                ("p90", Json::U64(quantile(0.90))),
                ("p99", Json::U64(quantile(0.99))),
                ("max", Json::U64(walls.last().copied().unwrap_or(0))),
            ]),
        ),
    ])
}

/// Builds the report from an explicit snapshot (deterministic, for tests).
pub fn report_from_snapshot(scale: &Scale, figures: &[String], snapshot: &MetricsSnapshot) -> Json {
    let funnel: Vec<Json> = CASCADE_STAGES
        .iter()
        .filter_map(|stage| {
            let evaluated = snapshot.counter(&format!("cascade.{stage}.evaluated"))?;
            let pruned = snapshot
                .counter(&format!("cascade.{stage}.pruned"))
                .unwrap_or(0);
            Some(Json::obj(vec![
                ("stage", Json::Str((*stage).to_owned())),
                ("evaluated", Json::U64(evaluated)),
                ("pruned", Json::U64(pruned)),
            ]))
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.to_owned())),
        (
            "scale",
            Json::obj(vec![
                ("dataset_size", Json::U64(scale.dataset_size as u64)),
                ("query_count", Json::U64(scale.query_count as u64)),
                (
                    "distance_sample_pairs",
                    Json::U64(scale.distance_sample_pairs as u64),
                ),
                ("rng_seed", Json::U64(scale.rng_seed)),
            ]),
        ),
        (
            "figures",
            Json::Arr(figures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("funnel", Json::Arr(funnel)),
        ("metrics", snapshot.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_workload, QueryMode};
    use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine};
    use treesim_tree::Forest;

    #[test]
    fn report_carries_funnel_and_roundtrips() {
        let mut forest = Forest::new();
        for i in 0..12 {
            forest
                .parse_bracket(&format!("a(b{} c(d) e)", i % 3))
                .unwrap();
        }
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<treesim_tree::TreeId> = (0..3).map(treesim_tree::TreeId).collect();
        run_workload(&engine, &queries, QueryMode::Knn(2));

        let scale = Scale::smoke();
        let figures = vec!["ablation-cascade".to_owned()];
        let report = cascade_report(&scale, &figures);
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some(SCHEMA),
            "schema id"
        );
        assert_eq!(
            report
                .get("scale")
                .and_then(|s| s.get("dataset_size"))
                .and_then(Json::as_u64),
            Some(scale.dataset_size as u64)
        );
        let funnel = report.get("funnel").and_then(Json::as_array).unwrap();
        // The positional cascade ran, so at least size/bdist/propt exist —
        // in cascade order, with a non-increasing evaluated sequence only
        // guaranteed per query, but globally every stage must be present.
        let stages: Vec<&str> = funnel
            .iter()
            .map(|row| row.get("stage").and_then(Json::as_str).unwrap())
            .collect();
        for required in ["size", "bdist", "propt"] {
            assert!(stages.contains(&required), "missing stage {required}");
        }
        let order: Vec<usize> = stages
            .iter()
            .map(|s| CASCADE_STAGES.iter().position(|c| c == s).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "funnel out of order");
        for row in funnel {
            assert!(row.get("evaluated").and_then(Json::as_u64).is_some());
        }

        // The embedded metrics object is a full, round-trippable snapshot.
        let metrics = report.get("metrics").unwrap();
        let snapshot = MetricsSnapshot::from_json(metrics).unwrap();
        for (stage, row) in stages.iter().zip(funnel) {
            assert_eq!(
                snapshot.counter(&format!("cascade.{stage}.evaluated")),
                row.get("evaluated").and_then(Json::as_u64),
                "funnel and snapshot disagree on {stage}"
            );
        }
        // And the whole report survives a text round-trip.
        let text = report.to_string_pretty();
        assert_eq!(treesim_obs::parse_json(&text).unwrap(), report);
    }

    #[test]
    fn recorder_summary_rides_along() {
        let mut forest = Forest::new();
        for i in 0..10 {
            forest.parse_bracket(&format!("r(x{} y)", i % 2)).unwrap();
        }
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<treesim_tree::TreeId> = (0..4).map(treesim_tree::TreeId).collect();
        run_workload(&engine, &queries, QueryMode::Knn(2));

        let report = cascade_report(&Scale::smoke(), &[]);
        let recorder = report.get("recorder").expect("recorder section");
        // The global recorder is shared with other tests in this binary,
        // so assert lower bounds and internal consistency, not exact counts.
        let held = recorder.get("held").and_then(Json::as_u64).unwrap();
        let total = recorder
            .get("recorded_total")
            .and_then(Json::as_u64)
            .unwrap();
        let capacity = recorder.get("capacity").and_then(Json::as_u64).unwrap();
        assert!(held >= queries.len() as u64, "our queries were recorded");
        assert!(total >= held, "total never trails occupancy");
        assert!(held <= capacity, "ring is bounded");
        let knn = recorder
            .get("kinds")
            .and_then(|k| k.get("knn"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        assert!(knn >= queries.len() as u64);
        let wall = recorder.get("wall_us").expect("wall quantiles");
        let p50 = wall.get("p50").and_then(Json::as_u64).unwrap();
        let p99 = wall.get("p99").and_then(Json::as_u64).unwrap();
        let max = wall.get("max").and_then(Json::as_u64).unwrap();
        assert!(p50 <= p99 && p99 <= max, "quantiles are monotone");
    }

    #[test]
    fn recorder_summary_of_empty_recorder_is_zeroed() {
        let recorder = FlightRecorder::with_capacity(8);
        let summary = recorder_summary(&recorder);
        assert_eq!(summary.get("held").and_then(Json::as_u64), Some(0));
        let wall = summary.get("wall_us").unwrap();
        assert_eq!(wall.get("p99").and_then(Json::as_u64), Some(0));
    }
}
