//! The `BENCH_cascade.json` report: a machine-readable snapshot of the
//! cascade funnel and every metric the run accumulated, written by the
//! `experiments` binary under `--metrics-out PATH`.
//!
//! Schema (`treesim-bench-cascade/v1`):
//!
//! ```json
//! {
//!   "schema": "treesim-bench-cascade/v1",
//!   "scale": { "dataset_size": 60, "query_count": 6, ... },
//!   "figures": ["ablation-cascade"],
//!   "funnel": [ { "stage": "size", "evaluated": 720, "pruned": 310 }, ... ],
//!   "metrics": { "counters": [...], "gauges": [...], "histograms": [...] }
//! }
//! ```
//!
//! `funnel` lists the global `cascade.<stage>.evaluated` / `.pruned`
//! counters in cascade order ([`CASCADE_STAGES`]), keeping only the stages
//! the run actually exercised; `metrics` embeds the full
//! [`MetricsSnapshot`] (so latency histograms like `cascade.propt.us`,
//! `refine.zs.us` and `engine.knn.filter.us` ride along and round-trip via
//! [`MetricsSnapshot::from_json`]).

use treesim_obs::{Json, MetricsSnapshot};

use crate::scale::Scale;

/// Schema identifier stamped into every report.
pub const SCHEMA: &str = "treesim-bench-cascade/v1";

/// Every cascade stage name any built-in filter can report, coarsest
/// first — the order the `funnel` array uses.
pub const CASCADE_STAGES: [&str; 4] = ["size", "bdist", "propt", "histo"];

/// Builds the report from the *current* global metrics registry.
pub fn cascade_report(scale: &Scale, figures: &[String]) -> Json {
    report_from_snapshot(scale, figures, &treesim_obs::metrics::snapshot())
}

/// Builds the report from an explicit snapshot (deterministic, for tests).
pub fn report_from_snapshot(scale: &Scale, figures: &[String], snapshot: &MetricsSnapshot) -> Json {
    let funnel: Vec<Json> = CASCADE_STAGES
        .iter()
        .filter_map(|stage| {
            let evaluated = snapshot.counter(&format!("cascade.{stage}.evaluated"))?;
            let pruned = snapshot
                .counter(&format!("cascade.{stage}.pruned"))
                .unwrap_or(0);
            Some(Json::obj(vec![
                ("stage", Json::Str((*stage).to_owned())),
                ("evaluated", Json::U64(evaluated)),
                ("pruned", Json::U64(pruned)),
            ]))
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str(SCHEMA.to_owned())),
        (
            "scale",
            Json::obj(vec![
                ("dataset_size", Json::U64(scale.dataset_size as u64)),
                ("query_count", Json::U64(scale.query_count as u64)),
                (
                    "distance_sample_pairs",
                    Json::U64(scale.distance_sample_pairs as u64),
                ),
                ("rng_seed", Json::U64(scale.rng_seed)),
            ]),
        ),
        (
            "figures",
            Json::Arr(figures.iter().map(|f| Json::Str(f.clone())).collect()),
        ),
        ("funnel", Json::Arr(funnel)),
        ("metrics", snapshot.to_json()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_workload, QueryMode};
    use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine};
    use treesim_tree::Forest;

    #[test]
    fn report_carries_funnel_and_roundtrips() {
        let mut forest = Forest::new();
        for i in 0..12 {
            forest
                .parse_bracket(&format!("a(b{} c(d) e)", i % 3))
                .unwrap();
        }
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<treesim_tree::TreeId> = (0..3).map(treesim_tree::TreeId).collect();
        run_workload(&engine, &queries, QueryMode::Knn(2));

        let scale = Scale::smoke();
        let figures = vec!["ablation-cascade".to_owned()];
        let report = cascade_report(&scale, &figures);
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some(SCHEMA),
            "schema id"
        );
        assert_eq!(
            report
                .get("scale")
                .and_then(|s| s.get("dataset_size"))
                .and_then(Json::as_u64),
            Some(scale.dataset_size as u64)
        );
        let funnel = report.get("funnel").and_then(Json::as_array).unwrap();
        // The positional cascade ran, so at least size/bdist/propt exist —
        // in cascade order, with a non-increasing evaluated sequence only
        // guaranteed per query, but globally every stage must be present.
        let stages: Vec<&str> = funnel
            .iter()
            .map(|row| row.get("stage").and_then(Json::as_str).unwrap())
            .collect();
        for required in ["size", "bdist", "propt"] {
            assert!(stages.contains(&required), "missing stage {required}");
        }
        let order: Vec<usize> = stages
            .iter()
            .map(|s| CASCADE_STAGES.iter().position(|c| c == s).unwrap())
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "funnel out of order");
        for row in funnel {
            assert!(row.get("evaluated").and_then(Json::as_u64).is_some());
        }

        // The embedded metrics object is a full, round-trippable snapshot.
        let metrics = report.get("metrics").unwrap();
        let snapshot = MetricsSnapshot::from_json(metrics).unwrap();
        for (stage, row) in stages.iter().zip(funnel) {
            assert_eq!(
                snapshot.counter(&format!("cascade.{stage}.evaluated")),
                row.get("evaluated").and_then(Json::as_u64),
                "funnel and snapshot disagree on {stage}"
            );
        }
        // And the whole report survives a text round-trip.
        let text = report.to_string_pretty();
        assert_eq!(treesim_obs::parse_json(&text).unwrap(), report);
    }
}
