//! Workload execution: runs a query set through an engine and averages the
//! statistics, optionally in parallel across queries.

use std::time::Duration;

use treesim_search::{AveragedStage, Filter, LatencyBuckets, SearchEngine, SearchStats};
use treesim_tree::TreeId;

/// The two query types of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Range query with radius τ.
    Range(u32),
    /// k-nearest-neighbor query.
    Knn(usize),
}

/// Averaged outcome of one method over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSummary {
    /// Filter name ("BiBranch", "Histo", "Sequential").
    pub name: &'static str,
    /// Mean % of the dataset whose real distance was computed.
    pub accessed_percent: f64,
    /// Mean % of the dataset in the result set.
    pub result_percent: f64,
    /// Mean per-query filter time.
    pub filter_time: Duration,
    /// Mean per-query refinement time.
    pub refine_time: Duration,
    /// Mean per-stage cascade breakdown (coarsest first; empty when the
    /// filter runs a single stage).
    pub stages: Vec<AveragedStage>,
    /// Per-query wall-time distribution (one sample per query), for
    /// tail-latency reporting beyond the means above.
    pub latency: LatencyBuckets,
}

impl MethodSummary {
    /// Mean total per-query time.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.refine_time
    }

    /// Mean bounds computed per query at the final (most expensive)
    /// cascade stage — for the positional filter, `propt` binary searches.
    pub fn final_stage_evaluated(&self) -> f64 {
        self.stages.last().map_or(0.0, |s| s.avg_evaluated)
    }
}

/// Runs every query through `engine` and averages the statistics.
///
/// Queries are executed in parallel across available cores; per-query times
/// are accumulated as CPU time (matching the paper's processor-time
/// reporting), so the averages are thread-count independent.
pub fn run_workload<F: Filter + Sync>(
    engine: &SearchEngine<'_, F>,
    queries: &[TreeId],
    mode: QueryMode,
) -> MethodSummary
where
    F::Query: Send,
{
    let forest = engine.forest();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(queries.len().max(1));
    let chunk_size = queries.len().div_ceil(threads.max(1)).max(1);

    let totals: Vec<SearchStats> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in queries.chunks(chunk_size) {
            handles.push(scope.spawn(move || {
                let mut total = SearchStats::default();
                for &query_id in chunk {
                    let query = forest.tree(query_id);
                    let (_, stats) = match mode {
                        QueryMode::Range(tau) => engine.range(query, tau),
                        QueryMode::Knn(k) => engine.knn(query, k),
                    };
                    total.accumulate(&stats);
                }
                total
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut grand = SearchStats::default();
    for stats in &totals {
        grand.accumulate(stats);
    }
    let averaged = grand.averaged(queries.len());
    MethodSummary {
        name: engine.filter().name(),
        accessed_percent: averaged.avg_accessed_percent,
        result_percent: averaged.avg_result_percent,
        filter_time: averaged.avg_filter_time,
        refine_time: averaged.avg_refine_time,
        stages: averaged.avg_stages,
        latency: averaged.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_search::{BiBranchFilter, BiBranchMode, NoFilter};
    use treesim_tree::Forest;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for i in 0..20 {
            forest
                .parse_bracket(&format!("a(b{} c(d) e)", i % 4))
                .unwrap();
        }
        forest
    }

    #[test]
    fn sequential_accesses_everything_on_range() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
        let queries: Vec<TreeId> = (0..5).map(TreeId).collect();
        let summary = run_workload(&engine, &queries, QueryMode::Range(1));
        assert_eq!(summary.name, "Sequential");
        assert!((summary.accessed_percent - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bibranch_accesses_less() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<TreeId> = (0..5).map(TreeId).collect();
        let summary = run_workload(&engine, &queries, QueryMode::Range(1));
        assert!(summary.accessed_percent <= 100.0);
        assert!(summary.result_percent > 0.0, "self-match always present");
    }

    #[test]
    fn knn_mode_runs() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<TreeId> = (0..3).map(TreeId).collect();
        let summary = run_workload(&engine, &queries, QueryMode::Knn(2));
        assert!(summary.accessed_percent > 0.0);
        assert!(summary.total_time() >= summary.filter_time);
        // The cascade breakdown reaches the workload summary.
        assert_eq!(summary.stages.len(), 3);
        assert_eq!(summary.stages[0].name, "size");
        assert!(summary.final_stage_evaluated() <= forest.len() as f64);
        // One latency sample per query, with monotone quantiles.
        assert_eq!(summary.latency.count(), queries.len() as u64);
        assert!(summary.latency.p50_us() <= summary.latency.p99_us());
        assert!(summary.latency.p99_us() <= summary.latency.max_us());
    }
}
