//! Experiment scaling: the paper's full settings versus a quick mode that
//! keeps the whole suite within minutes on a laptop.

/// Controls dataset and workload sizes for the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Trees per dataset (the paper uses 2000).
    pub dataset_size: usize,
    /// Queries per workload (the paper uses 100, sampled from the dataset).
    pub query_count: usize,
    /// Random pairs sampled to estimate the dataset's mean edit distance
    /// (the paper computes it exactly; see DESIGN.md §5).
    pub distance_sample_pairs: usize,
    /// Base RNG seed; figures derive their own sub-seeds.
    pub rng_seed: u64,
}

impl Scale {
    /// Scaled-down defaults: the full suite runs in minutes.
    pub fn quick() -> Self {
        Scale {
            dataset_size: 400,
            query_count: 25,
            distance_sample_pairs: 300,
            rng_seed: 0x7ee5,
        }
    }

    /// The paper's settings (2000 trees, 100 queries). Budget tens of
    /// minutes for the full sweep on one core.
    pub fn full() -> Self {
        Scale {
            dataset_size: 2000,
            query_count: 100,
            distance_sample_pairs: 2000,
            rng_seed: 0x7ee5,
        }
    }

    /// Tiny settings for smoke tests.
    pub fn smoke() -> Self {
        Scale {
            dataset_size: 60,
            query_count: 6,
            distance_sample_pairs: 60,
            rng_seed: 0x7ee5,
        }
    }

    /// The paper's k for k-NN: 0.25 % of the dataset, floored at the
    /// paper's absolute value of 5 so that scaled-down datasets keep a
    /// meaningful k (0.25 % of 2000 = 5).
    pub fn knn_k(&self) -> usize {
        treesim_datagen::workload::paper_knn_k(self.dataset_size).max(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper() {
        let full = Scale::full();
        assert_eq!(full.dataset_size, 2000);
        assert_eq!(full.query_count, 100);
        assert_eq!(full.knn_k(), 5);
    }

    #[test]
    fn quick_is_smaller() {
        let quick = Scale::quick();
        assert!(quick.dataset_size < Scale::full().dataset_size);
        assert_eq!(quick.knn_k(), 5);
    }
}
