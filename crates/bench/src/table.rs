//! Plain-text and Markdown table rendering for experiment reports.

/// A rendered experiment result: one table per figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Figure identifier, e.g. `"fig7"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (workload parameters, expected shape, observations).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers'.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Column-aligned plain-text rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} [{}] ==\n", self.title, self.id));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// GitHub-flavored Markdown rendering.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} ({})\n\n", self.title, self.id));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("- {note}\n"));
        }
        out.push('\n');
        out
    }
}

/// Formats a float with 2 decimals (percentages, milliseconds).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a duration as milliseconds with 3 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample() -> Table {
        let mut table = Table::new("fig0", "Demo", &["x", "y"]);
        table.push_row(vec!["1".into(), "long-cell".into()]);
        table.push_row(vec!["222".into(), "b".into()]);
        table.push_note("a note");
        table
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        assert!(text.contains("Demo"));
        let lines: Vec<&str> = text.lines().collect();
        // header, separator, 2 rows, 1 note
        assert_eq!(lines.len(), 6);
        assert!(lines[5].starts_with("note:"));
    }

    #[test]
    fn render_markdown_shape() {
        let md = sample().render_markdown();
        assert!(md.contains("### Demo (fig0)"));
        assert!(md.contains("| x | y |"));
        assert!(md.contains("| 222 | b |"));
        assert!(md.contains("- a note"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut table = Table::new("t", "t", &["a", "b"]);
        table.push_row(vec!["1".into()]);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
    }
}
