//! Minimal flag parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--flag value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Splits `argv` into positionals and flags. `-k` is accepted as an
    /// alias for `--k`, and `--flag=value` as an alias for `--flag value`.
    /// A flag without a value is an error.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(name) = token.strip_prefix("--").or_else(|| token.strip_prefix('-')) {
                if let Some((name, value)) = name.split_once('=') {
                    args.flags.insert(name.to_owned(), value.to_owned());
                    i += 1;
                } else {
                    let value = argv
                        .get(i + 1)
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    args.flags.insert(name.to_owned(), value.clone());
                    i += 2;
                }
            } else {
                args.positional.push(token.clone());
                i += 1;
            }
        }
        Ok(args)
    }

    /// Positional argument at `index`.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// Number of positionals.
    #[cfg(test)]
    pub fn positional_len(&self) -> usize {
        self.positional.len()
    }

    /// String flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// Parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_and_flags() {
        let args = Args::parse(&argv(&["data.trees", "--tau", "3", "-k", "5"])).unwrap();
        assert_eq!(args.positional(0), Some("data.trees"));
        assert_eq!(args.positional_len(), 1);
        assert_eq!(args.get("tau"), Some("3"));
        assert_eq!(args.get("k"), Some("5"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn flag_without_value_errors() {
        assert!(Args::parse(&argv(&["--tau"])).is_err());
    }

    #[test]
    fn equals_syntax_binds_value() {
        let args = Args::parse(&argv(&["--trace=json", "-k=5", "--query=a(b=c)"])).unwrap();
        assert_eq!(args.get("trace"), Some("json"));
        assert_eq!(args.get("k"), Some("5"));
        // Only the first '=' splits; the rest belongs to the value.
        assert_eq!(args.get("query"), Some("a(b=c)"));
    }

    #[test]
    fn typed_defaults() {
        let args = Args::parse(&argv(&["--k", "7"])).unwrap();
        assert_eq!(args.get_or("k", 1usize).unwrap(), 7);
        assert_eq!(args.get_or("tau", 4u32).unwrap(), 4);
        assert!(args.get_or::<usize>("k", 0).is_ok());
        let bad = Args::parse(&argv(&["--k", "x"])).unwrap();
        assert!(bad.get_or::<usize>("k", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let args = Args::parse(&argv(&[])).unwrap();
        assert!(args.require("out").is_err());
    }
}
