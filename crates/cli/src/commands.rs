//! Subcommand implementations.

use treesim_datagen::dblp::{generate_records, DblpConfig};
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{self, SyntheticConfig};
use treesim_edit::edit_distance;
use treesim_search::{
    BiBranchFilter, BiBranchMode, HistogramFilter, Neighbor, NoFilter, PostingsFilter,
    SearchEngine, SearchStats, ShardedEngine, ShardedForest,
};
use treesim_tree::{Forest, Tree};

use crate::args::Args;
use crate::io;

const HELP: &str = "\
treesim — similarity search on tree-structured data (SIGMOD 2005)

USAGE:
  treesim gen-synthetic --out FILE [--trees 500] [--fanout 4] [--size 50]
                        [--labels 8] [--decay 0.05] [--seed 1]
  treesim gen-dblp      --out FILE [--records 500] [--seed 1]
  treesim convert IN OUT                (formats by extension: .xml/.tsf/brackets)
  treesim index  FILE --out IDX.tsi [--level 2]   (persist the inverted file index)
  treesim stats  FILE
  treesim dist   TREE1 TREE2            (bracket notation, shared labels)
  treesim knn    FILE --query TREE [--k 5]   [--filter bibranch|postings|plain|histo|none]
                        [--level 2] [--index IDX.tsi] [--shards 1]
  treesim range  FILE --query TREE [--tau 3] [--filter bibranch|postings|plain|histo|none]
                        [--level 2] [--index IDX.tsi] [--shards 1]
  treesim join   FILE [--tau 2] [--limit 20]  (approximate self-join / dedup)
  treesim explain FILE --query TREE [--k 5 | --tau T] [--filter ...] [--level 2]
                        [--shards 1] [--limit 40]   (per-candidate cascade EXPLAIN table)
  treesim trace  FILE --query TREE [--k 5 | --tau T] [--filter ...] [--level 2]
                        [--shards 1]   (answer one query, print its span tree)
  treesim slo                           (evaluate the SLO targets against the live
                        5 m / 1 h windows, print the burn-rate table)
  treesim serve-metrics [FILE] [--addr 127.0.0.1:9891] [--warm 25] [--k 5]
                        [--trace-weight-budget N] [--trace-sample-every N]
                        [--trace-slo-us N]
                        (HTTP exporter: /metrics, /snapshot.json, /recorder.json?since=N,
                         /trace.json, /slo.json, /health)
  treesim help

Filters: `bibranch` is the paper's positional cascade; `postings` fronts it
with the inverted-list stage -1 candidate generator. `--shards S` (S > 1)
partitions the dataset and answers on every shard concurrently — results
are identical, the printed funnel is the per-shard sum.

Observability (any command):
  --trace pretty|json     stream span/event traces to stderr
  --metrics FILE          write the metrics snapshot (counters, gauges,
                          histograms) as JSON after the command finishes
  TREESIM_TRACE_WEIGHT_BUDGET / TREESIM_TRACE_SAMPLE_EVERY / TREESIM_TRACE_SLO_US
                          tune the trace sampler from the environment;
                          the serve-metrics --trace-* flags override them

Dataset files ending in .xml are concatenated XML documents; anything else
is whitespace-separated bracket notation such as  a(b(c d) e) .";

/// Dispatches a parsed command line.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let command = argv.first().map(String::as_str).unwrap_or("help");
    let rest = if argv.is_empty() { &[] } else { &argv[1..] };
    let args = Args::parse(rest)?;
    configure_tracing(&args)?;
    // Baseline the window ring before the command runs, so the SLO
    // evaluation afterwards windows exactly this invocation's traffic
    // (the first tick on a fresh ring only records the starting point).
    treesim_obs::window::global().tick();
    let outcome = match command {
        "help" | "--help" | "-h" => {
            println!("{HELP}");
            Ok(())
        }
        "gen-synthetic" => gen_synthetic(&args),
        "gen-dblp" => gen_dblp(&args),
        "stats" => stats(&args),
        "convert" => convert(&args),
        "index" => build_index(&args),
        "dist" => dist(&args),
        "knn" => search(&args, SearchKind::Knn),
        "range" => search(&args, SearchKind::Range),
        "join" => join(&args),
        "explain" => explain(&args),
        "trace" => trace_query(&args),
        "slo" => slo_report(&args),
        "serve-metrics" => serve_metrics(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    if outcome.is_err() {
        // Count the failure against the op's error budget so the SLO
        // engine's error-rate objectives see driver-level failures too.
        if let Some(op) = slo_op_for(command, &args) {
            treesim_search::ops::record_error(op);
        }
    }
    if let Some(burn) = check_slo_after(command) {
        eprintln!(
            "warning: SLO degraded — worst burn rate {burn:.2}× \
             (run `treesim slo` for the target table)"
        );
    }
    // Snapshot even on command failure: partial funnels are still useful.
    if let Some(path) = args.get("metrics") {
        write_metrics(path)?;
    }
    outcome
}

/// Maps a CLI command onto the cataloged operation its failure should
/// burn ([`treesim_search::ops::OPS`]); `None` for commands outside the
/// SLO table (generation, conversion, the server itself).
fn slo_op_for(command: &str, args: &Args) -> Option<&'static str> {
    match command {
        "knn" => Some("engine.knn"),
        "range" => Some("engine.range"),
        "join" => Some("join.self"),
        // EXPLAIN and trace answer one real query; a `--tau` makes it a
        // range query, mirroring their dispatch inside the handlers.
        "explain" | "trace" => Some(if args.get("tau").is_some() {
            "engine.range"
        } else {
            "engine.knn"
        }),
        _ => None,
    }
}

/// The degradation hook for batch drivers: after a query-path command,
/// evaluate the SLO targets over the live windows and surface the worst
/// burn rate when the multi-window rule says the error budget is burning.
fn check_slo_after(command: &str) -> Option<f64> {
    match command {
        "knn" | "range" | "join" | "explain" | "trace" => {
            treesim_obs::slo::evaluate();
            treesim_obs::slo::check_degraded()
        }
        // `slo` already evaluated inside its handler; re-running here
        // would double-publish for no new information.
        "slo" => treesim_obs::slo::check_degraded(),
        _ => None,
    }
}

/// Installs the span sink requested by `--trace pretty|json` (traces go to
/// stderr so they never mix with command output on stdout), after applying
/// the `TREESIM_TRACE_*` sampler knobs from the environment. Handlers that
/// force retention (the `trace` subcommand) still win: they set their knob
/// after this runs.
fn configure_tracing(args: &Args) -> Result<(), String> {
    if let Some(v) = env_knob("TREESIM_TRACE_WEIGHT_BUDGET")? {
        treesim_obs::trace::set_weight_budget(v);
    }
    if let Some(v) = env_knob("TREESIM_TRACE_SAMPLE_EVERY")? {
        treesim_obs::trace::set_sample_every(v);
    }
    if let Some(v) = env_knob("TREESIM_TRACE_SLO_US")? {
        treesim_obs::trace::set_slo_us(v);
    }
    match args.get("trace") {
        None => Ok(()),
        Some("pretty") => {
            treesim_obs::install_sink(std::sync::Arc::new(treesim_obs::PrettySink));
            Ok(())
        }
        Some("json") => {
            treesim_obs::install_sink(std::sync::Arc::new(treesim_obs::JsonLinesSink::stderr()));
            Ok(())
        }
        Some(other) => Err(format!("--trace: unknown mode {other:?} (pretty|json)")),
    }
}

/// Reads one `TREESIM_TRACE_*` knob from the environment: `Ok(None)` when
/// unset, an error (naming the variable) when set but not a number.
fn env_knob(name: &str) -> Result<Option<u64>, String> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => Err(format!("{name}: value is not valid UTF-8")),
        Ok(raw) => raw
            .trim()
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}={raw:?}: {e}")),
    }
}

/// Writes the global metrics snapshot (`--metrics FILE`) as pretty JSON.
fn write_metrics(path: &str) -> Result<(), String> {
    let snapshot = treesim_obs::metrics::snapshot();
    std::fs::write(path, snapshot.to_json_string()).map_err(|e| format!("cannot write {path}: {e}"))
}

fn gen_synthetic(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let config = SyntheticConfig {
        fanout: Normal::new(args.get_or("fanout", 4.0)?, args.get_or("fanout-sd", 0.5)?),
        size: Normal::new(args.get_or("size", 50.0)?, args.get_or("size-sd", 2.0)?),
        label_count: args.get_or("labels", 8u32)?,
        decay: args.get_or("decay", 0.05)?,
        seed_count: args.get_or("seeds", 10usize)?,
        tree_count: args.get_or("trees", 500usize)?,
        rng_seed: args.get_or("seed", 1u64)?,
    };
    let forest = synthetic::generate(&config);
    io::save_forest(&forest, out)?;
    println!(
        "wrote {} trees ({}) to {out}",
        forest.len(),
        config.spec_string()
    );
    Ok(())
}

fn gen_dblp(args: &Args) -> Result<(), String> {
    let out = args.require("out")?;
    let config = DblpConfig::with_count(
        args.get_or("records", 500usize)?,
        args.get_or("seed", 1u64)?,
    );
    let records = generate_records(&config);
    let mut content = String::new();
    for record in &records {
        content.push_str(&record.xml);
        content.push('\n');
    }
    std::fs::write(out, content).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} DBLP-style records to {out}", records.len());
    Ok(())
}

fn convert(args: &Args) -> Result<(), String> {
    let (input, output) = match (args.positional(0), args.positional(1)) {
        (Some(i), Some(o)) => (i, o),
        _ => return Err("convert needs input and output paths".into()),
    };
    let forest = io::load_forest(input)?;
    io::save_forest(&forest, output)?;
    println!("converted {} trees: {input} → {output}", forest.len());
    Ok(())
}

fn build_index(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("index needs a dataset file")?;
    let out = args.require("out")?;
    let level = args.get_or("level", 2usize)?;
    if level < 2 {
        return Err("--level must be ≥ 2".into());
    }
    let forest = io::load_forest(path)?;
    let index = treesim_core::InvertedFileIndex::build(&forest, level);
    let bytes = treesim_core::codec::encode_index(&index);
    std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "indexed {} trees: |Γ| = {} branches, {} postings → {out} ({} bytes)",
        index.tree_count(),
        index.vocab().len(),
        index.posting_count(),
        bytes.len()
    );
    Ok(())
}

fn load_index(path: &str) -> Result<treesim_core::InvertedFileIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    treesim_core::codec::decode_index(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn stats(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("stats needs a dataset file")?;
    let forest = io::load_forest(path)?;
    let stats = forest.stats();
    println!("dataset          {path}");
    println!("trees            {}", stats.tree_count);
    println!("total nodes      {}", stats.total_nodes);
    println!("avg size         {:.2}", stats.avg_size);
    println!("max size         {}", stats.max_size);
    println!("avg depth        {:.3}", stats.avg_depth);
    println!("avg height       {:.3}", stats.avg_height);
    println!("avg fanout       {:.3}", stats.avg_fanout);
    println!("distinct labels  {}", stats.distinct_labels);
    Ok(())
}

fn dist(args: &Args) -> Result<(), String> {
    let (spec1, spec2) = match (args.positional(0), args.positional(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err("dist needs two bracket-notation trees".into()),
    };
    let mut interner = treesim_tree::LabelInterner::new();
    let t1 = treesim_tree::parse::bracket::parse(&mut interner, spec1)
        .map_err(|e| format!("tree 1: {e}"))?;
    let t2 = treesim_tree::parse::bracket::parse(&mut interner, spec2)
        .map_err(|e| format!("tree 2: {e}"))?;
    let edist = edit_distance(&t1, &t2);
    println!("edit distance          {edist}");
    for q in 2..=4usize {
        let bdist = treesim_core::binary_branch_distance(&t1, &t2, q);
        let factor = treesim_core::bound_factor(q);
        println!(
            "BDist (q={q})            {bdist}  (lower bound ⌈/{factor}⌉ = {})",
            bdist.div_ceil(factor)
        );
    }
    let mut vocab = treesim_core::BranchVocab::new(2);
    let v1 = treesim_core::PositionalVector::build(&t1, &mut vocab);
    let v2 = treesim_core::PositionalVector::build(&t2, &mut vocab);
    println!("positional bound propt {}", v1.optimistic_bound(&v2));
    Ok(())
}

fn join(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("join needs a dataset file")?;
    let forest = io::load_forest(path)?;
    let tau = args.get_or("tau", 2u32)?;
    let limit = args.get_or("limit", 20usize)?;
    let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
    let (pairs, stats) = treesim_search::similarity_self_join(&forest, &filter, tau);
    for pair in pairs.iter().take(limit) {
        println!(
            "{:>6} ≈ {:<6} d={}",
            pair.left.0, pair.right.0, pair.distance
        );
    }
    if pairs.len() > limit {
        println!("… and {} more pairs", pairs.len() - limit);
    }
    println!(
        "-- τ={tau}: {} pairs; {} candidates considered, {} refined ({:.2}%), {} cut off at τ",
        stats.pairs_joined,
        stats.pairs_considered,
        stats.pairs_refined,
        stats.refine_fraction() * 100.0,
        stats.pairs_cutoff
    );
    Ok(())
}

enum SearchKind {
    Knn,
    Range,
}

fn search(args: &Args, kind: SearchKind) -> Result<(), String> {
    let path = args.positional(0).ok_or("search needs a dataset file")?;
    let mut forest = io::load_forest(path)?;
    let query = io::parse_query(&mut forest, args.require("query")?)?;
    let filter_name = args.get("filter").unwrap_or("bibranch");
    let level = args.get_or("level", 2usize)?;
    if level < 2 {
        return Err("--level must be ≥ 2".into());
    }

    let prebuilt_index = match args.get("index") {
        Some(index_path) => {
            let index = load_index(index_path)?;
            if index.tree_count() != forest.len() {
                return Err(format!(
                    "index covers {} trees but the dataset has {}",
                    index.tree_count(),
                    forest.len()
                ));
            }
            Some(index)
        }
        None => None,
    };
    let shards = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be ≥ 1".into());
    }
    let (results, stats) = if shards > 1 {
        if prebuilt_index.is_some() {
            return Err(
                "--index cannot be combined with --shards (each shard builds its own in-memory index)"
                    .into(),
            );
        }
        let sharded = ShardedForest::split(&forest, shards);
        match filter_name {
            "bibranch" => run_sharded(
                &sharded,
                |shard| BiBranchFilter::build(shard, level, BiBranchMode::Positional),
                &query,
                args,
                &kind,
            )?,
            "plain" => run_sharded(
                &sharded,
                |shard| BiBranchFilter::build(shard, level, BiBranchMode::Plain),
                &query,
                args,
                &kind,
            )?,
            "postings" => run_sharded(
                &sharded,
                |shard| PostingsFilter::build(shard, level),
                &query,
                args,
                &kind,
            )?,
            "histo" => run_sharded(&sharded, HistogramFilter::build, &query, args, &kind)?,
            "none" => run_sharded(&sharded, NoFilter::build, &query, args, &kind)?,
            other => return Err(format!("unknown filter {other:?}")),
        }
    } else {
        match filter_name {
            "bibranch" => {
                let filter = match &prebuilt_index {
                    Some(index) => BiBranchFilter::from_index(index, BiBranchMode::Positional),
                    None => BiBranchFilter::build(&forest, level, BiBranchMode::Positional),
                };
                run(&forest, filter, &query, args, &kind)?
            }
            "plain" => {
                let filter = match &prebuilt_index {
                    Some(index) => BiBranchFilter::from_index(index, BiBranchMode::Plain),
                    None => BiBranchFilter::build(&forest, level, BiBranchMode::Plain),
                };
                run(&forest, filter, &query, args, &kind)?
            }
            "postings" => {
                let filter = match &prebuilt_index {
                    Some(index) => PostingsFilter::from_index(index.clone()),
                    None => PostingsFilter::build(&forest, level),
                };
                run(&forest, filter, &query, args, &kind)?
            }
            "histo" => run(
                &forest,
                HistogramFilter::build(&forest),
                &query,
                args,
                &kind,
            )?,
            "none" => run(&forest, NoFilter::build(&forest), &query, args, &kind)?,
            other => return Err(format!("unknown filter {other:?}")),
        }
    };

    for neighbor in &results {
        let rendered =
            treesim_tree::parse::bracket::to_string(forest.tree(neighbor.tree), forest.interner());
        let shown: String = rendered.chars().take(70).collect();
        println!(
            "{:>6}  d={:<4} {}",
            neighbor.tree.0, neighbor.distance, shown
        );
    }
    // Summary plus — for multi-stage cascades — the per-stage funnel,
    // rendered by SearchStats' Display impl (shared with the bench tables).
    println!("{stats}");
    Ok(())
}

fn run<F: treesim_search::Filter>(
    forest: &Forest,
    filter: F,
    query: &Tree,
    args: &Args,
    kind: &SearchKind,
) -> Result<(Vec<Neighbor>, SearchStats), String> {
    let engine = SearchEngine::new(forest, filter);
    Ok(match kind {
        SearchKind::Knn => engine.knn(query, args.get_or("k", 5usize)?),
        SearchKind::Range => engine.range(query, args.get_or("tau", 3u32)?),
    })
}

/// Like [`run`], but over a sharded forest: one engine per shard, the
/// query answered on every shard concurrently and the heaps merged.
fn run_sharded<F: treesim_search::Filter + Send + Sync>(
    sharded: &ShardedForest,
    build: impl Fn(&Forest) -> F + Sync,
    query: &Tree,
    args: &Args,
    kind: &SearchKind,
) -> Result<(Vec<Neighbor>, SearchStats), String> {
    let engine = ShardedEngine::new(sharded, build);
    Ok(match kind {
        SearchKind::Knn => engine.knn(query, args.get_or("k", 5usize)?),
        SearchKind::Range => engine.range(query, args.get_or("tau", 3u32)?),
    })
}

/// `treesim explain`: replay one query with the recording observer and
/// print the per-candidate cascade table. `--tau T` explains a range
/// query; otherwise `--k` (default 5) explains a k-NN query.
fn explain(args: &Args) -> Result<(), String> {
    let path = args.positional(0).ok_or("explain needs a dataset file")?;
    let mut forest = io::load_forest(path)?;
    let query = io::parse_query(&mut forest, args.require("query")?)?;
    let filter_name = args.get("filter").unwrap_or("bibranch");
    let level = args.get_or("level", 2usize)?;
    if level < 2 {
        return Err("--level must be ≥ 2".into());
    }
    let limit = args.get_or("limit", 40usize)?;
    let shards = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be ≥ 1".into());
    }
    let report = if shards > 1 {
        let sharded = ShardedForest::split(&forest, shards);
        match filter_name {
            "bibranch" => explain_sharded(
                &sharded,
                |shard| BiBranchFilter::build(shard, level, BiBranchMode::Positional),
                &query,
                args,
            )?,
            "plain" => explain_sharded(
                &sharded,
                |shard| BiBranchFilter::build(shard, level, BiBranchMode::Plain),
                &query,
                args,
            )?,
            "postings" => explain_sharded(
                &sharded,
                |shard| PostingsFilter::build(shard, level),
                &query,
                args,
            )?,
            "histo" => explain_sharded(&sharded, HistogramFilter::build, &query, args)?,
            "none" => explain_sharded(&sharded, NoFilter::build, &query, args)?,
            other => return Err(format!("unknown filter {other:?}")),
        }
    } else {
        match filter_name {
            "bibranch" => explain_with(
                &forest,
                BiBranchFilter::build(&forest, level, BiBranchMode::Positional),
                &query,
                args,
            )?,
            "plain" => explain_with(
                &forest,
                BiBranchFilter::build(&forest, level, BiBranchMode::Plain),
                &query,
                args,
            )?,
            "postings" => {
                explain_with(&forest, PostingsFilter::build(&forest, level), &query, args)?
            }
            "histo" => explain_with(&forest, HistogramFilter::build(&forest), &query, args)?,
            "none" => explain_with(&forest, NoFilter::build(&forest), &query, args)?,
            other => return Err(format!("unknown filter {other:?}")),
        }
    };
    print!("{}", report.render(limit));
    // The EXPLAIN contract: per-candidate verdicts telescope exactly to
    // the SearchStats funnel of the same query.
    if let Err((stage, from_verdicts, from_stats)) = report.check_consistency() {
        return Err(format!(
            "EXPLAIN inconsistency at stage {stage}: verdicts say \
             (evaluated, pruned) = {from_verdicts:?} but stats say {from_stats:?}"
        ));
    }
    println!("-- verdicts telescope to the stats funnel (checked)");
    println!("{}", report.stats);
    Ok(())
}

fn explain_with<F: treesim_search::Filter>(
    forest: &Forest,
    filter: F,
    query: &Tree,
    args: &Args,
) -> Result<treesim_search::ExplainReport, String> {
    let engine = SearchEngine::new(forest, filter);
    Ok(match args.get("tau") {
        Some(_) => engine.explain_range(query, args.get_or("tau", 3u32)?),
        None => engine.explain_knn(query, args.get_or("k", 5usize)?),
    })
}

/// [`explain_with`] over a sharded forest: per-shard EXPLAIN observers,
/// stitched into one globally-indexed report.
fn explain_sharded<F: treesim_search::Filter + Send + Sync>(
    sharded: &ShardedForest,
    build: impl Fn(&Forest) -> F + Sync,
    query: &Tree,
    args: &Args,
) -> Result<treesim_search::ExplainReport, String> {
    let engine = ShardedEngine::new(sharded, build);
    Ok(match args.get("tau") {
        Some(_) => engine.explain_range(query, args.get_or("tau", 3u32)?),
        None => engine.explain_knn(query, args.get_or("k", 5usize)?),
    })
}

/// `treesim trace`: answer one query (same flags as `knn`/`range` — a
/// `--tau` makes it a range query) with trace retention forced on, then
/// print the reassembled span tree with per-span total/self times.
fn trace_query(args: &Args) -> Result<(), String> {
    // Retain every trace for this run: the CLI answers one query per
    // process, so the sampler's 1-in-N lottery would usually drop the
    // only trace there is.
    treesim_obs::trace::set_sample_every(1);
    let kind = if args.get("tau").is_some() {
        SearchKind::Range
    } else {
        SearchKind::Knn
    };
    search(args, kind)?;
    let trace = treesim_obs::trace::latest()
        .ok_or("no trace was retained — the query produced no spans")?;
    print!("{}", trace.render_tree());
    println!(
        "-- serve this tree in Chrome trace-event format: \
         `treesim serve-metrics` → /trace.json (chrome://tracing, Perfetto)"
    );
    Ok(())
}

/// `treesim slo`: evaluate every SLO target against the live 5 m / 1 h
/// windows and print the verdict table — the same evaluation `/slo.json`
/// and `/health` serve, rendered for a terminal.
fn slo_report(_args: &Args) -> Result<(), String> {
    // Materialize the full op catalog first so the table shows every
    // promised series, not just the ones this process happened to touch.
    treesim_search::ops::register();
    let report = treesim_obs::slo::evaluate();
    print!("{}", report.render_table());
    Ok(())
}

/// One `--trace-*` sampler flag: `Ok(None)` when absent, an error naming
/// the flag when present but not a number.
#[cfg(feature = "server")]
fn flag_knob(args: &Args, name: &str) -> Result<Option<u64>, String> {
    match args.get(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|e| format!("--{name} {raw:?}: {e}")),
    }
}

/// `treesim serve-metrics`: expose the metrics registry and flight
/// recorder over HTTP. With a dataset argument, first answers `--warm`
/// k-NN queries (a batch, so recorder entries are batch-tagged) to
/// populate the `cascade.*` / `refine.*` / `recorder.*` families.
#[cfg(feature = "server")]
fn serve_metrics(args: &Args) -> Result<(), String> {
    // Sampler knobs: explicit flags override the TREESIM_TRACE_* env vars
    // (already applied by configure_tracing); when neither pins the
    // slow-span threshold, it follows the strictest latency SLO so the
    // sampler's idea of "slow" matches what /health alerts on.
    let mut slo_pinned = std::env::var_os("TREESIM_TRACE_SLO_US").is_some();
    if let Some(v) = flag_knob(args, "trace-weight-budget")? {
        treesim_obs::trace::set_weight_budget(v);
    }
    if let Some(v) = flag_knob(args, "trace-sample-every")? {
        treesim_obs::trace::set_sample_every(v);
    }
    if let Some(v) = flag_knob(args, "trace-slo-us")? {
        treesim_obs::trace::set_slo_us(v);
        slo_pinned = true;
    }
    if !slo_pinned {
        let applied = treesim_obs::slo::sync_trace_slo();
        println!("trace slow-span threshold synced to the strictest latency SLO ({applied} µs)");
    }
    // Materialize every `<op>.errors` counter so scrapes see the complete
    // catalog from the first request.
    treesim_search::ops::register();
    if let Some(path) = args.positional(0) {
        let forest = io::load_forest(path)?;
        let warm = args.get_or("warm", 25usize)?;
        let k = args.get_or("k", 5usize)?;
        if warm > 0 && !forest.is_empty() {
            let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
            let engine = SearchEngine::new(&forest, filter);
            let queries: Vec<&Tree> = forest.iter().map(|(_, t)| t).take(warm).collect();
            engine.knn_batch(&queries, k);
            println!(
                "warmed metrics with {} k-NN queries (k={k}) over {} trees",
                queries.len(),
                forest.len()
            );
        }
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:9891");
    let server =
        treesim_obs::MetricsServer::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("cannot resolve local address: {e}"))?;
    println!(
        "serving http://{local}/metrics  (also /snapshot.json, /recorder.json?since=N, \
         /trace.json, /slo.json, /health)"
    );
    server
        .serve_forever()
        .map_err(|e| format!("metrics server failed: {e}"))
}

/// Stub when the `server` feature is off: the subcommand exists but
/// explains how to get it.
#[cfg(not(feature = "server"))]
fn serve_metrics(_args: &Args) -> Result<(), String> {
    Err(
        "this binary was built without the `server` feature; rebuild with \
         `cargo build -p treesim-cli --features server`"
            .into(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the process-wide trace-sampler knobs:
    /// the trace test relies on forced retention (`sample_every == 1`)
    /// holding while its queries run, and the knob tests assert on (and
    /// then restore) the global values.
    static KNOBS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
        KNOBS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn argv(tokens: &[&str]) -> Vec<String> {
        tokens.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_succeeds() {
        dispatch(&argv(&["help"])).unwrap();
        dispatch(&argv(&[])).unwrap();
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn dist_computes_bounds() {
        dispatch(&argv(&["dist", "a(b c)", "a(b d)"])).unwrap();
        assert!(dispatch(&argv(&["dist", "a(b c)"])).is_err());
        assert!(dispatch(&argv(&["dist", "a(", "b"])).is_err());
    }

    #[test]
    fn end_to_end_gen_stats_query() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("tiny.trees");
        let data_str = data.to_str().unwrap();
        dispatch(&argv(&[
            "gen-synthetic",
            "--out",
            data_str,
            "--trees",
            "30",
            "--size",
            "12",
            "--seed",
            "7",
        ]))
        .unwrap();
        dispatch(&argv(&["stats", data_str])).unwrap();
        dispatch(&argv(&["knn", data_str, "--query", "0(1 2)", "--k", "3"])).unwrap();
        dispatch(&argv(&[
            "range", data_str, "--query", "0(1 2)", "--tau", "4", "--filter", "histo",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "range", data_str, "--query", "0(1 2)", "--tau", "4", "--filter", "none",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn convert_roundtrip_binary() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let brackets = dir.join("c.trees");
        let binary = dir.join("c.tsf");
        std::fs::write(&brackets, "a(b c)\na(b)\n").unwrap();
        dispatch(&argv(&[
            "convert",
            brackets.to_str().unwrap(),
            binary.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&["stats", binary.to_str().unwrap()])).unwrap();
        dispatch(&argv(&[
            "knn",
            binary.to_str().unwrap(),
            "--query",
            "a(b c)",
            "--k",
            "1",
        ]))
        .unwrap();
        std::fs::remove_file(&brackets).ok();
        std::fs::remove_file(&binary).ok();
    }

    #[test]
    fn index_persistence_workflow() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("idx.trees");
        let index = dir.join("idx.tsi");
        std::fs::write(&data, "a(b c)\na(b d)\nx(y z)\n").unwrap();
        dispatch(&argv(&[
            "index",
            data.to_str().unwrap(),
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "knn",
            data.to_str().unwrap(),
            "--query",
            "a(b c)",
            "--k",
            "2",
            "--index",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        // Mismatched dataset is rejected.
        let other = dir.join("other.trees");
        std::fs::write(&other, "a\n").unwrap();
        assert!(dispatch(&argv(&[
            "knn",
            other.to_str().unwrap(),
            "--query",
            "a",
            "--index",
            index.to_str().unwrap(),
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&index).ok();
        std::fs::remove_file(&other).ok();
    }

    #[test]
    fn join_command_runs() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("join.trees");
        std::fs::write(&data, "a(b c)\na(b c)\na(b d)\nx(y)\n").unwrap();
        dispatch(&argv(&["join", data.to_str().unwrap(), "--tau", "1"])).unwrap();
        assert!(dispatch(&argv(&["join"])).is_err());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn gen_dblp_writes_xml() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("tiny.xml");
        let data_str = data.to_str().unwrap();
        dispatch(&argv(&["gen-dblp", "--out", data_str, "--records", "10"])).unwrap();
        dispatch(&argv(&["stats", data_str])).unwrap();
        dispatch(&argv(&[
            "knn",
            data_str,
            "--query",
            "article(author title)",
            "--k",
            "2",
        ]))
        .unwrap();
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn trace_and_metrics_flags() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("obs.trees");
        let metrics = dir.join("obs-metrics.json");
        std::fs::write(&data, "a(b c)\na(b d)\nx(y z)\n").unwrap();
        let data_str = data.to_str().unwrap();
        let metrics_str = metrics.to_str().unwrap();
        dispatch(&argv(&[
            "knn",
            data_str,
            "--query",
            "a(b c)",
            "--k",
            "2",
            "--trace=json",
            "--metrics",
            metrics_str,
        ]))
        .unwrap();
        treesim_obs::clear_sink();
        // The emitted snapshot parses back and contains the knn funnel.
        let text = std::fs::read_to_string(&metrics).unwrap();
        let snapshot = treesim_obs::MetricsSnapshot::from_json_str(&text).unwrap();
        assert!(snapshot.counter("engine.knn.queries").unwrap() >= 1);
        assert!(snapshot.counter("cascade.size.evaluated").unwrap() >= 3);
        // Unknown trace modes are rejected.
        assert!(dispatch(&argv(&[
            "knn", data_str, "--query", "a", "--trace", "verbose"
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&metrics).ok();
    }

    #[test]
    fn explain_prints_consistent_table() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("explain.trees");
        std::fs::write(&data, "a(b c)\na(b d)\na(b(c) d)\nx(y z)\nq(r(s t))\n").unwrap();
        let data_str = data.to_str().unwrap();
        // knn mode (default), range mode (--tau), every filter, and a
        // row-limited rendering all succeed — the dispatch itself runs
        // check_consistency and errors on any funnel mismatch.
        dispatch(&argv(&[
            "explain", data_str, "--query", "a(b c)", "--k", "2",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "explain", data_str, "--query", "a(b c)", "--tau", "2",
        ]))
        .unwrap();
        for filter in ["plain", "histo", "none"] {
            dispatch(&argv(&[
                "explain", data_str, "--query", "a(b c)", "--filter", filter,
            ]))
            .unwrap();
        }
        dispatch(&argv(&[
            "explain", data_str, "--query", "a(b c)", "--limit", "1",
        ]))
        .unwrap();
        // Missing dataset / bad filter are rejected.
        assert!(dispatch(&argv(&["explain"])).is_err());
        assert!(dispatch(&argv(&[
            "explain", data_str, "--query", "a", "--filter", "bogus"
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn trace_command_prints_span_tree() {
        let _knobs = knob_lock();
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("trace.trees");
        std::fs::write(&data, "a(b c)\na(b d)\na(b(c) d)\nx(y z)\nq(r(s t))\n").unwrap();
        let data_str = data.to_str().unwrap();
        dispatch(&argv(&["trace", data_str, "--query", "a(b c)", "--k", "2"])).unwrap();
        assert!(treesim_obs::trace::retained()
            .iter()
            .any(|t| t.root() == "engine.knn"));
        // A τ makes it a range query; sharded queries trace too, with the
        // shard workers joining the coordinator's tree.
        dispatch(&argv(&[
            "trace", data_str, "--query", "a(b c)", "--tau", "2", "--shards", "2",
        ]))
        .unwrap();
        let sharded = treesim_obs::trace::retained()
            .into_iter()
            .rev()
            .find(|t| t.root() == "shard.range")
            .expect("sharded trace retained");
        assert!(sharded.spans.iter().any(|s| s.name == "shard.worker"));
        assert!(dispatch(&argv(&["trace"])).is_err());
        std::fs::remove_file(&data).ok();
    }

    #[cfg(feature = "server")]
    #[test]
    fn serve_metrics_rejects_bad_addr() {
        // Holds the knob lock: even a failed serve-metrics syncs the
        // trace SLO threshold before binding.
        let _knobs = knob_lock();
        assert!(dispatch(&argv(&[
            "serve-metrics",
            "--addr",
            "definitely:not:an:addr"
        ]))
        .is_err());
        treesim_obs::trace::set_slo_us(10_000);
    }

    #[test]
    fn slo_command_prints_the_target_table() {
        dispatch(&argv(&["slo"])).unwrap();
        // The evaluation materialized the published gauges for every
        // latency target in the catalog.
        let snapshot = treesim_obs::metrics::snapshot();
        assert!(snapshot.gauge("slo.burn_rate.engine_knn").is_some());
        assert!(snapshot.gauge("slo.budget_remaining.engine_knn").is_some());
    }

    #[test]
    fn failures_burn_the_op_error_budget() {
        let before = treesim_obs::metrics::snapshot();
        assert!(dispatch(&argv(&["knn", "/definitely/missing.trees", "--query", "a"])).is_err());
        assert!(dispatch(&argv(&["join", "/definitely/missing.trees"])).is_err());
        let after = treesim_obs::metrics::snapshot();
        // Other tests may fail queries concurrently, so ≥ not ==.
        assert!(after.counter_delta(&before, "engine.knn.errors") >= 1);
        assert!(after.counter_delta(&before, "join.self.errors") >= 1);
    }

    #[test]
    fn trace_env_knobs_apply_and_are_validated() {
        let _knobs = knob_lock();
        // A valid knob is applied by any command's startup path.
        std::env::set_var("TREESIM_TRACE_WEIGHT_BUDGET", "128");
        dispatch(&argv(&["dist", "a", "a"])).unwrap();
        std::env::remove_var("TREESIM_TRACE_WEIGHT_BUDGET");
        assert_eq!(treesim_obs::trace::weight_budget(), 128);
        treesim_obs::trace::set_weight_budget(64);
        // Validation errors name the variable. (A scratch name keeps the
        // bad value invisible to concurrently dispatching tests.)
        std::env::set_var("TREESIM_TRACE_SCRATCH_KNOB", "a lot");
        let err = env_knob("TREESIM_TRACE_SCRATCH_KNOB").unwrap_err();
        std::env::remove_var("TREESIM_TRACE_SCRATCH_KNOB");
        assert!(err.contains("TREESIM_TRACE_SCRATCH_KNOB"), "{err}");
        assert_eq!(env_knob("TREESIM_TRACE_SCRATCH_KNOB"), Ok(None));
    }

    #[cfg(feature = "server")]
    #[test]
    fn serve_metrics_trace_flags_apply_before_bind() {
        let _knobs = knob_lock();
        // The bind fails, but the knobs are applied first — and an
        // explicit --trace-slo-us suppresses the SLO sync.
        assert!(dispatch(&argv(&[
            "serve-metrics",
            "--addr",
            "definitely:not:an:addr",
            "--trace-sample-every",
            "3",
            "--trace-slo-us",
            "9999",
        ]))
        .is_err());
        assert_eq!(treesim_obs::trace::sample_every(), 3);
        assert_eq!(treesim_obs::trace::slo_us(), 9999);
        // Without the flag, the threshold follows the strictest latency
        // target in the SLO table.
        assert!(dispatch(&argv(&[
            "serve-metrics",
            "--addr",
            "definitely:not:an:addr"
        ]))
        .is_err());
        assert_eq!(treesim_obs::trace::slo_us(), 250_000);
        // Malformed flags are rejected before anything binds.
        assert!(dispatch(&argv(&[
            "serve-metrics",
            "--addr",
            "127.0.0.1:0",
            "--trace-weight-budget",
            "nope",
        ]))
        .is_err());
        treesim_obs::trace::set_sample_every(16);
        treesim_obs::trace::set_slo_us(10_000);
        treesim_obs::trace::set_weight_budget(64);
    }

    #[test]
    fn postings_filter_and_sharded_search() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("postings.trees");
        std::fs::write(
            &data,
            "a(b c)\na(b d)\na(b(c) d)\nx(y z)\nq(r(s t))\na(b c e)\n",
        )
        .unwrap();
        let data_str = data.to_str().unwrap();
        // The postings cascade answers both query kinds, single and sharded.
        dispatch(&argv(&[
            "knn", data_str, "--query", "a(b c)", "--k", "3", "--filter", "postings",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "range", data_str, "--query", "a(b c)", "--tau", "2", "--filter", "postings",
            "--shards", "3",
        ]))
        .unwrap();
        dispatch(&argv(&[
            "knn", data_str, "--query", "a(b c)", "--k", "2", "--shards", "2",
        ]))
        .unwrap();
        // Sharded EXPLAIN runs its consistency check inside dispatch.
        dispatch(&argv(&[
            "explain", data_str, "--query", "a(b c)", "--filter", "postings", "--shards", "3",
        ]))
        .unwrap();
        // A prebuilt index drives the postings filter too.
        let index = dir.join("postings.tsi");
        dispatch(&argv(&[
            "index",
            data_str,
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&argv(&[
            "knn",
            data_str,
            "--query",
            "a(b c)",
            "--filter",
            "postings",
            "--index",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        // Invalid shard counts / flag combinations are rejected.
        assert!(dispatch(&argv(&["knn", data_str, "--query", "a", "--shards", "0"])).is_err());
        assert!(dispatch(&argv(&[
            "knn",
            data_str,
            "--query",
            "a",
            "--shards",
            "2",
            "--index",
            index.to_str().unwrap(),
        ]))
        .is_err());
        assert!(dispatch(&argv(&[
            "explain", data_str, "--query", "a", "--shards", "0"
        ]))
        .is_err());
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&index).ok();
    }

    #[test]
    fn bad_filter_and_level_rejected() {
        let dir = std::env::temp_dir().join("treesim-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("two.trees");
        std::fs::write(&data, "a(b)\na(c)\n").unwrap();
        let data_str = data.to_str().unwrap();
        assert!(dispatch(&argv(&[
            "knn", data_str, "--query", "a", "--filter", "bogus"
        ]))
        .is_err());
        assert!(dispatch(&argv(&["knn", data_str, "--query", "a", "--level", "1"])).is_err());
        std::fs::remove_file(&data).ok();
    }
}
