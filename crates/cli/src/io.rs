//! Dataset file I/O: bracket-notation and XML corpora.

use treesim_tree::parse::xml::XmlOptions;
use treesim_tree::{parse, Forest};

/// Loads a dataset file. Files ending in `.xml` are parsed as concatenated
/// XML documents (text content included); `.tsf` is the compact binary
/// format of [`treesim_tree::codec`]; everything else is
/// whitespace-separated bracket notation.
pub fn load_forest(path: &str) -> Result<Forest, String> {
    if path.ends_with(".tsf") {
        let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let forest =
            treesim_tree::codec::decode_forest(&bytes).map_err(|e| format!("{path}: {e}"))?;
        if forest.is_empty() {
            return Err(format!("{path}: dataset is empty"));
        }
        return Ok(forest);
    }
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    forest_from_str(path, &content)
}

/// Saves a forest in the format implied by the file extension (`.tsf`
/// binary, otherwise bracket notation).
pub fn save_forest(forest: &Forest, path: &str) -> Result<(), String> {
    if path.ends_with(".tsf") {
        let bytes = treesim_tree::codec::encode_forest(forest);
        return std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"));
    }
    save_brackets(forest, path)
}

/// Parses dataset content given a file name (for format detection).
pub fn forest_from_str(path: &str, content: &str) -> Result<Forest, String> {
    let mut forest = Forest::new();
    if path.ends_with(".xml") {
        let mut interner = forest.interner().clone();
        let trees = parse::xml::parse_many(&mut interner, content, XmlOptions::WITH_TEXT)
            .map_err(|e| format!("{path}: {e}"))?;
        *forest.interner_mut() = interner;
        for tree in trees {
            forest.push(tree);
        }
    } else {
        let mut interner = forest.interner().clone();
        let trees = parse::bracket::parse_many(&mut interner, content)
            .map_err(|e| format!("{path}: {e}"))?;
        *forest.interner_mut() = interner;
        for tree in trees {
            forest.push(tree);
        }
    }
    if forest.is_empty() {
        return Err(format!("{path}: dataset is empty"));
    }
    Ok(forest)
}

/// Writes a forest as bracket notation, one tree per line.
pub fn save_brackets(forest: &Forest, path: &str) -> Result<(), String> {
    let mut out = String::new();
    for (_, tree) in forest.iter() {
        out.push_str(&parse::bracket::to_string(tree, forest.interner()));
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Parses a query tree given in bracket notation against a forest's
/// interner (new labels are interned).
pub fn parse_query(forest: &mut Forest, spec: &str) -> Result<treesim_tree::Tree, String> {
    let mut interner = forest.interner().clone();
    let tree = parse::bracket::parse(&mut interner, spec).map_err(|e| format!("query: {e}"))?;
    *forest.interner_mut() = interner;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bracket_roundtrip_via_str() {
        let forest = forest_from_str("d.trees", "a(b c)\na(b)\n").unwrap();
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn xml_detection() {
        let forest = forest_from_str("d.xml", "<a><b/></a><c><d>t</d></c>").unwrap();
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.tree(treesim_tree::TreeId(1)).len(), 3);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        assert!(forest_from_str("d.trees", "  \n ").is_err());
        assert!(forest_from_str("d.trees", "a(").is_err());
    }

    #[test]
    fn tsf_roundtrip() {
        let dir = std::env::temp_dir().join("treesim-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.tsf");
        let path_str = path.to_str().unwrap();
        let forest = forest_from_str("d.trees", "a(b c)\nx(y(z))\n").unwrap();
        save_forest(&forest, path_str).unwrap();
        let reloaded = load_forest(path_str).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.tree(treesim_tree::TreeId(1)).height(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_parsing_extends_interner() {
        let mut forest = forest_from_str("d.trees", "a(b)").unwrap();
        let before = forest.interner().len();
        let query = parse_query(&mut forest, "z(b)").unwrap();
        assert_eq!(query.len(), 2);
        assert!(forest.interner().len() > before);
    }
}
