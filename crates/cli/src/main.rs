//! `treesim` — command-line tree similarity toolkit.
//!
//! ```text
//! treesim gen-synthetic --trees 500 --fanout 4 --size 50 --labels 8 --decay 0.05 --out data.trees
//! treesim gen-dblp --records 500 --out data.xml
//! treesim stats data.trees
//! treesim dist "a(b c)" "a(b d)"
//! treesim knn data.trees --query "a(b(c) d)" -k 5 --filter bibranch
//! treesim range data.trees --query "a(b(c) d)" --tau 3 --filter histo
//! ```
//!
//! Dataset files: `.xml` holds concatenated XML documents; anything else is
//! whitespace-separated bracket notation (one tree per line by convention).

mod args;
mod commands;
mod io;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `treesim help` for usage");
            ExitCode::from(2)
        }
    }
}
