//! A contiguous CSR-style arena for per-forest branch-vector data.
//!
//! The engine historically stored one heap-allocated sparse vector per
//! tree, so every stage-0/1 bound evaluation pointer-chased a fresh
//! allocation. [`VectorArena`] re-lays that data out as three flat slabs —
//! one sorted `branch_ids` run per tree, the matching `counts`, and
//! per-tree `offsets` delimiting each run — built once at engine
//! construction and extended segment-wise on dynamic push. Walking
//! candidates in ascending tree id then touches the slabs strictly
//! sequentially, and the count lanes feed the dense kernels of
//! [`crate::dense`] directly.

use crate::dense::{bdist_soa, shared_mass_lookup};
use crate::ifi::InvertedFileIndex;
use crate::vocab::BranchId;

/// A query's branch counts scattered into a dense lookup table spanning the
/// dataset vocabulary, plus the query's total branch mass.
///
/// Out-of-vocabulary query branches (ids at or past the table) cannot be
/// shared with any indexed tree; they are left out of the table but their
/// occurrences still count toward `total`, so the shared-mass identity
/// `BDist(q,t) = total_q + total_t − 2·shared` stays exact.
#[derive(Debug, Clone)]
pub struct DenseQuery {
    lookup: Vec<u32>,
    total: u64,
}

impl DenseQuery {
    /// Scatters `counts` (branch id → occurrence count, any order, ids may
    /// repeat by accumulating) into a table of `vocab_len` lanes. `total`
    /// is the query's full branch mass — its node count — including any
    /// out-of-vocabulary occurrences.
    pub fn new(
        vocab_len: usize,
        counts: impl IntoIterator<Item = (BranchId, u32)>,
        total: u64,
    ) -> Self {
        let mut lookup = vec![0u32; vocab_len];
        for (branch, count) in counts {
            if let Some(lane) = lookup.get_mut(branch.index()) {
                *lane += count;
            }
        }
        DenseQuery { lookup, total }
    }

    /// The dense count table, one `u32` lane per dataset branch.
    pub fn lookup(&self) -> &[u32] {
        &self.lookup
    }

    /// The query's total branch mass (= its node count).
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The CSR arena: every indexed tree's sorted `(branch, count)` run stored
/// in two shared slabs, delimited by per-tree offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorArena {
    q: usize,
    /// `offsets[t]..offsets[t + 1]` delimits tree `t`'s run; length is
    /// `len() + 1` with `offsets[0] == 0`.
    offsets: Vec<u32>,
    /// Branch ids, ascending within each tree's run.
    branch_ids: Vec<BranchId>,
    /// Occurrence counts, parallel to `branch_ids`.
    counts: Vec<u32>,
    /// Node count per tree (= the run's total mass).
    tree_sizes: Vec<u32>,
}

impl VectorArena {
    /// An empty arena at branch level `q`.
    pub fn new(q: usize) -> Self {
        VectorArena {
            q,
            offsets: vec![0],
            branch_ids: Vec::new(),
            counts: Vec::new(),
            tree_sizes: Vec::new(),
        }
    }

    /// Builds the arena from an inverted file index in one scan: postings
    /// are walked in ascending branch order, so each tree's bucket fills
    /// already sorted (the same argument
    /// [`InvertedFileIndex::positional_vectors`] relies on).
    pub fn from_index(index: &InvertedFileIndex) -> Self {
        let tree_count = index.tree_count();
        let mut buckets: Vec<Vec<(BranchId, u32)>> = (0..tree_count).map(|_| Vec::new()).collect();
        for raw in 0..index.vocab().len() {
            let branch = BranchId(raw as u32);
            for posting in index.postings(branch) {
                if let Some(bucket) = buckets.get_mut(posting.tree.index()) {
                    bucket.push((branch, posting.count()));
                }
            }
        }
        let mut arena = VectorArena::new(index.q());
        for (raw, bucket) in buckets.into_iter().enumerate() {
            let size = index.tree_size(treesim_tree::TreeId(raw as u32));
            arena.push_tree(bucket, size);
        }
        arena
    }

    /// Appends one tree's run as a new segment — the dynamic-index growth
    /// path. `entries` must be sorted by ascending branch id (checked in
    /// debug builds); `tree_size` is the tree's node count.
    pub fn push_tree(
        &mut self,
        entries: impl IntoIterator<Item = (BranchId, u32)>,
        tree_size: u32,
    ) {
        let segment_start = self.branch_ids.len();
        for (branch, count) in entries {
            debug_assert!(
                self.branch_ids.len() == segment_start
                    || self.branch_ids.last().is_some_and(|&p| p < branch),
                "arena segment entries must be sorted by ascending branch id"
            );
            self.branch_ids.push(branch);
            self.counts.push(count);
        }
        debug_assert!(
            u32::try_from(self.branch_ids.len()).is_ok(),
            "arena slab exceeds u32 offsets"
        );
        self.offsets.push(self.branch_ids.len() as u32);
        self.tree_sizes.push(tree_size);
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of trees with a run in the arena.
    pub fn len(&self) -> usize {
        self.tree_sizes.len()
    }

    /// Whether the arena holds no trees.
    pub fn is_empty(&self) -> bool {
        self.tree_sizes.is_empty()
    }

    /// Total number of `(branch, count)` entries across all runs.
    pub fn entry_count(&self) -> usize {
        self.branch_ids.len()
    }

    /// Node count of tree `raw` (0 when out of range).
    pub fn tree_size(&self, raw: u32) -> u32 {
        self.tree_sizes.get(raw as usize).copied().unwrap_or(0)
    }

    /// Tree `raw`'s run as parallel `(branch_ids, counts)` slices — empty
    /// slices when out of range.
    pub fn tree_entries(&self, raw: u32) -> (&[BranchId], &[u32]) {
        let index = raw as usize;
        let (Some(&start), Some(&end)) = (self.offsets.get(index), self.offsets.get(index + 1))
        else {
            return (&[], &[]);
        };
        let range = start as usize..end as usize;
        let ids = self.branch_ids.get(range.clone()).unwrap_or(&[]);
        let counts = self.counts.get(range).unwrap_or(&[]);
        (ids, counts)
    }

    /// `BDist(query, tree)` through the shared-mass identity
    /// (DESIGN §10): `total_q + total_t − 2·Σ_b min(count_q(b), count_t(b))`,
    /// with the shared mass computed by the dense lookup kernel over the
    /// tree's arena run. Exactly equal to the sparse merge — every term is
    /// an exact `u64`.
    pub fn bdist(&self, raw: u32, query: &DenseQuery) -> u64 {
        let (ids, counts) = self.tree_entries(raw);
        let shared = shared_mass_lookup(query.lookup(), ids, counts);
        query.total() + u64::from(self.tree_size(raw)) - 2 * shared
    }

    /// `BDist` between two indexed trees via the SoA merge kernel.
    pub fn bdist_between(&self, a: u32, b: u32) -> u64 {
        let (a_ids, a_counts) = self.tree_entries(a);
        let (b_ids, b_counts) = self.tree_entries(b);
        bdist_soa(a_ids, a_counts, b_ids, b_counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::Forest;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c(d)) b e)").unwrap();
        forest.parse_bracket("a(c(d) b e)").unwrap();
        forest.parse_bracket("a(b c)").unwrap();
        forest
    }

    #[test]
    fn arena_runs_match_positional_vectors() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let arena = VectorArena::from_index(&index);
        let vectors = index.positional_vectors();
        assert_eq!(arena.len(), vectors.len());
        assert_eq!(arena.q(), 2);
        assert_eq!(
            arena.entry_count(),
            vectors.iter().map(|v| v.nonzero_dims()).sum::<usize>()
        );
        for (raw, vector) in vectors.iter().enumerate() {
            let (ids, counts) = arena.tree_entries(raw as u32);
            let sparse: Vec<(BranchId, u32)> = vector.iter_counts().collect();
            let dense: Vec<(BranchId, u32)> =
                ids.iter().copied().zip(counts.iter().copied()).collect();
            assert_eq!(dense, sparse, "tree {raw}");
            assert_eq!(arena.tree_size(raw as u32), vector.tree_size());
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "unsorted run");
        }
        // Out of range is empty, not a panic.
        assert_eq!(arena.tree_entries(99), (&[][..], &[][..]));
        assert_eq!(arena.tree_size(99), 0);
    }

    #[test]
    fn dense_bdist_equals_sparse_bdist() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let arena = VectorArena::from_index(&index);
        let vectors = index.positional_vectors();
        for (qraw, qv) in vectors.iter().enumerate() {
            let query = DenseQuery::new(
                index.vocab().len(),
                qv.iter_counts(),
                u64::from(qv.tree_size()),
            );
            for (traw, tv) in vectors.iter().enumerate() {
                assert_eq!(
                    arena.bdist(traw as u32, &query),
                    qv.bdist(tv),
                    "query {qraw} vs tree {traw}"
                );
                assert_eq!(arena.bdist_between(qraw as u32, traw as u32), qv.bdist(tv));
            }
        }
    }

    #[test]
    fn oov_query_mass_stays_in_total() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let arena = VectorArena::from_index(&index);
        // A query table with ids entirely past the vocabulary: shared mass
        // is zero, so BDist degenerates to total_q + total_t.
        let base = index.vocab().len() as u32;
        let query = DenseQuery::new(
            index.vocab().len(),
            [(BranchId(base + 1), 2), (BranchId(base + 5), 1)],
            3,
        );
        assert!(query.lookup().iter().all(|&lane| lane == 0));
        assert_eq!(arena.bdist(0, &query), 3 + u64::from(arena.tree_size(0)));
    }

    #[test]
    fn push_tree_extends_segments() {
        let mut arena = VectorArena::new(2);
        assert!(arena.is_empty());
        arena.push_tree([(BranchId(0), 2), (BranchId(3), 1)], 3);
        arena.push_tree([], 1);
        arena.push_tree([(BranchId(1), 4)], 4);
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.tree_entries(1), (&[][..], &[][..]));
        let (ids, counts) = arena.tree_entries(2);
        assert_eq!(ids, &[BranchId(1)]);
        assert_eq!(counts, &[4]);
        assert_eq!(arena.tree_size(1), 1);
        assert_eq!(arena.entry_count(), 3);
    }
}
