//! Binary branch extraction (Definitions 2 and 5 of the paper).
//!
//! Every node `u` of a tree `T` contributes exactly one *q-level binary
//! branch*: the preorder label sequence of the perfect binary subtree of
//! height `q − 1` rooted at `u` in the normalized binary representation
//! `B(T)` (missing positions padded with `ε`). For `q = 2` this is the
//! triple `⟨label(u), label(first-child(u)|ε), label(next-sibling(u)|ε)⟩`.
//!
//! Each occurrence is tagged with the 1-based preorder and postorder
//! position of `u` in `T`, feeding the positional distance of §4.2.

use treesim_tree::{BinaryView, LabelId, Tree};

/// One binary branch occurrence: the branch's label sequence and the
/// position of its root node in the original tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchOccurrence {
    /// Preorder label sequence of the branch (length `2^q − 1`).
    pub key: Vec<LabelId>,
    /// 1-based preorder position of the branch root in `T`.
    pub pre: u32,
    /// 1-based postorder position of the branch root in `T`.
    pub post: u32,
}

/// Extracts all q-level binary branch occurrences of `tree`, in preorder of
/// their root nodes.
///
/// # Panics
///
/// Panics if `q < 2` — the paper rules out `q = 1` (no structure recorded)
/// and `q = 0` is meaningless.
///
/// # Examples
///
/// ```
/// use treesim_core::branch::extract_branches;
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let tree = bracket::parse(&mut interner, "a(b c)").unwrap();
/// let occurrences = extract_branches(&tree, 2);
/// assert_eq!(occurrences.len(), 3); // one branch per node
/// // The root's branch is ⟨a, b, ε⟩.
/// let root = &occurrences[0];
/// assert_eq!(interner.resolve(root.key[0]), "a");
/// assert_eq!(interner.resolve(root.key[1]), "b");
/// assert!(root.key[2].is_epsilon());
/// assert_eq!((root.pre, root.post), (1, 3));
/// ```
pub fn extract_branches(tree: &Tree, q: usize) -> Vec<BranchOccurrence> {
    assert!(q >= 2, "binary branches need q >= 2 (got {q})");
    let view = BinaryView::new(tree);
    let positions = tree.positions();
    let mut occurrences = Vec::with_capacity(tree.len());
    let mut key = Vec::with_capacity((1 << q) - 1);
    for node in tree.preorder() {
        view.q_branch_into(node, q, &mut key);
        occurrences.push(BranchOccurrence {
            key: key.clone(),
            pre: positions.pre(node),
            post: positions.post(node),
        });
    }
    occurrences
}

/// The per-operation distortion bound of Theorems 3.2 / 3.3: one edit
/// operation changes at most `4(q−1) + 1` q-level binary branches, so
/// `BDist_q(T1, T2) ≤ [4(q−1)+1] · EDist(T1, T2)`.
#[inline]
pub fn bound_factor(q: usize) -> u64 {
    assert!(q >= 2, "binary branches need q >= 2 (got {q})");
    4 * (q as u64 - 1) + 1
}

/// Lower bound on the unit-cost edit distance from a q-level binary branch
/// distance: `⌈BDist_q / (4(q−1)+1)⌉`.
#[inline]
pub fn edit_lower_bound(bdist: u64, q: usize) -> u64 {
    bdist.div_ceil(bound_factor(q))
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn tree(spec: &str) -> (Tree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let tree = bracket::parse(&mut interner, spec).unwrap();
        (tree, interner)
    }

    #[test]
    fn one_branch_per_node() {
        let (t, _) = tree("a(b(c d) b e)");
        for q in 2..=4 {
            let occurrences = extract_branches(&t, q);
            assert_eq!(occurrences.len(), t.len());
            for occurrence in &occurrences {
                assert_eq!(occurrence.key.len(), (1 << q) - 1);
            }
        }
    }

    #[test]
    fn two_level_branches_match_figure_3_style_expansion() {
        // a(b(c d) b e):
        //   a: ⟨a, b, ε⟩           (first child b, no sibling)
        //   b₁: ⟨b, c, b⟩          (first child c, sibling b₂)
        //   c: ⟨c, ε, d⟩           (leaf, sibling d)
        //   d: ⟨d, ε, ε⟩
        //   b₂: ⟨b, ε, e⟩
        //   e: ⟨e, ε, ε⟩
        let (t, interner) = tree("a(b(c d) b e)");
        let name = |id: LabelId| interner.resolve(id).to_owned();
        let branches: Vec<String> = extract_branches(&t, 2)
            .iter()
            .map(|o| format!("{}|{}|{}", name(o.key[0]), name(o.key[1]), name(o.key[2])))
            .collect();
        assert_eq!(
            branches,
            vec!["a|b|ε", "b|c|b", "c|ε|d", "d|ε|ε", "b|ε|e", "e|ε|ε"]
        );
    }

    #[test]
    fn positions_are_preorder_and_postorder() {
        let (t, _) = tree("a(b(c d) b e)");
        let occurrences = extract_branches(&t, 2);
        let pres: Vec<u32> = occurrences.iter().map(|o| o.pre).collect();
        assert_eq!(pres, vec![1, 2, 3, 4, 5, 6]);
        let posts: Vec<u32> = occurrences.iter().map(|o| o.post).collect();
        // Postorder: c d b(=3) b(? wait) — postorder of a(b(c d) b e) is
        // c d b b e a → positions: a=6, b₁=3, c=1, d=2, b₂=4, e=5.
        assert_eq!(posts, vec![6, 3, 1, 2, 4, 5]);
    }

    #[test]
    fn q3_branch_of_single_node_is_root_plus_epsilons() {
        let (t, _) = tree("a");
        let occurrences = extract_branches(&t, 3);
        assert_eq!(occurrences.len(), 1);
        let key = &occurrences[0].key;
        assert_eq!(key.len(), 7);
        assert!(!key[0].is_epsilon());
        assert!(key[1..].iter().all(|l| l.is_epsilon()));
    }

    #[test]
    fn bound_factor_values() {
        assert_eq!(bound_factor(2), 5);
        assert_eq!(bound_factor(3), 9);
        assert_eq!(bound_factor(4), 13);
    }

    #[test]
    fn edit_lower_bound_rounds_up() {
        assert_eq!(edit_lower_bound(0, 2), 0);
        assert_eq!(edit_lower_bound(1, 2), 1);
        assert_eq!(edit_lower_bound(5, 2), 1);
        assert_eq!(edit_lower_bound(6, 2), 2);
        assert_eq!(edit_lower_bound(9, 3), 1);
        assert_eq!(edit_lower_bound(10, 3), 2);
    }

    #[test]
    #[should_panic(expected = "q >= 2")]
    fn q1_is_rejected() {
        let (t, _) = tree("a");
        extract_branches(&t, 1);
    }
}
