//! Binary persistence for the inverted file index.
//!
//! Rebuilding the IFI is `O(Σ|Tᵢ|)`, but a production deployment indexes
//! once and queries many times; this codec stores the vocabulary and
//! posting lists so an index loads without touching the trees.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "TSI1"                       4 bytes
//! q:u32
//! tree_count:u32, tree_sizes: tree_count × u32
//! vocab_len:u32, then per branch: key of (2^q − 1) × u32 label ids
//! per branch: posting_count:u32, then per posting:
//!     tree:u32, positions_len:u32, positions: len × (pre:u32, post:u32)
//! ```
//!
//! Label ids are raw [`treesim_tree::LabelId`] values, so an index is only
//! meaningful together with the interner/forest it was built from (the
//! dataset codec in `treesim_tree::codec` stores those); `decode_index`
//! validates structure, not label semantics.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use treesim_tree::{LabelId, TreeId};

use crate::ifi::{InvertedFileIndex, Posting};
use crate::vocab::BranchVocab;

/// File magic: "TSI1" (TreeSim Index, version 1).
pub const MAGIC: [u8; 4] = *b"TSI1";

/// Index decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexCodecError {
    /// The input does not start with [`MAGIC`].
    BadMagic,
    /// The input ended prematurely.
    Truncated {
        /// What was being read.
        reading: &'static str,
    },
    /// `q < 2` or an otherwise impossible header value.
    BadHeader,
    /// A posting references a tree id outside the recorded tree count.
    TreeOutOfRange {
        /// The offending raw tree id.
        tree: u32,
    },
    /// Trailing bytes after a complete index.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
}

impl std::fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexCodecError::BadMagic => write!(f, "not a treesim index (bad magic)"),
            IndexCodecError::Truncated { reading } => {
                write!(f, "truncated index while reading {reading}")
            }
            IndexCodecError::BadHeader => write!(f, "invalid index header"),
            IndexCodecError::TreeOutOfRange { tree } => {
                write!(f, "posting references unknown tree {tree}")
            }
            IndexCodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after index")
            }
        }
    }
}

impl std::error::Error for IndexCodecError {}

/// Encodes an index.
pub fn encode_index(index: &InvertedFileIndex) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + index.posting_count() * 12);
    out.put_slice(&MAGIC);
    out.put_u32_le(index.q() as u32);
    out.put_u32_le(index.tree_count() as u32);
    for i in 0..index.tree_count() {
        out.put_u32_le(index.tree_size(TreeId(i as u32)));
    }
    let vocab = index.vocab();
    out.put_u32_le(vocab.len() as u32);
    for (_, key) in vocab.iter() {
        for &label in key {
            out.put_u32_le(label.as_u32());
        }
    }
    for (branch, _) in vocab.iter() {
        let postings = index.postings(branch);
        out.put_u32_le(postings.len() as u32);
        for posting in postings {
            out.put_u32_le(posting.tree.0);
            out.put_u32_le(posting.positions.len() as u32);
            for &(pre, post) in &posting.positions {
                out.put_u32_le(pre);
                out.put_u32_le(post);
            }
        }
    }
    out.freeze()
}

/// Decodes an index.
///
/// # Errors
///
/// Returns an [`IndexCodecError`] describing the first structural problem.
pub fn decode_index(mut input: &[u8]) -> Result<InvertedFileIndex, IndexCodecError> {
    let buf = &mut input;
    if buf.remaining() < 4 || buf.copy_to_bytes(4).as_ref() != MAGIC {
        return Err(IndexCodecError::BadMagic);
    }
    let q = read_u32(buf, "q")? as usize;
    if !(2..=16).contains(&q) {
        return Err(IndexCodecError::BadHeader);
    }
    let tree_count = read_count(buf, "tree count", 4)?;
    let mut tree_sizes = Vec::with_capacity(tree_count);
    for _ in 0..tree_count {
        tree_sizes.push(read_u32(buf, "tree size")?);
    }
    let key_len = (1usize << q) - 1;
    let vocab_len = read_count(buf, "vocabulary length", 4 * key_len)?;
    let mut vocab = BranchVocab::new(q);
    let mut key = vec![LabelId::EPSILON; key_len];
    for _ in 0..vocab_len {
        for slot in key.iter_mut() {
            *slot = LabelId::from_u32(read_u32(buf, "branch key")?);
        }
        vocab.intern(&key);
    }
    let mut postings: Vec<Vec<Posting>> = Vec::with_capacity(vocab_len);
    for _ in 0..vocab_len {
        let posting_count = read_count(buf, "posting count", 8)?;
        let mut list = Vec::with_capacity(posting_count);
        for _ in 0..posting_count {
            let tree = read_u32(buf, "posting tree")?;
            if tree as usize >= tree_count {
                return Err(IndexCodecError::TreeOutOfRange { tree });
            }
            let len = read_count(buf, "positions length", 8)?;
            let mut positions = Vec::with_capacity(len);
            for _ in 0..len {
                let pre = read_u32(buf, "preorder position")?;
                let post = read_u32(buf, "postorder position")?;
                positions.push((pre, post));
            }
            list.push(Posting {
                tree: TreeId(tree),
                positions,
            });
        }
        postings.push(list);
    }
    if buf.has_remaining() {
        return Err(IndexCodecError::TrailingBytes {
            remaining: buf.remaining(),
        });
    }
    Ok(InvertedFileIndex::from_parts(
        vocab, postings, tree_count, tree_sizes,
    ))
}

fn read_u32(buf: &mut &[u8], reading: &'static str) -> Result<u32, IndexCodecError> {
    if buf.remaining() < 4 {
        return Err(IndexCodecError::Truncated { reading });
    }
    Ok(buf.get_u32_le())
}

/// Reads a count whose items each occupy at least `bytes_per_item` bytes;
/// counts implying more data than remains are rejected *before* any
/// allocation.
fn read_count(
    buf: &mut &[u8],
    reading: &'static str,
    bytes_per_item: usize,
) -> Result<usize, IndexCodecError> {
    let count = read_u32(buf, reading)? as usize;
    if count.saturating_mul(bytes_per_item) > buf.remaining() {
        return Err(IndexCodecError::Truncated { reading });
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::Forest;

    fn index() -> InvertedFileIndex {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c(d)) b e)").unwrap();
        forest.parse_bracket("a(c(d) b e)").unwrap();
        forest.parse_bracket("x(y z)").unwrap();
        InvertedFileIndex::build(&forest, 2)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let original = index();
        let decoded = decode_index(&encode_index(&original)).unwrap();
        assert_eq!(decoded.q(), original.q());
        assert_eq!(decoded.tree_count(), original.tree_count());
        assert_eq!(decoded.posting_count(), original.posting_count());
        assert_eq!(decoded.vocab().len(), original.vocab().len());
        assert_eq!(decoded.positional_vectors(), original.positional_vectors());
    }

    #[test]
    fn q3_roundtrip() {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c d) e)").unwrap();
        let original = InvertedFileIndex::build(&forest, 3);
        let decoded = decode_index(&encode_index(&original)).unwrap();
        assert_eq!(decoded.positional_vectors(), original.positional_vectors());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            decode_index(b"XXXX").unwrap_err(),
            IndexCodecError::BadMagic
        );
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode_index(&index());
        for cut in 1..bytes.len() {
            assert!(decode_index(&bytes[..cut]).is_err(), "{cut}-byte prefix");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_index(&index()).to_vec();
        bytes.push(7);
        assert_eq!(
            decode_index(&bytes).unwrap_err(),
            IndexCodecError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn bad_q_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(1); // q = 1 invalid
        bytes.put_u32_le(0);
        bytes.put_u32_le(0);
        assert_eq!(
            decode_index(&bytes).unwrap_err(),
            IndexCodecError::BadHeader
        );
    }

    #[test]
    fn out_of_range_tree_rejected() {
        let mut bytes = BytesMut::new();
        bytes.put_slice(&MAGIC);
        bytes.put_u32_le(2); // q
        bytes.put_u32_le(1); // one tree
        bytes.put_u32_le(3); // its size
        bytes.put_u32_le(1); // one branch
        bytes.put_u32_le(1); // key: 3 labels
        bytes.put_u32_le(0);
        bytes.put_u32_le(0);
        bytes.put_u32_le(1); // one posting
        bytes.put_u32_le(9); // bogus tree id
        bytes.put_u32_le(0); // no positions
        assert_eq!(
            decode_index(&bytes).unwrap_err(),
            IndexCodecError::TreeOutOfRange { tree: 9 }
        );
    }

    #[test]
    fn errors_display() {
        for error in [
            IndexCodecError::BadMagic,
            IndexCodecError::Truncated { reading: "x" },
            IndexCodecError::BadHeader,
            IndexCodecError::TreeOutOfRange { tree: 1 },
            IndexCodecError::TrailingBytes { remaining: 3 },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }
}
