//! Dense, autovectorization-friendly kernels for the cascade hot paths.
//!
//! The filter stages are memory-bandwidth-bound at scale (the paper's
//! pitch: `BDist` is a linear merge), so the kernels here are written for
//! straight-line slice traversal: the id-scan is split from the
//! count-accumulate, counts live in flat `u32` lanes, and the equal-run /
//! tail cases reduce with branch-free `min`/`abs_diff` arithmetic that the
//! compiler can autovectorize. [`shared_mass_lookup`] additionally has an
//! explicitly chunked 8-lane variant selected by the `simd` cargo feature;
//! both variants are always compiled and bit-identical (integer addition
//! is associative, so lane-reordered sums are exact), which the
//! `strict-checks` feature asserts on every dispatch.

use crate::vocab::BranchId;

/// Lane width of the chunked kernels: 8 × `u32` fills a 256-bit vector
/// register, the widest unit portably available without `std::arch`
/// (which `unsafe_code = "deny"` rules out anyway).
pub const LANES: usize = 8;

/// Whether [`shared_mass_lookup`] dispatches to the chunked kernel in this
/// build (the `simd` cargo feature) — lets reports record which path ran.
pub const SIMD_DISPATCH: bool = cfg!(feature = "simd");

/// Sum of the counts of a sparse `(branch, count)` run — the tail term of
/// the L1 merge, consumed in one pass without re-slicing.
#[inline]
fn tail_mass(rest: &[(BranchId, u32)]) -> u64 {
    rest.iter().map(|&(_, count)| u64::from(count)).sum()
}

/// L1 distance of two sparse `(branch, count)` vectors sorted by branch id
/// — the `BDist` merge of Definition 4 as a slice kernel.
///
/// The merge advances by shrinking the two slices (`split_first`), so the
/// loop body performs no indexed accesses, and whichever slice survives the
/// merge is summed directly — the remainder is never re-sliced, removing
/// the double bounds check the indexed `entries[i..]` formulation paid.
pub fn bdist_merge(a: &[(BranchId, u32)], b: &[(BranchId, u32)]) -> u64 {
    let (mut a, mut b) = (a, b);
    let mut distance = 0u64;
    while let (Some((&(id_a, count_a), rest_a)), Some((&(id_b, count_b), rest_b))) =
        (a.split_first(), b.split_first())
    {
        match id_a.cmp(&id_b) {
            std::cmp::Ordering::Less => {
                distance += u64::from(count_a);
                a = rest_a;
            }
            std::cmp::Ordering::Greater => {
                distance += u64::from(count_b);
                b = rest_b;
            }
            std::cmp::Ordering::Equal => {
                distance += u64::from(count_a.abs_diff(count_b));
                a = rest_a;
                b = rest_b;
            }
        }
    }
    distance + tail_mass(a) + tail_mass(b)
}

/// L1 distance of two structure-of-arrays sparse vectors: parallel
/// `branch_ids`/`counts` slices sorted by branch id. Same merge as
/// [`bdist_merge`] over the CSR layout [`crate::arena::VectorArena`] and
/// [`crate::PositionalVector`] store.
pub fn bdist_soa(
    a_ids: &[BranchId],
    a_counts: &[u32],
    b_ids: &[BranchId],
    b_counts: &[u32],
) -> u64 {
    debug_assert_eq!(a_ids.len(), a_counts.len());
    debug_assert_eq!(b_ids.len(), b_counts.len());
    let mut a = a_ids.iter().zip(a_counts).peekable();
    let mut b = b_ids.iter().zip(b_counts).peekable();
    let mut distance = 0u64;
    while let (Some(&(&id_a, &count_a)), Some(&(&id_b, &count_b))) = (a.peek(), b.peek()) {
        match id_a.cmp(&id_b) {
            std::cmp::Ordering::Less => {
                distance += u64::from(count_a);
                a.next();
            }
            std::cmp::Ordering::Greater => {
                distance += u64::from(count_b);
                b.next();
            }
            std::cmp::Ordering::Equal => {
                distance += u64::from(count_a.abs_diff(count_b));
                a.next();
                b.next();
            }
        }
    }
    distance += a.map(|(_, &count)| u64::from(count)).sum::<u64>();
    distance += b.map(|(_, &count)| u64::from(count)).sum::<u64>();
    distance
}

/// Shared branch mass `Σ min(lookup[id], count)` of one tree's arena slice
/// against a dense query lookup table — scalar reference kernel.
///
/// Out-of-table ids (a query table only spans the dataset vocabulary)
/// contribute zero, matching the sparse merge's treatment of unshared
/// branches. The loop body is a gather + `min` + widen + add with no
/// per-element branches, which is exactly the shape autovectorizers handle.
pub fn shared_mass_lookup_scalar(lookup: &[u32], ids: &[BranchId], counts: &[u32]) -> u64 {
    debug_assert_eq!(ids.len(), counts.len());
    ids.iter()
        .zip(counts)
        .map(|(&id, &count)| {
            let query = lookup.get(id.index()).copied().unwrap_or(0);
            u64::from(query.min(count))
        })
        .sum()
}

/// [`shared_mass_lookup_scalar`] with an explicit 8-lane chunked main loop
/// ([`LANES`] × `u32`) and a scalar tail.
///
/// Each lane keeps its own `u64` accumulator, reduced once at the end —
/// unsigned integer addition is associative and the masses fit `u64` by
/// construction (counts are node counts), so the lane-reordered sum is
/// bit-identical to the scalar left-to-right sum.
pub fn shared_mass_lookup_chunked(lookup: &[u32], ids: &[BranchId], counts: &[u32]) -> u64 {
    debug_assert_eq!(ids.len(), counts.len());
    let mut lanes = [0u64; LANES];
    let mut id_chunks = ids.chunks_exact(LANES);
    let mut count_chunks = counts.chunks_exact(LANES);
    for (id_chunk, count_chunk) in (&mut id_chunks).zip(&mut count_chunks) {
        for ((&id, &count), lane) in id_chunk.iter().zip(count_chunk).zip(lanes.iter_mut()) {
            let query = lookup.get(id.index()).copied().unwrap_or(0);
            *lane += u64::from(query.min(count));
        }
    }
    let tail = shared_mass_lookup_scalar(lookup, id_chunks.remainder(), count_chunks.remainder());
    lanes.iter().sum::<u64>() + tail
}

/// The shared-mass kernel the hot paths call: the chunked variant under the
/// `simd` feature, the scalar reference otherwise. Under `strict-checks`
/// the two are asserted equal on every call.
pub fn shared_mass_lookup(lookup: &[u32], ids: &[BranchId], counts: &[u32]) -> u64 {
    #[cfg(feature = "simd")]
    let mass = shared_mass_lookup_chunked(lookup, ids, counts);
    #[cfg(not(feature = "simd"))]
    let mass = shared_mass_lookup_scalar(lookup, ids, counts);
    #[cfg(feature = "strict-checks")]
    debug_assert_eq!(
        mass,
        shared_mass_lookup_scalar(lookup, ids, counts),
        "chunked shared-mass kernel diverged from the scalar reference"
    );
    mass
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<BranchId> {
        raw.iter().map(|&r| BranchId(r)).collect()
    }

    #[test]
    fn bdist_merge_matches_soa_on_disjoint_and_overlapping_runs() {
        let a_ids = ids(&[0, 2, 5, 9]);
        let a_counts = [3u32, 1, 4, 2];
        let b_ids = ids(&[1, 2, 5, 7, 11]);
        let b_counts = [2u32, 1, 1, 6, 1];
        let a_pairs: Vec<(BranchId, u32)> = a_ids
            .iter()
            .copied()
            .zip(a_counts.iter().copied())
            .collect();
        let b_pairs: Vec<(BranchId, u32)> = b_ids
            .iter()
            .copied()
            .zip(b_counts.iter().copied())
            .collect();
        // 3 + 2 + |1-1| + |4-1| + 6 + 2 + 1 = 17
        assert_eq!(bdist_merge(&a_pairs, &b_pairs), 17);
        assert_eq!(bdist_merge(&b_pairs, &a_pairs), 17);
        assert_eq!(bdist_soa(&a_ids, &a_counts, &b_ids, &b_counts), 17);
        assert_eq!(bdist_soa(&b_ids, &b_counts, &a_ids, &a_counts), 17);
        assert_eq!(bdist_merge(&a_pairs, &[]), 10);
        assert_eq!(bdist_merge(&[], &[]), 0);
        assert_eq!(bdist_soa(&[], &[], &b_ids, &b_counts), 11);
    }

    #[test]
    fn chunked_shared_mass_is_bit_identical_to_scalar() {
        // Cover: exact multiple of the lane width, a ragged tail, empty
        // slices, and out-of-table ids (OOV) mixed in.
        let lookup: Vec<u32> = (0..37).map(|i| (i * 7 + 3) % 11).collect();
        for len in [0usize, 1, 7, 8, 9, 16, 23, 64] {
            let tree_ids: Vec<BranchId> = (0..len)
                .map(|i| BranchId((i as u32 * 5 + 1) % 50))
                .collect();
            let counts: Vec<u32> = (0..len).map(|i| (i as u32 * 3 + 1) % 9 + 1).collect();
            let scalar = shared_mass_lookup_scalar(&lookup, &tree_ids, &counts);
            let chunked = shared_mass_lookup_chunked(&lookup, &tree_ids, &counts);
            assert_eq!(scalar, chunked, "len={len}");
            assert_eq!(shared_mass_lookup(&lookup, &tree_ids, &counts), scalar);
        }
        // A fully out-of-table slice shares nothing.
        let oov = ids(&[100, 200, 300, 400, 500, 600, 700, 800, 900]);
        let counts = vec![5u32; oov.len()];
        assert_eq!(shared_mass_lookup_chunked(&lookup, &oov, &counts), 0);
    }
}
