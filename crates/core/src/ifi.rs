//! The extended inverted file index `IFI` of Algorithm 1.
//!
//! The vocabulary holds every distinct binary branch of the dataset; the
//! inverted list of a branch records, per tree, the number of occurrences
//! and the (preorder, postorder) positions at which it occurs. Vector
//! construction (Algorithm 1) is a single pass over the dataset followed by
//! a scan of the index; both are `O(Σ|Tᵢ|)` time and space.

use serde::{Deserialize, Serialize};
use treesim_tree::{Forest, LabelId, TreeId};

use crate::branch::extract_branches;
use crate::matching::Pos;
use crate::positional::PositionalVector;
use crate::vector::BranchVector;
use crate::vocab::{BranchId, BranchVocab};

/// One inverted-list component: a tree containing the branch, with counts
/// and positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The tree containing the branch.
    pub tree: TreeId,
    /// Occurrence positions within that tree, sorted by preorder position.
    pub positions: Vec<Pos>,
}

impl Posting {
    /// Number of occurrences of the branch in [`Posting::tree`].
    pub fn count(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// The inverted file index over a forest's binary branches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedFileIndex {
    vocab: BranchVocab,
    /// Indexed by `BranchId`; postings sorted by tree id.
    postings: Vec<Vec<Posting>>,
    tree_count: usize,
    tree_sizes: Vec<u32>,
}

impl InvertedFileIndex {
    /// Builds the index over every tree of `forest` with q-level branches
    /// (Algorithm 1, lines 1–5).
    pub fn build(forest: &Forest, q: usize) -> Self {
        let mut vocab = BranchVocab::new(q);
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut tree_sizes = Vec::with_capacity(forest.len());
        for (tree_id, tree) in forest.iter() {
            tree_sizes.push(tree.len() as u32);
            for occurrence in extract_branches(tree, q) {
                let branch = vocab.intern(&occurrence.key);
                if branch.index() == postings.len() {
                    postings.push(Vec::new());
                }
                let list = &mut postings[branch.index()];
                match list.last_mut() {
                    Some(last) if last.tree == tree_id => {
                        last.positions.push((occurrence.pre, occurrence.post));
                    }
                    _ => list.push(Posting {
                        tree: tree_id,
                        positions: vec![(occurrence.pre, occurrence.post)],
                    }),
                }
            }
        }
        InvertedFileIndex {
            vocab,
            postings,
            tree_count: forest.len(),
            tree_sizes,
        }
    }

    /// Parallel bulk construction: branch extraction (the dominant cost)
    /// fans out across `threads`; vocabulary interning and posting-list
    /// assembly stay sequential in tree order, so the result is **bit
    /// identical** to [`InvertedFileIndex::build`].
    pub fn build_parallel(forest: &Forest, q: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let trees: Vec<(TreeId, &treesim_tree::Tree)> = forest.iter().collect();
        let chunk_size = trees.len().div_ceil(threads).max(1);
        let extracted: Vec<Vec<(TreeId, Vec<crate::branch::BranchOccurrence>)>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in trees.chunks(chunk_size) {
                    handles.push(scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(id, tree)| (id, extract_branches(tree, q)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("extraction thread panicked"))
                    .collect()
            });

        let mut vocab = BranchVocab::new(q);
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut tree_sizes = Vec::with_capacity(forest.len());
        for (tree_id, occurrences) in extracted.into_iter().flatten() {
            tree_sizes.push(forest.tree(tree_id).len() as u32);
            for occurrence in occurrences {
                let branch = vocab.intern(&occurrence.key);
                if branch.index() == postings.len() {
                    postings.push(Vec::new());
                }
                let list = &mut postings[branch.index()];
                match list.last_mut() {
                    Some(last) if last.tree == tree_id => {
                        last.positions.push((occurrence.pre, occurrence.post));
                    }
                    _ => list.push(Posting {
                        tree: tree_id,
                        positions: vec![(occurrence.pre, occurrence.post)],
                    }),
                }
            }
        }
        InvertedFileIndex {
            vocab,
            postings,
            tree_count: forest.len(),
            tree_sizes,
        }
    }

    /// The branch vocabulary Γ of the dataset.
    pub fn vocab(&self) -> &BranchVocab {
        &self.vocab
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.vocab.q()
    }

    /// Number of indexed trees.
    pub fn tree_count(&self) -> usize {
        self.tree_count
    }

    /// Size (node count) of an indexed tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is out of range.
    pub fn tree_size(&self, tree: TreeId) -> u32 {
        self.tree_sizes[tree.index()]
    }

    /// Reassembles an index from its stored parts (used by the codec).
    pub(crate) fn from_parts(
        vocab: BranchVocab,
        postings: Vec<Vec<Posting>>,
        tree_count: usize,
        tree_sizes: Vec<u32>,
    ) -> Self {
        InvertedFileIndex {
            vocab,
            postings,
            tree_count,
            tree_sizes,
        }
    }

    /// The inverted list of `branch`.
    pub fn postings(&self, branch: BranchId) -> &[Posting] {
        &self.postings[branch.index()]
    }

    /// Trees containing the branch with the given label key, if interned.
    pub fn trees_containing(&self, key: &[LabelId]) -> impl Iterator<Item = TreeId> + '_ {
        self.vocab
            .lookup(key)
            .into_iter()
            .flat_map(|id| self.postings(id).iter().map(|p| p.tree))
    }

    /// Materializes the sparse positional vector of every tree
    /// (Algorithm 1, lines 6–13: one scan of the index).
    pub fn positional_vectors(&self) -> Vec<PositionalVector> {
        let mut tagged: Vec<Vec<(BranchId, Pos)>> =
            (0..self.tree_count).map(|_| Vec::new()).collect();
        for (raw, list) in self.postings.iter().enumerate() {
            let branch = BranchId(raw as u32);
            for posting in list {
                let bucket = &mut tagged[posting.tree.index()];
                for &pos in &posting.positions {
                    bucket.push((branch, pos));
                }
            }
        }
        tagged
            .into_iter()
            .enumerate()
            .map(|(i, t)| PositionalVector::from_tagged(self.q(), self.tree_sizes[i], t))
            .collect()
    }

    /// Materializes the plain branch vectors of every tree.
    pub fn branch_vectors(&self, forest: &Forest) -> Vec<BranchVector> {
        // Plain vectors are cheap to rebuild from the trees through the
        // frozen vocabulary; reuse the query path with a clone guard.
        forest
            .iter()
            .map(|(_, tree)| {
                let mut query = crate::vocab::QueryVocab::new(&self.vocab);
                let vector = BranchVector::build_query(tree, &mut query);
                debug_assert_eq!(query.novel_count(), 0, "dataset tree had novel branch");
                vector
            })
            .collect()
    }

    /// Total number of postings (≈ total nodes in the dataset) — the
    /// `O(Σ|Tᵢ|)` space bound of §4.4.
    pub fn posting_count(&self) -> usize {
        self.postings
            .iter()
            .map(|list| list.iter().map(|p| p.positions.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c(d)) b e)").unwrap();
        forest.parse_bracket("a(c(d) b e)").unwrap();
        forest.parse_bracket("a(b c)").unwrap();
        forest
    }

    #[test]
    fn posting_count_equals_total_nodes() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        assert_eq!(index.posting_count(), forest.stats().total_nodes);
        assert_eq!(index.tree_count(), 3);
        assert_eq!(index.q(), 2);
    }

    #[test]
    fn trees_containing_shared_branch() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        // Branch ⟨c, ε, d⟩? In tree 0: c has child d → ⟨c, d, ...⟩. The
        // leaf-with-no-sibling branch ⟨e, ε, ε⟩ occurs in trees 0 and 1.
        let interner = forest.interner();
        let e = interner.get("e").unwrap();
        let eps = LabelId::EPSILON;
        let hits: Vec<TreeId> = index.trees_containing(&[e, eps, eps]).collect();
        assert_eq!(hits, vec![TreeId(0), TreeId(1)]);
        // Unknown branch → empty.
        let z_hits: Vec<TreeId> = index.trees_containing(&[eps, eps, eps]).collect();
        assert!(z_hits.is_empty());
    }

    #[test]
    fn positional_vectors_match_direct_construction() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let from_index = index.positional_vectors();
        // Rebuild directly with the same vocabulary order.
        let mut vocab = BranchVocab::new(2);
        let direct: Vec<PositionalVector> = forest
            .iter()
            .map(|(_, t)| PositionalVector::build(t, &mut vocab))
            .collect();
        assert_eq!(from_index.len(), direct.len());
        for (a, b) in from_index.iter().zip(&direct) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn branch_vectors_cover_all_trees() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let vectors = index.branch_vectors(&forest);
        assert_eq!(vectors.len(), 3);
        for ((_, tree), vector) in forest.iter().zip(&vectors) {
            assert_eq!(vector.total_count(), tree.len() as u64);
        }
    }

    #[test]
    fn q3_index_builds() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 3);
        assert_eq!(index.posting_count(), forest.stats().total_nodes);
        let vectors = index.positional_vectors();
        assert_eq!(vectors[0].q(), 3);
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let mut forest = forest();
        for i in 0..40 {
            forest
                .parse_bracket(&format!("a(b{} c(d e{}) f)", i % 7, i % 3))
                .unwrap();
        }
        let serial = InvertedFileIndex::build(&forest, 2);
        for threads in [1, 2, 4, 7] {
            let parallel = InvertedFileIndex::build_parallel(&forest, 2, threads);
            assert_eq!(parallel.vocab().len(), serial.vocab().len());
            assert_eq!(parallel.posting_count(), serial.posting_count());
            // Identical vectors (ids included) because interning order is
            // preserved.
            assert_eq!(
                parallel.positional_vectors(),
                serial.positional_vectors(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn vocabulary_is_shared_across_trees() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        // |Γ| is far below the total node count because branches repeat.
        assert!(index.vocab().len() < forest.stats().total_nodes);
        assert!(!index.vocab().is_empty());
    }
}
