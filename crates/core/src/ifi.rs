//! The extended inverted file index `IFI` of Algorithm 1.
//!
//! The vocabulary holds every distinct binary branch of the dataset; the
//! inverted list of a branch records, per tree, the number of occurrences
//! and the (preorder, postorder) positions at which it occurs. Vector
//! construction (Algorithm 1) is a single pass over the dataset followed by
//! a scan of the index; both are `O(Σ|Tᵢ|)` time and space.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use treesim_tree::{Forest, LabelId, TreeId};

use crate::branch::extract_branches;
use crate::matching::Pos;
use crate::positional::PositionalVector;
use crate::vector::BranchVector;
use crate::vocab::{BranchId, BranchVocab};

/// Merge of per-branch posting runs, accumulating per-tree shared branch
/// mass `Σ_b min(count_q(b), count_t(b))`.
///
/// Each run is `(query_count, postings)` for one of the query's branches:
/// `query_count` occurrences on the query side and an iterator of
/// `(tree, count)` pairs **sorted by tree id** (the inverted-list order
/// [`InvertedFileIndex`] maintains). The output is sorted by tree id and
/// contains exactly the trees that share at least one branch with the
/// query — trees sharing nothing never appear, which is what makes the
/// postings candidate generator sub-linear on selective queries. Tree ids
/// at or past `tree_count` are ignored (they cannot be indexed trees).
///
/// The `min` clamp makes the accumulated mass exactly the shared-mass term
/// of the binary branch distance:
/// `BDist(q,t) = |BRV(q)| + |BRV(t)| − 2·Σ_b min(count_q(b), count_t(b))`,
/// so a caller holding the total masses recovers `BDist` itself (see
/// DESIGN §10).
///
/// Internally this is a dense scatter-accumulate over a `tree_count`-lane
/// table rather than a `BinaryHeap` k-way merge: each run streams straight
/// into its trees' lanes (no per-element heap traffic), touched lanes are
/// remembered and sorted once at the end. Exact `u64` accumulation in any
/// order is associative, so the output is identical to the heap merge —
/// which survives as [`merge_shared_mass_sparse`], the `strict-checks`
/// oracle.
pub fn merge_shared_mass<I>(tree_count: usize, runs: Vec<(u32, I)>) -> Vec<(TreeId, u64)>
where
    I: Iterator<Item = (TreeId, u32)>,
{
    // u64::MAX marks an untouched lane so that trees reached only through
    // zero-mass pairs (query_count == 0) still appear in the output, the
    // same membership semantics the heap merge had.
    const UNSEEN: u64 = u64::MAX;
    let mut mass: Vec<u64> = vec![UNSEEN; tree_count];
    let mut touched: Vec<TreeId> = Vec::new();
    for (query_count, run) in runs {
        for (tree, count) in run {
            let Some(lane) = mass.get_mut(tree.index()) else {
                continue;
            };
            let shared = u64::from(count.min(query_count));
            if *lane == UNSEEN {
                *lane = shared;
                touched.push(tree);
            } else {
                *lane += shared;
            }
        }
    }
    touched.sort_unstable();
    touched
        .into_iter()
        .map(|tree| {
            let shared = mass.get(tree.index()).copied().unwrap_or(0);
            (tree, shared)
        })
        .collect()
}

/// The original `BinaryHeap` k-way formulation of [`merge_shared_mass`],
/// kept as the allocation-free-per-tree reference: property tests and the
/// `strict-checks` assertions in the index paths compare the dense scatter
/// kernel against it, and the `ablation-simd` bench reports both.
pub fn merge_shared_mass_sparse<I>(runs: Vec<(u32, I)>) -> Vec<(TreeId, u64)>
where
    I: Iterator<Item = (TreeId, u32)>,
{
    // Cursor state per run: the pending (tree, count) head plus the rest.
    let mut cursors: Vec<(u32, I)> = Vec::with_capacity(runs.len());
    let mut heap: BinaryHeap<Reverse<(TreeId, usize)>> = BinaryHeap::with_capacity(runs.len());
    let mut heads: Vec<Option<(TreeId, u32)>> = Vec::with_capacity(runs.len());
    for (query_count, mut run) in runs {
        let head = run.next();
        let index = cursors.len();
        cursors.push((query_count, run));
        heads.push(head);
        if let Some((tree, _)) = head {
            heap.push(Reverse((tree, index)));
        }
    }
    let mut out: Vec<(TreeId, u64)> = Vec::new();
    while let Some(Reverse((tree, index))) = heap.pop() {
        let Some((head_tree, count)) = heads.get(index).copied().flatten() else {
            continue;
        };
        debug_assert_eq!(head_tree, tree, "heap key drifted from cursor head");
        let Some((query_count, run)) = cursors.get_mut(index) else {
            continue;
        };
        let shared = u64::from(count.min(*query_count));
        match out.last_mut() {
            Some((last, mass)) if *last == tree => *mass += shared,
            _ => out.push((tree, shared)),
        }
        let next = run.next();
        if let Some((next_tree, _)) = next {
            debug_assert!(next_tree > tree, "posting run not sorted by tree id");
            heap.push(Reverse((next_tree, index)));
        }
        if let Some(slot) = heads.get_mut(index) {
            *slot = next;
        }
    }
    out
}

/// One inverted-list component: a tree containing the branch, with counts
/// and positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The tree containing the branch.
    pub tree: TreeId,
    /// Occurrence positions within that tree, sorted by preorder position.
    pub positions: Vec<Pos>,
}

impl Posting {
    /// Number of occurrences of the branch in [`Posting::tree`].
    pub fn count(&self) -> u32 {
        self.positions.len() as u32
    }
}

/// The inverted file index over a forest's binary branches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedFileIndex {
    vocab: BranchVocab,
    /// Indexed by `BranchId`; postings sorted by tree id.
    postings: Vec<Vec<Posting>>,
    tree_count: usize,
    tree_sizes: Vec<u32>,
}

impl InvertedFileIndex {
    /// Builds the index over every tree of `forest` with q-level branches
    /// (Algorithm 1, lines 1–5).
    pub fn build(forest: &Forest, q: usize) -> Self {
        let mut vocab = BranchVocab::new(q);
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut tree_sizes = Vec::with_capacity(forest.len());
        for (tree_id, tree) in forest.iter() {
            tree_sizes.push(tree.len() as u32);
            for occurrence in extract_branches(tree, q) {
                let branch = vocab.intern(&occurrence.key);
                if branch.index() == postings.len() {
                    postings.push(Vec::new());
                }
                let list = &mut postings[branch.index()];
                match list.last_mut() {
                    Some(last) if last.tree == tree_id => {
                        last.positions.push((occurrence.pre, occurrence.post));
                    }
                    _ => list.push(Posting {
                        tree: tree_id,
                        positions: vec![(occurrence.pre, occurrence.post)],
                    }),
                }
            }
        }
        InvertedFileIndex {
            vocab,
            postings,
            tree_count: forest.len(),
            tree_sizes,
        }
    }

    /// Parallel bulk construction: branch extraction (the dominant cost)
    /// fans out across `threads`; vocabulary interning and posting-list
    /// assembly stay sequential in tree order, so the result is **bit
    /// identical** to [`InvertedFileIndex::build`].
    pub fn build_parallel(forest: &Forest, q: usize, threads: usize) -> Self {
        let threads = threads.max(1);
        let trees: Vec<(TreeId, &treesim_tree::Tree)> = forest.iter().collect();
        let chunk_size = trees.len().div_ceil(threads).max(1);
        let extracted: Vec<Vec<(TreeId, Vec<crate::branch::BranchOccurrence>)>> =
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in trees.chunks(chunk_size) {
                    handles.push(scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&(id, tree)| (id, extract_branches(tree, q)))
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("extraction thread panicked"))
                    .collect()
            });

        let mut vocab = BranchVocab::new(q);
        let mut postings: Vec<Vec<Posting>> = Vec::new();
        let mut tree_sizes = Vec::with_capacity(forest.len());
        for (tree_id, occurrences) in extracted.into_iter().flatten() {
            tree_sizes.push(forest.tree(tree_id).len() as u32);
            for occurrence in occurrences {
                let branch = vocab.intern(&occurrence.key);
                if branch.index() == postings.len() {
                    postings.push(Vec::new());
                }
                let list = &mut postings[branch.index()];
                match list.last_mut() {
                    Some(last) if last.tree == tree_id => {
                        last.positions.push((occurrence.pre, occurrence.post));
                    }
                    _ => list.push(Posting {
                        tree: tree_id,
                        positions: vec![(occurrence.pre, occurrence.post)],
                    }),
                }
            }
        }
        InvertedFileIndex {
            vocab,
            postings,
            tree_count: forest.len(),
            tree_sizes,
        }
    }

    /// The branch vocabulary Γ of the dataset.
    pub fn vocab(&self) -> &BranchVocab {
        &self.vocab
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.vocab.q()
    }

    /// Number of indexed trees.
    pub fn tree_count(&self) -> usize {
        self.tree_count
    }

    /// Size (node count) of an indexed tree.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is out of range.
    pub fn tree_size(&self, tree: TreeId) -> u32 {
        self.tree_sizes[tree.index()]
    }

    /// Reassembles an index from its stored parts (used by the codec).
    pub(crate) fn from_parts(
        vocab: BranchVocab,
        postings: Vec<Vec<Posting>>,
        tree_count: usize,
        tree_sizes: Vec<u32>,
    ) -> Self {
        InvertedFileIndex {
            vocab,
            postings,
            tree_count,
            tree_sizes,
        }
    }

    /// The inverted list of `branch`.
    pub fn postings(&self, branch: BranchId) -> &[Posting] {
        &self.postings[branch.index()]
    }

    /// Trees containing the branch with the given label key, if interned.
    pub fn trees_containing(&self, key: &[LabelId]) -> impl Iterator<Item = TreeId> + '_ {
        self.vocab
            .lookup(key)
            .into_iter()
            .flat_map(|id| self.postings(id).iter().map(|p| p.tree))
    }

    /// Materializes the sparse positional vector of every tree
    /// (Algorithm 1, lines 6–13: one scan of the index).
    pub fn positional_vectors(&self) -> Vec<PositionalVector> {
        let mut tagged: Vec<Vec<(BranchId, Pos)>> =
            (0..self.tree_count).map(|_| Vec::new()).collect();
        for (raw, list) in self.postings.iter().enumerate() {
            let branch = BranchId(raw as u32);
            for posting in list {
                let bucket = &mut tagged[posting.tree.index()];
                for &pos in &posting.positions {
                    bucket.push((branch, pos));
                }
            }
        }
        tagged
            .into_iter()
            .enumerate()
            .map(|(i, t)| PositionalVector::from_tagged(self.q(), self.tree_sizes[i], t))
            .collect()
    }

    /// Materializes the plain branch vectors of every tree.
    pub fn branch_vectors(&self, forest: &Forest) -> Vec<BranchVector> {
        // Plain vectors are cheap to rebuild from the trees through the
        // frozen vocabulary; reuse the query path with a clone guard.
        forest
            .iter()
            .map(|(_, tree)| {
                let mut query = crate::vocab::QueryVocab::new(&self.vocab);
                let vector = BranchVector::build_query(tree, &mut query);
                debug_assert_eq!(query.novel_count(), 0, "dataset tree had novel branch");
                vector
            })
            .collect()
    }

    /// Per-tree shared branch mass `Σ_b min(count_q(b), count_t(b))`
    /// between a query's branch multiset and every indexed tree, via a
    /// k-way merge of the query branches' inverted lists
    /// ([`merge_shared_mass`]).
    ///
    /// `query_counts` maps each of the query's **in-vocabulary** branches
    /// to its occurrence count; out-of-vocabulary query branches have
    /// empty inverted lists by definition and contribute zero shared
    /// mass, so omitting them is exact. `BranchId`s past the vocabulary
    /// (a [`crate::vocab::QueryVocab`] extension) are skipped for the
    /// same reason. The result is sorted by tree id and omits trees that
    /// share no branch with the query.
    pub fn shared_branch_mass(&self, query_counts: &[(BranchId, u32)]) -> Vec<(TreeId, u64)> {
        let runs: Vec<(u32, _)> = query_counts
            .iter()
            .filter(|(branch, _)| branch.index() < self.postings.len())
            .map(|&(branch, count)| {
                let list = self.postings(branch);
                (count, list.iter().map(|p| (p.tree, p.count())))
            })
            .collect();
        let merged = merge_shared_mass(self.tree_count, runs);
        #[cfg(feature = "strict-checks")]
        debug_assert_eq!(
            merged,
            merge_shared_mass_sparse(
                query_counts
                    .iter()
                    .filter(|(branch, _)| branch.index() < self.postings.len())
                    .map(|&(branch, count)| {
                        let list = self.postings(branch);
                        (count, list.iter().map(|p| (p.tree, p.count())))
                    })
                    .collect(),
            ),
            "dense shared-mass scatter diverged from the k-way heap merge"
        );
        merged
    }

    /// Total number of postings (≈ total nodes in the dataset) — the
    /// `O(Σ|Tᵢ|)` space bound of §4.4.
    pub fn posting_count(&self) -> usize {
        self.postings
            .iter()
            .map(|list| list.iter().map(|p| p.positions.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        forest.parse_bracket("a(b(c(d)) b e)").unwrap();
        forest.parse_bracket("a(c(d) b e)").unwrap();
        forest.parse_bracket("a(b c)").unwrap();
        forest
    }

    #[test]
    fn posting_count_equals_total_nodes() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        assert_eq!(index.posting_count(), forest.stats().total_nodes);
        assert_eq!(index.tree_count(), 3);
        assert_eq!(index.q(), 2);
    }

    #[test]
    fn trees_containing_shared_branch() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        // Branch ⟨c, ε, d⟩? In tree 0: c has child d → ⟨c, d, ...⟩. The
        // leaf-with-no-sibling branch ⟨e, ε, ε⟩ occurs in trees 0 and 1.
        let interner = forest.interner();
        let e = interner.get("e").unwrap();
        let eps = LabelId::EPSILON;
        let hits: Vec<TreeId> = index.trees_containing(&[e, eps, eps]).collect();
        assert_eq!(hits, vec![TreeId(0), TreeId(1)]);
        // Unknown branch → empty.
        let z_hits: Vec<TreeId> = index.trees_containing(&[eps, eps, eps]).collect();
        assert!(z_hits.is_empty());
    }

    #[test]
    fn positional_vectors_match_direct_construction() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let from_index = index.positional_vectors();
        // Rebuild directly with the same vocabulary order.
        let mut vocab = BranchVocab::new(2);
        let direct: Vec<PositionalVector> = forest
            .iter()
            .map(|(_, t)| PositionalVector::build(t, &mut vocab))
            .collect();
        assert_eq!(from_index.len(), direct.len());
        for (a, b) in from_index.iter().zip(&direct) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn branch_vectors_cover_all_trees() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let vectors = index.branch_vectors(&forest);
        assert_eq!(vectors.len(), 3);
        for ((_, tree), vector) in forest.iter().zip(&vectors) {
            assert_eq!(vector.total_count(), tree.len() as u64);
        }
    }

    #[test]
    fn q3_index_builds() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 3);
        assert_eq!(index.posting_count(), forest.stats().total_nodes);
        let vectors = index.positional_vectors();
        assert_eq!(vectors[0].q(), 3);
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let mut forest = forest();
        for i in 0..40 {
            forest
                .parse_bracket(&format!("a(b{} c(d e{}) f)", i % 7, i % 3))
                .unwrap();
        }
        let serial = InvertedFileIndex::build(&forest, 2);
        for threads in [1, 2, 4, 7] {
            let parallel = InvertedFileIndex::build_parallel(&forest, 2, threads);
            assert_eq!(parallel.vocab().len(), serial.vocab().len());
            assert_eq!(parallel.posting_count(), serial.posting_count());
            // Identical vectors (ids included) because interning order is
            // preserved.
            assert_eq!(
                parallel.positional_vectors(),
                serial.positional_vectors(),
                "threads={threads}"
            );
        }
    }

    /// In-vocabulary branch counts of `tree` under `index`'s frozen
    /// vocabulary, plus the total branch mass (= node count, which also
    /// covers out-of-vocabulary branches).
    fn query_counts(
        index: &InvertedFileIndex,
        tree: &treesim_tree::Tree,
    ) -> (Vec<(BranchId, u32)>, u64) {
        let mut query_vocab = crate::vocab::QueryVocab::new(index.vocab());
        let vector = PositionalVector::build_query(tree, &mut query_vocab);
        let base = index.vocab().len();
        let counts = vector
            .iter_counts()
            .filter(|(branch, _)| branch.index() < base)
            .collect();
        (counts, u64::from(vector.tree_size()))
    }

    #[test]
    fn shared_mass_recovers_exact_bdist() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        let vectors = index.positional_vectors();
        for (query_id, query_tree) in forest.iter() {
            let (counts, total_q) = query_counts(&index, query_tree);
            let shared = index.shared_branch_mass(&counts);
            assert!(shared.windows(2).all(|w| w[0].0 < w[1].0), "unsorted");
            for (tree_id, _) in forest.iter() {
                let mass = shared
                    .binary_search_by_key(&tree_id, |&(t, _)| t)
                    .map(|i| shared[i].1)
                    .unwrap_or(0);
                let est = total_q + u64::from(index.tree_size(tree_id)) - 2 * mass;
                let exact = vectors[query_id.index()].bdist(&vectors[tree_id.index()]);
                assert_eq!(est, exact, "query {query_id:?} vs {tree_id:?}");
            }
        }
    }

    #[test]
    fn shared_mass_skips_oov_and_unshared_trees() {
        let mut forest = forest();
        // A tree sharing no branch with the others.
        forest.parse_bracket("p(q r)").unwrap();
        let index = {
            // Index only the first three trees; the fourth becomes a
            // query whose branches are 100% out of vocabulary.
            let mut small = Forest::new();
            *small.interner_mut() = forest.interner().clone();
            for (_, tree) in forest.iter().take(3) {
                small.push(tree.clone());
            }
            InvertedFileIndex::build(&small, 2)
        };
        let oov_query = forest.tree(TreeId(3));
        let (counts, total) = query_counts(&index, oov_query);
        assert!(counts.is_empty(), "every query branch should be novel");
        assert_eq!(total, 3);
        assert!(index.shared_branch_mass(&counts).is_empty());
        // Ids beyond the vocabulary are ignored rather than panicking.
        let bogus = vec![(BranchId(index.vocab().len() as u32 + 7), 2)];
        assert!(index.shared_branch_mass(&bogus).is_empty());
    }

    #[test]
    fn merge_kernel_handles_duplicate_trees_across_runs() {
        // Two runs both naming tree 1: masses accumulate, min-clamped.
        let runs = || {
            vec![
                (2u32, vec![(TreeId(0), 5u32), (TreeId(1), 1)].into_iter()),
                (3u32, vec![(TreeId(1), 4u32), (TreeId(2), 3)].into_iter()),
            ]
        };
        let merged = merge_shared_mass(3, runs());
        assert_eq!(merged, vec![(TreeId(0), 2), (TreeId(1), 4), (TreeId(2), 3)]);
        assert_eq!(merged, merge_shared_mass_sparse(runs()));
        let empty = || Vec::<(u32, std::vec::IntoIter<(TreeId, u32)>)>::new();
        assert!(merge_shared_mass(3, empty()).is_empty());
        assert!(merge_shared_mass(0, runs()).is_empty());
        assert!(merge_shared_mass_sparse(empty()).is_empty());
        // A zero-count query branch still marks membership at zero mass —
        // dense and sparse agree on the zero-mass-entry semantics.
        let zero_run = || vec![(0u32, vec![(TreeId(1), 9u32)].into_iter())];
        assert_eq!(merge_shared_mass(3, zero_run()), vec![(TreeId(1), 0)]);
        assert_eq!(merge_shared_mass_sparse(zero_run()), vec![(TreeId(1), 0)]);
    }

    #[test]
    fn vocabulary_is_shared_across_trees() {
        let forest = forest();
        let index = InvertedFileIndex::build(&forest, 2);
        // |Γ| is far below the total node count because branches repeat.
        assert!(index.vocab().len() < forest.stats().total_nodes);
        assert!(!index.vocab().is_empty());
    }
}
