//! Incremental binary branch vector maintenance.
//!
//! Theorem 3.2's proof rests on the locality of edit operations: one
//! operation perturbs at most five binary branches. This module exploits
//! the same locality to keep a tree's branch vector up to date under edit
//! operations in `O(1)` branch recomputations per operation — instead of
//! re-extracting the whole tree — which is what a production index needs
//! for mutable datasets.
//!
//! The *positional* information is deliberately not maintained: an
//! insertion or deletion shifts the pre/postorder positions of up to `O(n)`
//! nodes, so positional vectors are rebuilt on demand instead.

use std::collections::HashMap;

use treesim_tree::{BinaryView, LabelId, NodeId, Tree, TreeError};

/// A tree paired with its incrementally maintained branch-count multiset.
#[derive(Debug, Clone)]
pub struct IncrementalTree {
    tree: Tree,
    q: usize,
    /// Branch key → occurrence count (absent = 0).
    counts: HashMap<Vec<LabelId>, u32>,
}

impl IncrementalTree {
    /// Wraps `tree`, extracting its initial q-level branch counts.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`.
    pub fn new(tree: Tree, q: usize) -> Self {
        assert!(q >= 2, "binary branches need q >= 2 (got {q})");
        let mut counts = HashMap::new();
        for occurrence in crate::branch::extract_branches(&tree, q) {
            *counts.entry(occurrence.key).or_insert(0) += 1;
        }
        IncrementalTree { tree, q, counts }
    }

    /// The wrapped tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The branch level.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Current branch counts (key → occurrences).
    pub fn counts(&self) -> &HashMap<Vec<LabelId>, u32> {
        &self.counts
    }

    /// L1 distance between the maintained multiset and another's.
    pub fn bdist(&self, other: &IncrementalTree) -> u64 {
        assert_eq!(self.q, other.q, "mixing branch levels");
        let mut distance = 0u64;
        for (key, &count) in &self.counts {
            let other_count = other.counts.get(key).copied().unwrap_or(0);
            distance += u64::from(count.abs_diff(other_count));
        }
        for (key, &count) in &other.counts {
            if !self.counts.contains_key(key) {
                distance += u64::from(count);
            }
        }
        distance
    }

    /// Relabels `node`, updating the affected branches (≤ 2 by Lemma 3.1,
    /// but the q-level generalization touches up to `q` ancestors within
    /// the perfect-subtree window, all found by walking binary parents).
    pub fn relabel(&mut self, node: NodeId, label: LabelId) {
        let anchors = self.anchors_around(node);
        self.with_anchor_diff(&anchors, |tree| tree.relabel(node, label));
    }

    /// The *insert* edit operation (see
    /// [`Tree::insert_above_children`]), with localized vector update.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError`] from the structural operation; the vector
    /// is unchanged on error.
    pub fn insert_above_children(
        &mut self,
        parent: NodeId,
        label: LabelId,
        start: usize,
        count: usize,
    ) -> Result<NodeId, TreeError> {
        // Validate first so a failed insert leaves the counts untouched.
        if start + count > self.tree.degree(parent) {
            // Delegate for the precise error value.
            return self
                .tree
                .insert_above_children(parent, label, start, count)
                .map(|_| unreachable!("insert must fail"));
        }
        let mut anchors = self.anchors_around(parent);
        if start > 0 {
            if let Some(before) = self.tree.child_at(parent, start - 1) {
                anchors.extend(self.anchors_around(before));
            }
        }
        if count > 0 {
            if let Some(last_adopted) = self.tree.child_at(parent, start + count - 1) {
                anchors.extend(self.anchors_around(last_adopted));
            }
            if let Some(first_adopted) = self.tree.child_at(parent, start) {
                anchors.extend(self.anchors_around(first_adopted));
            }
        }
        let new_node = self.with_anchor_diff(&anchors, |tree| {
            tree.insert_above_children(parent, label, start, count)
                .expect("validated above")
        });
        // Account for the new node's own branch.
        self.add_branch_of(new_node);
        Ok(new_node)
    }

    /// The *delete* edit operation (see [`Tree::remove_node`]), with
    /// localized vector update.
    ///
    /// # Errors
    ///
    /// Propagates [`TreeError::CannotDeleteRoot`]; the vector is unchanged
    /// on error.
    pub fn remove_node(&mut self, node: NodeId) -> Result<(), TreeError> {
        if node == self.tree.root() {
            return Err(TreeError::CannotDeleteRoot);
        }
        // The deleted node's own branch disappears.
        self.remove_branch_of(node);
        let mut anchors = self.anchors_around(node);
        anchors.retain(|&a| a != node);
        if let Some(last_child) = self.tree.last_child(node) {
            anchors.extend(self.anchors_around(last_child));
            anchors.retain(|&a| a != node);
        }
        self.with_anchor_diff(&anchors, |tree| {
            tree.remove_node(node).expect("non-root checked");
        });
        Ok(())
    }

    /// Conservative set of live nodes whose branches may be affected by a
    /// change at `node`: within the q-level window, every node whose
    /// perfect binary subtree can reach `node` is at binary-distance
    /// < q above it; for q = 2 that is `node`, its parent (when `node` is a
    /// first child) and its previous sibling. Walking `q − 1` binary-parent
    /// steps covers the general case.
    fn anchors_around(&self, node: NodeId) -> Vec<NodeId> {
        let mut anchors = vec![node];
        let mut frontier = vec![node];
        for _ in 0..self.q - 1 {
            let mut next = Vec::new();
            for &n in &frontier {
                // Binary parent: the tree parent when n is a first child,
                // otherwise the previous sibling.
                let binary_parent = match self.tree.prev_sibling(n) {
                    Some(previous) => Some(previous),
                    None => self.tree.parent(n),
                };
                if let Some(p) = binary_parent {
                    next.push(p);
                }
            }
            anchors.extend(next.iter().copied());
            frontier = next;
        }
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }

    /// Removes the old branches of `anchors`, applies `mutate`, re-adds
    /// the new branches of the surviving anchors and returns `mutate`'s
    /// result. Duplicates in `anchors` (unioned chains share ancestors)
    /// are removed first.
    fn with_anchor_diff<T, M: FnOnce(&mut Tree) -> T>(
        &mut self,
        anchors: &[NodeId],
        mutate: M,
    ) -> T {
        let mut anchors: Vec<NodeId> = anchors.to_vec();
        anchors.sort_unstable();
        anchors.dedup();
        let anchors = &anchors[..];
        for &anchor in anchors {
            if self.tree.contains(anchor) {
                self.remove_branch_of(anchor);
            }
        }
        let result = mutate(&mut self.tree);
        for &anchor in anchors {
            if self.tree.contains(anchor) {
                self.add_branch_of(anchor);
            }
        }
        result
    }

    fn branch_key_of(&self, node: NodeId) -> Vec<LabelId> {
        let view = BinaryView::new(&self.tree);
        let mut key = Vec::with_capacity((1 << self.q) - 1);
        view.q_branch_into(node, self.q, &mut key);
        key
    }

    fn add_branch_of(&mut self, node: NodeId) {
        let key = self.branch_key_of(node);
        *self.counts.entry(key).or_insert(0) += 1;
    }

    fn remove_branch_of(&mut self, node: NodeId) {
        let key = self.branch_key_of(node);
        match self.counts.get_mut(&key) {
            Some(count) if *count > 1 => *count -= 1,
            Some(_) => {
                self.counts.remove(&key);
            }
            None => panic!("removing a branch that was never counted"),
        }
    }

    /// Rebuilds the counts from scratch (test oracle / resynchronization).
    pub fn rebuilt_counts(&self) -> HashMap<Vec<LabelId>, u32> {
        let mut counts = HashMap::new();
        for occurrence in crate::branch::extract_branches(&self.tree, self.q) {
            *counts.entry(occurrence.key).or_insert(0) += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn setup(spec: &str, q: usize) -> (IncrementalTree, LabelInterner) {
        let mut interner = LabelInterner::new();
        let tree = bracket::parse(&mut interner, spec).unwrap();
        // Intern some extra labels for mutations.
        for extra in ["x", "y", "z"] {
            interner.intern(extra);
        }
        (IncrementalTree::new(tree, q), interner)
    }

    fn assert_synchronized(incremental: &IncrementalTree) {
        assert_eq!(
            incremental.counts(),
            &incremental.rebuilt_counts(),
            "incremental counts diverged from rebuild"
        );
    }

    #[test]
    fn initial_counts_match_extraction() {
        let (inc, _) = setup("a(b(c d) b e)", 2);
        assert_synchronized(&inc);
        assert_eq!(inc.q(), 2);
        assert_eq!(inc.tree().len(), 6);
    }

    #[test]
    fn relabel_updates_locally() {
        let (mut inc, interner) = setup("a(b(c d) b e)", 2);
        let x = interner.get("x").unwrap();
        let nodes: Vec<NodeId> = inc.tree().preorder().collect();
        for node in nodes {
            inc.relabel(node, x);
            assert_synchronized(&inc);
        }
    }

    #[test]
    fn insert_updates_locally() {
        let (mut inc, interner) = setup("a(b(c d) b e)", 2);
        let y = interner.get("y").unwrap();
        let root = inc.tree().root();
        // Insert adopting a middle run.
        inc.insert_above_children(root, y, 1, 2).unwrap();
        assert_synchronized(&inc);
        // Insert a leaf at the front.
        inc.insert_above_children(root, y, 0, 0).unwrap();
        assert_synchronized(&inc);
        // Insert adopting everything.
        let degree = inc.tree().degree(root);
        inc.insert_above_children(root, y, 0, degree).unwrap();
        assert_synchronized(&inc);
    }

    #[test]
    fn delete_updates_locally() {
        let (mut inc, _) = setup("a(b(c d) b(e f) g)", 2);
        loop {
            let victim = {
                let tree = inc.tree();
                tree.preorder().find(|&n| n != tree.root())
            };
            match victim {
                Some(node) => {
                    inc.remove_node(node).unwrap();
                    assert_synchronized(&inc);
                }
                None => break,
            }
        }
        assert_eq!(inc.tree().len(), 1);
    }

    #[test]
    fn delete_root_fails_cleanly() {
        let (mut inc, _) = setup("a(b)", 2);
        let before = inc.counts().clone();
        let root = inc.tree().root();
        assert!(inc.remove_node(root).is_err());
        assert_eq!(inc.counts(), &before);
    }

    #[test]
    fn q3_incremental_maintenance() {
        let (mut inc, interner) = setup("a(b(c d) b(e) f)", 3);
        let z = interner.get("z").unwrap();
        let nodes: Vec<NodeId> = inc.tree().preorder().collect();
        inc.relabel(nodes[2], z);
        assert_synchronized(&inc);
        let root = inc.tree().root();
        inc.insert_above_children(root, z, 0, 2).unwrap();
        assert_synchronized(&inc);
        let victim = inc.tree().first_child(root).unwrap();
        inc.remove_node(victim).unwrap();
        assert_synchronized(&inc);
    }

    #[test]
    fn bdist_between_incremental_trees() {
        let (mut a, interner) = setup("a(b c)", 2);
        let (b, _) = setup("a(b c)", 2);
        assert_eq!(a.bdist(&b), 0);
        let x = interner.get("x").unwrap();
        let node = a.tree().first_child(a.tree().root()).unwrap();
        a.relabel(node, x);
        let d = a.bdist(&b);
        assert!(d > 0 && d <= 4, "relabel moves ≤ 4 branches, got {d}");
    }
}
