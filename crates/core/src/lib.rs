//! **The binary branch embedding** — the primary contribution of
//! *Similarity Evaluation on Tree-structured Data* (Yang, Kalnis, Tung,
//! SIGMOD 2005).
//!
//! Rooted, ordered, labeled trees are mapped to sparse numeric vectors whose
//! L1 distance lower-bounds the tree edit distance:
//!
//! * [`branch`]: q-level binary branch extraction from the normalized
//!   binary-tree representation (Definitions 2 and 5);
//! * [`vocab`]: the branch alphabet Γ;
//! * [`vector`]: binary branch vectors and `BDist` with
//!   `BDist ≤ [4(q−1)+1]·EDist` (Theorems 3.2/3.3);
//! * [`positional`]: position-augmented vectors, `PosBDist(·,·,pr)` and the
//!   tighter `SearchLBound` optimistic bound (§4.2);
//! * [`matching`]: exact maximum matching of branch occurrences under a
//!   positional window;
//! * [`ifi`]: the inverted file index of Algorithm 1.
//!
//! # Quick start
//!
//! ```
//! use treesim_core::{BranchVocab, PositionalVector};
//! use treesim_tree::{parse::bracket, LabelInterner};
//!
//! let mut interner = LabelInterner::new();
//! let t1 = bracket::parse(&mut interner, "a(b(c(d)) b e)").unwrap();
//! let t2 = bracket::parse(&mut interner, "a(c(d) b e)").unwrap();
//!
//! let mut vocab = BranchVocab::new(2); // two-level binary branches
//! let v1 = PositionalVector::build(&t1, &mut vocab);
//! let v2 = PositionalVector::build(&t2, &mut vocab);
//!
//! // BDist ≤ 5·EDist, so BDist/5 (and the tighter optimistic bound) lower
//! // bound the edit distance — here EDist = 1 (delete the first b).
//! assert!(v1.bdist(&v2) <= 5);
//! assert!(v1.optimistic_bound(&v2) <= 1);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod branch;
pub mod codec;
pub mod dense;
pub mod ifi;
pub mod incremental;
pub mod matching;
pub mod positional;
pub mod vector;
pub mod vocab;

pub use arena::{DenseQuery, VectorArena};
pub use branch::{bound_factor, edit_lower_bound, extract_branches, BranchOccurrence};
pub use ifi::{merge_shared_mass, merge_shared_mass_sparse, InvertedFileIndex, Posting};
pub use incremental::IncrementalTree;
pub use positional::{PosEntryRef, PositionalVector};
pub use vector::{binary_branch_distance, BranchVector};
pub use vocab::{BranchId, BranchVocab, QueryVocab};
