//! Maximum matching of identical binary branches under a positional window.
//!
//! For one branch value occurring at positions `xs` in `T1` and `ys` in
//! `T2`, the positional distance (§4.2) needs the size of the **maximum**
//! one-to-one matching where `x` may pair with `y` only if
//! `|pre(x) − pre(y)| ≤ pr` **and** `|post(x) − post(y)| ≤ pr`.
//!
//! Exactness matters: Proposition 4.2's no-false-negative guarantee reads
//! "if `PosBDist(T1,T2,l) > 5·l` then `EDist > l`", and `PosBDist` shrinks
//! as the matching grows — an undersized matching would inflate `PosBDist`
//! and could wrongly filter a true answer. A greedy sweep is only optimal
//! when both occurrence lists are sorted consistently in *both* position
//! orders (the neighborhoods then form a convex/staircase bipartite graph);
//! nodes nested inside each other break that (ancestors precede descendants
//! in preorder but follow them in postorder). We therefore use the greedy
//! sweep as a verified fast path and fall back to Kuhn's augmenting-path
//! algorithm otherwise.

/// A branch occurrence position: (preorder, postorder), both 1-based.
pub type Pos = (u32, u32);

#[inline]
fn compatible(x: Pos, y: Pos, pr: u32) -> bool {
    x.0.abs_diff(y.0) <= pr && x.1.abs_diff(y.1) <= pr
}

#[inline]
fn co_sorted(list: &[Pos]) -> bool {
    list.iter()
        .zip(list.iter().skip(1))
        .all(|(a, b)| a.1 <= b.1)
}

/// Size of the maximum matching between `xs` and `ys` under window `pr`.
///
/// Both lists must be sorted by preorder position (ascending); this is the
/// natural order produced by branch extraction.
pub fn max_matching(xs: &[Pos], ys: &[Pos], pr: u32) -> usize {
    if xs.is_empty() || ys.is_empty() {
        return 0;
    }
    debug_assert!(xs.iter().zip(xs.iter().skip(1)).all(|(a, b)| a.0 <= b.0));
    debug_assert!(ys.iter().zip(ys.iter().skip(1)).all(|(a, b)| a.0 <= b.0));
    if co_sorted(xs) && co_sorted(ys) {
        greedy_convex(xs, ys, pr)
    } else {
        kuhn(xs, ys, pr)
    }
}

/// Greedy matching for the convex case: for each `x` in order, take the
/// earliest unmatched compatible `y`. Optimal when every neighborhood is a
/// contiguous range of `ys` and the ranges advance monotonically — which
/// both-orders-sorted inputs guarantee.
fn greedy_convex(xs: &[Pos], ys: &[Pos], pr: u32) -> usize {
    let mut matched = 0usize;
    let mut next_y = 0usize;
    for &x in xs {
        // Skip ys that fall behind the preorder window of every later x too
        // only when they're also behind this x (windows advance with x).
        let mut j = next_y;
        while j < ys.len() && (ys[j].0 + pr) < x.0 {
            j += 1;
        }
        next_y = j;
        while j < ys.len() && ys[j].0 <= x.0 + pr {
            if compatible(x, ys[j], pr) {
                matched += 1;
                next_y = j + 1;
                break;
            }
            j += 1;
        }
    }
    matched
}

/// Kuhn's augmenting-path maximum bipartite matching, `O(|xs|·E)`.
fn kuhn(xs: &[Pos], ys: &[Pos], pr: u32) -> usize {
    // Adjacency: candidate ys per x, restricted by the preorder window via
    // binary search, then filtered by the postorder window.
    let pre_lo = |x: Pos| ys.partition_point(|&y| y.0 + pr < x.0);
    let mut adjacency: Vec<Vec<usize>> = Vec::with_capacity(xs.len());
    for &x in xs {
        let mut neighbors = Vec::new();
        let mut j = pre_lo(x);
        while j < ys.len() && ys[j].0 <= x.0 + pr {
            if x.1.abs_diff(ys[j].1) <= pr {
                neighbors.push(j);
            }
            j += 1;
        }
        adjacency.push(neighbors);
    }

    let mut match_y: Vec<Option<usize>> = vec![None; ys.len()];
    let mut matched = 0usize;
    let mut visited = vec![false; ys.len()];
    for x in 0..xs.len() {
        visited.iter_mut().for_each(|v| *v = false);
        if try_augment(x, &adjacency, &mut match_y, &mut visited) {
            matched += 1;
        }
    }
    matched
}

fn try_augment(
    x: usize,
    adjacency: &[Vec<usize>],
    match_y: &mut [Option<usize>],
    visited: &mut [bool],
) -> bool {
    for &y in &adjacency[x] {
        if visited[y] {
            continue;
        }
        visited[y] = true;
        match match_y[y] {
            None => {
                match_y[y] = Some(x);
                return true;
            }
            Some(previous) => {
                if try_augment(previous, adjacency, match_y, visited) {
                    match_y[y] = Some(x);
                    return true;
                }
            }
        }
    }
    false
}

/// Brute-force maximum matching by bitmask DP — test oracle only.
#[cfg(test)]
pub fn brute_force(xs: &[Pos], ys: &[Pos], pr: u32) -> usize {
    assert!(ys.len() <= 16, "oracle limited to 16 ys");
    // dp over x index with bitmask of used ys.
    fn go(i: usize, used: u32, xs: &[Pos], ys: &[Pos], pr: u32) -> usize {
        if i == xs.len() {
            return 0;
        }
        let mut best = go(i + 1, used, xs, ys, pr); // leave xs[i] unmatched
        for (j, &y) in ys.iter().enumerate() {
            if used & (1 << j) == 0 && compatible(xs[i], y, pr) {
                best = best.max(1 + go(i + 1, used | (1 << j), xs, ys, pr));
            }
        }
        best
    }
    go(0, 0, xs, ys, pr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_inputs() {
        assert_eq!(max_matching(&[], &[(1, 1)], 5), 0);
        assert_eq!(max_matching(&[(1, 1)], &[], 5), 0);
        assert_eq!(max_matching(&[], &[], 5), 0);
    }

    #[test]
    fn identical_positions_match_fully() {
        let xs = [(1, 3), (4, 2), (9, 9)];
        let mut sorted = xs;
        sorted.sort();
        assert_eq!(max_matching(&sorted, &sorted, 0), 3);
    }

    #[test]
    fn window_zero_requires_exact_positions() {
        let xs = [(1, 1)];
        let ys = [(2, 1)];
        assert_eq!(max_matching(&xs, &ys, 0), 0);
        assert_eq!(max_matching(&xs, &ys, 1), 1);
    }

    #[test]
    fn paper_positional_example() {
        // §4.2: with pr = 1, (BiB(c,ε,d), 3, 1) in T1 maps only to
        // (BiB(c,ε,d), 3, 1) in T2, not to (…, 7, 6); and (BiB(e), 8, 7)
        // maps to (…, 9, 8) but not (…, 6, 3).
        let t1_c = [(3, 1), (6, 4)];
        let t2_c = [(3, 1), (7, 6)];
        assert_eq!(max_matching(&t1_c, &t2_c, 1), 1);
        let t1_e = [(8, 7)];
        let t2_e = [(6, 3), (9, 8)];
        assert_eq!(max_matching(&t1_e, &t2_e, 1), 1);
        assert_eq!(max_matching(&t1_e, &[(6, 3)], 1), 0);
    }

    #[test]
    fn greedy_fast_path_matches_oracle_on_convex_instance() {
        let xs = [(1, 1), (3, 2), (5, 6), (9, 9)];
        let ys = [(2, 2), (4, 4), (6, 7)];
        for pr in 0..6 {
            assert_eq!(
                max_matching(&xs, &ys, pr),
                brute_force(&xs, &ys, pr),
                "pr={pr}"
            );
        }
    }

    #[test]
    fn nested_nodes_fall_back_to_exact_matching() {
        // xs sorted by preorder but with descending postorder (an ancestor
        // chain): greedy on preorder alone could mispair.
        let xs = [(1, 9), (2, 8), (3, 7)];
        let ys = [(1, 8), (2, 9), (3, 6)];
        for pr in 0..10 {
            assert_eq!(
                max_matching(&xs, &ys, pr),
                brute_force(&xs, &ys, pr),
                "pr={pr}"
            );
        }
    }

    #[test]
    fn monotone_in_pr() {
        let xs = [(1, 4), (5, 2), (8, 8)];
        let ys = [(2, 2), (6, 5), (9, 9)];
        let mut previous = 0;
        for pr in 0..12 {
            let m = max_matching(&xs, &ys, pr);
            assert!(m >= previous, "matching shrank at pr={pr}");
            previous = m;
        }
        assert_eq!(previous, 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Exactness against the bitmask oracle on random instances.
        #[test]
        fn matches_brute_force(
            raw_xs in proptest::collection::vec((1u32..20, 1u32..20), 0..8),
            raw_ys in proptest::collection::vec((1u32..20, 1u32..20), 0..8),
            pr in 0u32..12,
        ) {
            let mut xs = raw_xs;
            let mut ys = raw_ys;
            xs.sort();
            ys.sort();
            prop_assert_eq!(max_matching(&xs, &ys, pr), brute_force(&xs, &ys, pr));
        }
    }
}
