//! Positional binary branch vectors and distances (§4.2 of the paper).
//!
//! Beyond occurrence counts, each branch occurrence carries the (preorder,
//! postorder) position of its root node. Two identical branches can only be
//! matched if their positions differ by at most the positional range `pr`
//! (Proposition 4.1: an edit mapping of cost ≤ `l` never maps nodes whose
//! traversal positions differ by more than `l`). The resulting
//! `PosBDist(T1, T2, pr)` is non-increasing in `pr`, reaches `BDist` at
//! `pr = max(|T1|, |T2|)`, and supports a *tighter* lower bound than
//! `⌈BDist/5⌉`: the smallest `pr` with `PosBDist(pr) ≤ 5·pr` (the
//! `SearchLBound` routine of Algorithm 2), exposed as
//! [`PositionalVector::optimistic_bound`].

use serde::{Deserialize, Serialize};
use treesim_tree::Tree;

use crate::branch::{bound_factor, extract_branches};
use crate::dense::bdist_soa;
use crate::matching::{max_matching, Pos};
use crate::vocab::{BranchId, BranchVocab, QueryVocab};

/// A borrowed view of one branch dimension with its occurrence positions —
/// what [`PositionalVector::entries`] yields. The positions slice aliases
/// the vector's contiguous position slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosEntryRef<'a> {
    /// The branch id.
    pub branch: BranchId,
    /// Occurrence positions, sorted by preorder position.
    pub positions: &'a [Pos],
}

/// A binary branch vector augmented with occurrence positions.
///
/// Stored CSR-style (structure of arrays): sorted `branch_ids` with
/// parallel `counts` lanes, plus a flat position slab delimited by
/// `pos_offsets` — the counts-only `BDist` merge never touches positions,
/// and the count lanes feed the dense kernels of [`crate::dense`] without
/// gathering through per-entry allocations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionalVector {
    q: usize,
    tree_size: u32,
    /// Branch ids, strictly ascending.
    branch_ids: Vec<BranchId>,
    /// Occurrence counts, parallel to `branch_ids`.
    counts: Vec<u32>,
    /// `pos_offsets[i]..pos_offsets[i + 1]` delimits entry `i`'s positions
    /// in the slab; length is `branch_ids.len() + 1`.
    pos_offsets: Vec<u32>,
    /// All occurrence positions, grouped by branch, preorder-sorted within
    /// each group.
    positions: Vec<Pos>,
}

impl PositionalVector {
    /// Builds the positional vector of `tree`, interning new branches.
    pub fn build(tree: &Tree, vocab: &mut BranchVocab) -> Self {
        let occurrences = extract_branches(tree, vocab.q());
        let tagged: Vec<(BranchId, Pos)> = occurrences
            .iter()
            .map(|o| (vocab.intern(&o.key), (o.pre, o.post)))
            .collect();
        Self::from_tagged(vocab.q(), tree.len() as u32, tagged)
    }

    /// Builds a query vector against a frozen vocabulary.
    pub fn build_query(tree: &Tree, vocab: &mut QueryVocab<'_>) -> Self {
        let occurrences = extract_branches(tree, vocab.q());
        let tagged: Vec<(BranchId, Pos)> = occurrences
            .iter()
            .map(|o| (vocab.resolve_or_extend(&o.key), (o.pre, o.post)))
            .collect();
        Self::from_tagged(vocab.q(), tree.len() as u32, tagged)
    }

    pub(crate) fn from_tagged(q: usize, tree_size: u32, mut tagged: Vec<(BranchId, Pos)>) -> Self {
        // Sort by (branch, preorder); extraction order is already preorder,
        // so a stable sort by branch alone would suffice, but be explicit.
        tagged.sort_unstable_by_key(|&(id, pos)| (id, pos.0));
        let mut branch_ids: Vec<BranchId> = Vec::new();
        let mut counts: Vec<u32> = Vec::new();
        let mut pos_offsets: Vec<u32> = vec![0];
        let mut positions: Vec<Pos> = Vec::with_capacity(tagged.len());
        for (id, pos) in tagged {
            if branch_ids.last() != Some(&id) {
                branch_ids.push(id);
                counts.push(0);
                pos_offsets.push(positions.len() as u32);
            }
            positions.push(pos);
            if let (Some(count), Some(end)) = (counts.last_mut(), pos_offsets.last_mut()) {
                *count += 1;
                *end += 1;
            }
        }
        debug_assert_eq!(pos_offsets.len(), branch_ids.len() + 1);
        PositionalVector {
            q,
            tree_size,
            branch_ids,
            counts,
            pos_offsets,
            positions,
        }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of nodes of the underlying tree.
    pub fn tree_size(&self) -> u32 {
        self.tree_size
    }

    /// The sparse entries, sorted by branch id, as borrowed views over the
    /// CSR slabs.
    pub fn entries(&self) -> impl Iterator<Item = PosEntryRef<'_>> + '_ {
        self.branch_ids
            .iter()
            .zip(self.pos_offsets.windows(2))
            .map(move |(&branch, window)| {
                let positions = match *window {
                    [start, end] => self
                        .positions
                        .get(start as usize..end as usize)
                        .unwrap_or(&[]),
                    _ => &[],
                };
                PosEntryRef { branch, positions }
            })
    }

    /// The sparse `(branch, count)` pairs, sorted by branch id — the
    /// counts-only projection the arena and postings paths consume.
    pub fn iter_counts(&self) -> impl Iterator<Item = (BranchId, u32)> + '_ {
        self.branch_ids
            .iter()
            .copied()
            .zip(self.counts.iter().copied())
    }

    /// The sorted branch-id lane of the CSR layout.
    pub fn branch_ids(&self) -> &[BranchId] {
        &self.branch_ids
    }

    /// The count lane of the CSR layout, parallel to
    /// [`PositionalVector::branch_ids`].
    pub fn branch_counts(&self) -> &[u32] {
        &self.counts
    }

    /// Number of nonzero dimensions (distinct branches).
    pub fn nonzero_dims(&self) -> usize {
        self.branch_ids.len()
    }

    /// The O(1) size lower bound `| |T1| − |T2| |` — the coarsest stage of
    /// the engine's bound cascade, and the starting positional range
    /// `pr_min` of [`PositionalVector::optimistic_bound`].
    pub fn size_bound(&self, other: &PositionalVector) -> u64 {
        u64::from(self.tree_size.abs_diff(other.tree_size))
    }

    /// Plain binary branch distance (counts only) — equals
    /// `pos_bdist(other, pr)` for any `pr ≥ max(|T1|, |T2|)`. Runs the
    /// dense SoA merge over the count lanes; positions are never touched.
    pub fn bdist(&self, other: &PositionalVector) -> u64 {
        assert_eq!(self.q, other.q, "mixing branch levels");
        bdist_soa(
            &self.branch_ids,
            &self.counts,
            &other.branch_ids,
            &other.counts,
        )
    }

    /// The positional binary branch distance `PosBDist(T1, T2, pr)`
    /// (Definition 6): unmatched occurrences under the maximum positional
    /// matching with range `pr`, summed over all branches.
    pub fn pos_bdist(&self, other: &PositionalVector, pr: u32) -> u64 {
        self.merge_distance(other, |a, b| max_matching(a, b, pr))
    }

    /// Shared merge loop: for each branch, `b1 + b2 − 2·matched` where
    /// `matcher` computes the matched count on the two position lists.
    fn merge_distance<F>(&self, other: &PositionalVector, matcher: F) -> u64
    where
        F: Fn(&[Pos], &[Pos]) -> usize,
    {
        assert_eq!(self.q, other.q, "mixing branch levels");
        let mut distance = 0u64;
        let mut left = self.entries().peekable();
        let mut right = other.entries().peekable();
        while let (Some(&a), Some(&b)) = (left.peek(), right.peek()) {
            match a.branch.cmp(&b.branch) {
                std::cmp::Ordering::Less => {
                    distance += a.positions.len() as u64;
                    left.next();
                }
                std::cmp::Ordering::Greater => {
                    distance += b.positions.len() as u64;
                    right.next();
                }
                std::cmp::Ordering::Equal => {
                    let matched = matcher(a.positions, b.positions) as u64;
                    distance += a.positions.len() as u64 + b.positions.len() as u64 - 2 * matched;
                    left.next();
                    right.next();
                }
            }
        }
        distance += left.map(|entry| entry.positions.len() as u64).sum::<u64>();
        distance += right.map(|entry| entry.positions.len() as u64).sum::<u64>();
        distance
    }

    /// The optimistic lower bound `propt` of §4.2 / Algorithm 2
    /// (`SearchLBound`): the smallest positional range `pr` in
    /// `[| |T1|−|T2| |, max(|T1|, |T2|)]` with
    /// `PosBDist(T1, T2, pr) ≤ [4(q−1)+1] · pr`.
    ///
    /// Guarantees `⌈BDist/factor⌉ ≤ propt ≤ EDist(T1, T2)`:
    /// if the predicate already holds at `pr_min = ||T1|−|T2||` the result
    /// is the size bound itself; otherwise the predicate fails at
    /// `propt − 1`, so by Proposition 4.2 `EDist > propt − 1`.
    pub fn optimistic_bound(&self, other: &PositionalVector) -> u64 {
        self.optimistic_bound_counted(other).0
    }

    /// [`PositionalVector::optimistic_bound`] plus the number of binary
    /// search iterations it took (0 when the predicate already holds at
    /// `pr_min`) — the cost driver the `cascade.propt.iters` histogram
    /// tracks.
    pub fn optimistic_bound_counted(&self, other: &PositionalVector) -> (u64, u32) {
        let factor = bound_factor(self.q);
        let pr_min = self.tree_size.abs_diff(other.tree_size);
        let pr_max = self.tree_size.max(other.tree_size);
        if self.pos_bdist(other, pr_min) <= factor * u64::from(pr_min) {
            self.check_cascade_order(other, u64::from(pr_min));
            return (u64::from(pr_min), 0);
        }
        // Binary search the smallest satisfying pr in (pr_min, pr_max].
        // The predicate is monotone: PosBDist is non-increasing in pr while
        // factor·pr increases.
        let (mut lo, mut hi) = (pr_min + 1, pr_max);
        let mut iterations = 0u32;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.pos_bdist(other, mid) <= factor * u64::from(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
            iterations += 1;
        }
        debug_assert!(
            self.pos_bdist(other, lo) <= factor * u64::from(lo),
            "predicate must hold at pr_max"
        );
        self.check_cascade_order(other, u64::from(lo));
        (u64::from(lo), iterations)
    }

    /// `strict-checks` invariant: the cascade is ordered —
    /// `⌈BDist/factor⌉ ≤ propt` (Theorem 4.1 composed with Proposition
    /// 4.2), so the optimistic bound never undercuts the plain branch
    /// bound it refines. A violation here means a filter stage would
    /// prune trees a later stage still admits.
    #[inline]
    #[allow(unused_variables)]
    fn check_cascade_order(&self, other: &PositionalVector, propt: u64) {
        #[cfg(feature = "strict-checks")]
        debug_assert!(
            crate::branch::edit_lower_bound(self.bdist(other), self.q) <= propt,
            "cascade order violated: ceil(BDist/{}) = {} > propt = {propt}",
            bound_factor(self.q),
            crate::branch::edit_lower_bound(self.bdist(other), self.q),
        );
    }

    /// Range-query pruning test (§4.3): prune `other` from a query with
    /// radius `tau` when it provably cannot be within edit distance `tau`.
    /// Combines Proposition 4.2 at `l = tau` with the optimistic bound.
    pub fn exceeds_range(&self, other: &PositionalVector, tau: u32) -> bool {
        let factor = bound_factor(self.q);
        if self.pos_bdist(other, tau) > factor * u64::from(tau) {
            return true;
        }
        self.optimistic_bound(other) > u64::from(tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_edit::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner, Tree};

    fn vectors(a: &str, b: &str, q: usize) -> (PositionalVector, PositionalVector, Tree, Tree) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        let mut vocab = BranchVocab::new(q);
        let v1 = PositionalVector::build(&t1, &mut vocab);
        let v2 = PositionalVector::build(&t2, &mut vocab);
        (v1, v2, t1, t2)
    }

    #[test]
    fn identical_trees_zero_everywhere() {
        let (v1, v2, ..) = vectors("a(b(c d) b e)", "a(b(c d) b e)", 2);
        assert_eq!(v1.bdist(&v2), 0);
        for pr in 0..8 {
            assert_eq!(v1.pos_bdist(&v2, pr), 0);
        }
        assert_eq!(v1.optimistic_bound(&v2), 0);
        assert!(!v1.exceeds_range(&v2, 0));
    }

    #[test]
    fn pos_bdist_decreases_to_bdist() {
        let (v1, v2, t1, t2) = vectors("a(b(c(d)) b e)", "a(e b(c(d)) b)", 2);
        let sizes = t1.len().max(t2.len()) as u32;
        let mut previous = u64::MAX;
        for pr in 0..=sizes {
            let d = v1.pos_bdist(&v2, pr);
            assert!(d <= previous, "PosBDist increased at pr={pr}");
            previous = d;
        }
        assert_eq!(v1.pos_bdist(&v2, sizes), v1.bdist(&v2));
        // Positions matter: at pr=0 the distance is at least the plain one.
        assert!(v1.pos_bdist(&v2, 0) >= v1.bdist(&v2));
    }

    #[test]
    fn optimistic_bound_sandwiched() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a(b c d)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b(c) d(e f) g)", "a(b)"),
            ("a(b c d e f)", "a(f e d c b)"),
        ];
        for (x, y) in cases {
            let (v1, v2, t1, t2) = vectors(x, y, 2);
            let edist = edit_distance(&t1, &t2);
            let bdist_bound = v1.bdist(&v2).div_ceil(5);
            let propt = v1.optimistic_bound(&v2);
            assert!(
                propt <= edist,
                "propt {propt} > EDist {edist} on {x} vs {y}"
            );
            assert!(
                propt >= bdist_bound,
                "propt {propt} < BDist/5 {bdist_bound} on {x} vs {y}"
            );
        }
    }

    #[test]
    fn counted_bound_matches_and_bounds_iterations() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b c d e f)", "a(f e d c b)"),
            ("a(b c)", "a(b c)"),
        ];
        for (x, y) in cases {
            let (v1, v2, t1, t2) = vectors(x, y, 2);
            let (bound, iterations) = v1.optimistic_bound_counted(&v2);
            assert_eq!(bound, v1.optimistic_bound(&v2), "{x} vs {y}");
            // A binary search over (pr_min, pr_max] takes at most
            // ⌈log2(range)⌉ + 1 probes; tree sizes bound the range.
            let range = t1.len().max(t2.len()) as u32 + 1;
            assert!(
                iterations <= range.ilog2() + 2,
                "{iterations} iterations for range {range} on {x} vs {y}"
            );
        }
        // Identical trees satisfy the predicate at pr_min = 0 immediately.
        let (v1, v2, _, _) = vectors("a(b c)", "a(b c)", 2);
        assert_eq!(v1.optimistic_bound_counted(&v2), (0, 0));
    }

    #[test]
    fn positional_bound_can_beat_plain_bound() {
        // Swapping distant siblings keeps counts identical (BDist = 0) but
        // moves positions; the positional bound sees that.
        let (v1, v2, t1, t2) = vectors(
            "r(a(x y) b c d e f g a(x y))",
            "r(a(x y) g b c d e f a(x y))",
            2,
        );
        let edist = edit_distance(&t1, &t2);
        let propt = v1.optimistic_bound(&v2);
        assert!(propt <= edist);
        // The plain bound collapses here; the positional one may not.
        let plain = v1.bdist(&v2).div_ceil(5);
        assert!(propt >= plain);
    }

    #[test]
    fn exceeds_range_is_safe() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a(b(c(d)))", "a(b c d)"),
        ];
        for (x, y) in cases {
            let (v1, v2, t1, t2) = vectors(x, y, 2);
            let edist = edit_distance(&t1, &t2);
            for tau in 0..=(edist as u32 + 2) {
                if v1.exceeds_range(&v2, tau) {
                    assert!(
                        edist > u64::from(tau),
                        "pruned a true result: EDist {edist} ≤ τ {tau} on {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn query_vector_against_frozen_vocab() {
        let mut interner = LabelInterner::new();
        let data = bracket::parse(&mut interner, "a(b c)").unwrap();
        let query = bracket::parse(&mut interner, "a(b c z)").unwrap();
        let mut vocab = BranchVocab::new(2);
        let dv = PositionalVector::build(&data, &mut vocab);
        let mut query_vocab = QueryVocab::new(&vocab);
        let qv = PositionalVector::build_query(&query, &mut query_vocab);
        let edist = edit_distance(&data, &query);
        assert!(qv.optimistic_bound(&dv) <= edist);
        assert_eq!(qv.tree_size(), 4);
        assert_eq!(dv.tree_size(), 3);
    }

    #[test]
    fn q3_positional_bound_holds() {
        let (v1, v2, t1, t2) = vectors("a(b(c(d)) b e)", "a(c(d) e b)", 3);
        let edist = edit_distance(&t1, &t2);
        assert!(v1.optimistic_bound(&v2) <= edist);
    }

    #[test]
    fn entries_are_sorted_with_sorted_positions() {
        let (v1, ..) = vectors("a(b(a(b)) a b(a))", "a", 2);
        let mut previous: Option<BranchId> = None;
        for entry in v1.entries() {
            if let Some(p) = previous {
                assert!(entry.branch > p);
            }
            previous = Some(entry.branch);
            assert!(entry.positions.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }
}
