//! Binary branch vectors and the binary branch distance (Definitions 3–4).
//!
//! `BRV(T)` counts, for every distinct branch of the alphabet Γ, its number
//! of occurrences in `T`. Vectors are stored sparsely (only nonzero
//! dimensions), sorted by branch id, so the L1 distance is a linear merge —
//! `O(|T1| + |T2|)` overall, the complexity the paper claims for its filter.

use serde::{Deserialize, Serialize};
use treesim_tree::Tree;

use crate::branch::{bound_factor, edit_lower_bound, extract_branches};
use crate::vocab::{BranchId, BranchVocab, QueryVocab};

/// A sparse binary branch vector `BRV(T)` (or `BRV_Q(T)` for `q > 2`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchVector {
    q: usize,
    /// `(branch, count)` pairs sorted by branch id, counts ≥ 1.
    entries: Vec<(BranchId, u32)>,
}

impl BranchVector {
    /// Builds the vector of `tree`, interning new branches into `vocab`.
    pub fn build(tree: &Tree, vocab: &mut BranchVocab) -> Self {
        let occurrences = extract_branches(tree, vocab.q());
        let mut ids: Vec<BranchId> = occurrences.iter().map(|o| vocab.intern(&o.key)).collect();
        Self::from_ids(vocab.q(), &mut ids)
    }

    /// Builds a query vector against a frozen vocabulary: branches unknown
    /// to the dataset get query-local ids.
    pub fn build_query(tree: &Tree, vocab: &mut QueryVocab<'_>) -> Self {
        let occurrences = extract_branches(tree, vocab.q());
        let mut ids: Vec<BranchId> = occurrences
            .iter()
            .map(|o| vocab.resolve_or_extend(&o.key))
            .collect();
        Self::from_ids(vocab.q(), &mut ids)
    }

    fn from_ids(q: usize, ids: &mut [BranchId]) -> Self {
        ids.sort_unstable();
        let mut entries: Vec<(BranchId, u32)> = Vec::new();
        for &id in ids.iter() {
            match entries.last_mut() {
                Some((last, count)) if *last == id => *count += 1,
                _ => entries.push((id, 1)),
            }
        }
        BranchVector { q, entries }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of nonzero dimensions.
    pub fn nonzero_dims(&self) -> usize {
        self.entries.len()
    }

    /// Sum of all counts (= number of nodes of the underlying tree).
    pub fn total_count(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// The sparse `(branch, count)` entries, sorted by branch id.
    pub fn entries(&self) -> &[(BranchId, u32)] {
        &self.entries
    }

    /// The binary branch distance `BDist(T1, T2)`: L1 distance of the two
    /// characteristic vectors (Definition 4).
    ///
    /// # Panics
    ///
    /// Panics if the vectors were built with different `q`.
    pub fn bdist(&self, other: &BranchVector) -> u64 {
        assert_eq!(self.q, other.q, "mixing branch levels");
        crate::dense::bdist_merge(&self.entries, &other.entries)
    }

    /// Lower bound on the unit-cost edit distance:
    /// `⌈BDist_q / (4(q−1)+1)⌉` (Theorems 3.2 / 3.3).
    pub fn edit_lower_bound(&self, other: &BranchVector) -> u64 {
        edit_lower_bound(self.bdist(other), self.q)
    }
}

/// Convenience: the binary branch distance of two trees sharing an interner,
/// using a throwaway vocabulary.
///
/// # Examples
///
/// ```
/// use treesim_core::binary_branch_distance;
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let t1 = bracket::parse(&mut interner, "a(b(c(d)) b e)").unwrap();
/// let t2 = bracket::parse(&mut interner, "a(c(d) b e)").unwrap();
/// let bdist = binary_branch_distance(&t1, &t2, 2);
/// assert!(bdist <= 5); // one edit operation changes ≤ 5 branches
/// ```
pub fn binary_branch_distance(t1: &Tree, t2: &Tree, q: usize) -> u64 {
    let mut vocab = BranchVocab::new(q);
    let v1 = BranchVector::build(t1, &mut vocab);
    let v2 = BranchVector::build(t2, &mut vocab);
    v1.bdist(&v2)
}

/// The distortion factor `4(q−1)+1` re-exported for callers that combine
/// raw distances themselves.
pub fn distortion_factor(q: usize) -> u64 {
    bound_factor(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn two(a: &str, b: &str, q: usize) -> (BranchVector, BranchVector) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        let mut vocab = BranchVocab::new(q);
        (
            BranchVector::build(&t1, &mut vocab),
            BranchVector::build(&t2, &mut vocab),
        )
    }

    #[test]
    fn identical_trees_zero_distance() {
        let (v1, v2) = two("a(b(c d) b e)", "a(b(c d) b e)", 2);
        assert_eq!(v1.bdist(&v2), 0);
        assert_eq!(v1, v2);
    }

    #[test]
    fn total_count_equals_tree_size() {
        let (v1, _) = two("a(b(c d) b e)", "a", 2);
        assert_eq!(v1.total_count(), 6);
        assert!(v1.nonzero_dims() <= 6);
        assert_eq!(v1.q(), 2);
    }

    #[test]
    fn single_relabel_changes_at_most_four_branches() {
        // A node occurs in at most two branches (Lemma 3.1), so a relabel
        // perturbs ≤ 2 old + 2 new dimensions: BDist ≤ 4.
        let (v1, v2) = two("a(b c)", "a(x c)", 2);
        assert!(v1.bdist(&v2) <= 4, "relabel changes at most 4 branches");
        assert!(v1.bdist(&v2) > 0);
    }

    #[test]
    fn single_delete_changes_at_most_five_branches() {
        let (v1, v2) = two("a(b(c(d)) b e)", "a(c(d) b e)", 2);
        let d = v1.bdist(&v2);
        assert!(d > 0 && d <= 5, "BDist {d}");
        assert_eq!(v1.edit_lower_bound(&v2), 1);
    }

    #[test]
    fn disjoint_trees_distance_is_sum_of_sizes() {
        let (v1, v2) = two("a(a a)", "b(b b)", 2);
        assert_eq!(v1.bdist(&v2), 6);
    }

    #[test]
    fn bdist_is_symmetric_and_triangular() {
        let mut interner = LabelInterner::new();
        let specs = ["a(b c)", "a(b(c))", "x", "a(b c d)", "a(c b)"];
        let trees: Vec<_> = specs
            .iter()
            .map(|s| bracket::parse(&mut interner, s).unwrap())
            .collect();
        let mut vocab = BranchVocab::new(2);
        let vectors: Vec<_> = trees
            .iter()
            .map(|t| BranchVector::build(t, &mut vocab))
            .collect();
        for a in &vectors {
            assert_eq!(a.bdist(a), 0);
            for b in &vectors {
                assert_eq!(a.bdist(b), b.bdist(a));
                for c in &vectors {
                    assert!(a.bdist(c) <= a.bdist(b) + b.bdist(c));
                }
            }
        }
    }

    #[test]
    fn zero_distance_does_not_imply_equality() {
        // The paper's Fig. 4 point: BDist is a pseudometric. The distinct
        // trees a(a a(a)) and a(a(a a)) share the branch multiset
        // {⟨a,a,ε⟩×2, ⟨a,ε,a⟩, ⟨a,ε,ε⟩}.
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, "a(a a(a))").unwrap();
        let t2 = bracket::parse(&mut interner, "a(a(a a))").unwrap();
        assert_ne!(t1, t2);
        let mut vocab = BranchVocab::new(2);
        let v1 = BranchVector::build(&t1, &mut vocab);
        let v2 = BranchVector::build(&t2, &mut vocab);
        assert_eq!(v1.bdist(&v2), 0);
        // The real edit distance is nonzero, so the bound is merely loose
        // here, never wrong.
        assert_eq!(v1.edit_lower_bound(&v2), 0);
    }

    #[test]
    fn query_vector_against_frozen_vocab() {
        let mut interner = LabelInterner::new();
        let data = bracket::parse(&mut interner, "a(b c)").unwrap();
        let query = bracket::parse(&mut interner, "z(b c)").unwrap();
        let mut vocab = BranchVocab::new(2);
        let dv = BranchVector::build(&data, &mut vocab);
        let frozen_len = vocab.len();
        let mut query_vocab = QueryVocab::new(&vocab);
        let qv = BranchVector::build_query(&query, &mut query_vocab);
        assert_eq!(vocab.len(), frozen_len, "dataset vocabulary unchanged");
        // b and c leaves produce shared branches; roots differ.
        let d = dv.bdist(&qv);
        assert!(d > 0 && d <= 4);
    }

    #[test]
    fn q3_encodes_more_structure_than_q2() {
        // Two trees indistinguishable at q=2 can differ at q=3; at minimum
        // BDist_3 ≥ BDist_2 never *loses* differences on these samples.
        let pairs = [("a(b(c) d)", "a(b c(d))"), ("a(b(c(d)))", "a(b c d)")];
        for (x, y) in pairs {
            let (v2a, v2b) = two(x, y, 2);
            let (v3a, v3b) = two(x, y, 3);
            assert!(
                v3a.bdist(&v3b) >= v2a.bdist(&v2b),
                "q=3 lost information on {x} vs {y}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "mixing branch levels")]
    fn mixing_levels_panics() {
        let (v2, _) = two("a(b)", "a", 2);
        let (v3, _) = two("a(b)", "a", 3);
        let _ = v2.bdist(&v3);
    }
}
