//! The binary branch alphabet Γ (§3.2): interning of branch label sequences.
//!
//! The paper sorts Γ lexicographically on the string `u u₁ u₂`; ordering
//! only needs to be *consistent*, so we assign dense ids in first-seen order
//! and keep vectors sorted by id. Query trees may contain branches absent
//! from the dataset vocabulary; [`QueryVocab`] maps those to fresh ids past
//! the dataset range without mutating the shared vocabulary.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use treesim_tree::LabelId;

/// Dense identifier of a distinct binary branch within a [`BranchVocab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BranchId(pub u32);

impl BranchId {
    /// Raw index value.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Interner for q-level binary branch keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchVocab {
    q: usize,
    map: HashMap<Box<[LabelId]>, BranchId>,
    keys: Vec<Box<[LabelId]>>,
}

impl BranchVocab {
    /// Creates an empty vocabulary for q-level branches.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`.
    pub fn new(q: usize) -> Self {
        assert!(q >= 2, "binary branches need q >= 2 (got {q})");
        BranchVocab {
            q,
            map: HashMap::new(),
            keys: Vec::new(),
        }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Expected key length `2^q − 1`.
    pub fn key_len(&self) -> usize {
        (1 << self.q) - 1
    }

    /// Number of distinct branches interned (`|Γ|`).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no branch has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Interns `key`, returning its stable id.
    ///
    /// # Panics
    ///
    /// Panics if `key.len() != 2^q − 1`.
    pub fn intern(&mut self, key: &[LabelId]) -> BranchId {
        assert_eq!(key.len(), self.key_len(), "branch key length mismatch");
        if let Some(&id) = self.map.get(key) {
            return id;
        }
        let id = BranchId(u32::try_from(self.keys.len()).expect("branch universe overflow"));
        let boxed: Box<[LabelId]> = key.into();
        self.map.insert(boxed.clone(), id);
        self.keys.push(boxed);
        id
    }

    /// Looks a key up without interning.
    pub fn lookup(&self, key: &[LabelId]) -> Option<BranchId> {
        self.map.get(key).copied()
    }

    /// The key for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this vocabulary.
    pub fn resolve(&self, id: BranchId) -> &[LabelId] {
        &self.keys[id.index()]
    }

    /// Iterates `(id, key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchId, &[LabelId])> {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, k)| (BranchId(i as u32), k.as_ref()))
    }
}

/// Read-only view of a dataset vocabulary that assigns fresh ids (past the
/// dataset range) to branches it has never seen — used when vectorizing a
/// query against a frozen index.
#[derive(Debug)]
pub struct QueryVocab<'a> {
    base: &'a BranchVocab,
    extra: HashMap<Box<[LabelId]>, BranchId>,
}

impl<'a> QueryVocab<'a> {
    /// Wraps a frozen dataset vocabulary.
    pub fn new(base: &'a BranchVocab) -> Self {
        QueryVocab {
            base,
            extra: HashMap::new(),
        }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.base.q()
    }

    /// Resolves `key` to the dataset id when known, otherwise to a fresh
    /// query-local id `≥ base.len()`.
    pub fn resolve_or_extend(&mut self, key: &[LabelId]) -> BranchId {
        if let Some(id) = self.base.lookup(key) {
            return id;
        }
        if let Some(&id) = self.extra.get(key) {
            return id;
        }
        let id = BranchId((self.base.len() + self.extra.len()) as u32);
        self.extra.insert(key.into(), id);
        id
    }

    /// Number of query-local branches not present in the dataset.
    pub fn novel_count(&self) -> usize {
        self.extra.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(raw: &[u32]) -> Vec<LabelId> {
        raw.iter().map(|&r| LabelId::from_u32(r)).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut vocab = BranchVocab::new(2);
        let a = vocab.intern(&key(&[1, 2, 0]));
        let b = vocab.intern(&key(&[1, 2, 3]));
        assert_ne!(a, b);
        assert_eq!(vocab.intern(&key(&[1, 2, 0])), a);
        assert_eq!(vocab.len(), 2);
        assert!(!vocab.is_empty());
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut vocab = BranchVocab::new(2);
        assert_eq!(vocab.lookup(&key(&[1, 2, 3])), None);
        let id = vocab.intern(&key(&[1, 2, 3]));
        assert_eq!(vocab.lookup(&key(&[1, 2, 3])), Some(id));
    }

    #[test]
    fn resolve_roundtrip() {
        let mut vocab = BranchVocab::new(3);
        assert_eq!(vocab.key_len(), 7);
        let k = key(&[1, 2, 3, 0, 0, 4, 0]);
        let id = vocab.intern(&k);
        assert_eq!(vocab.resolve(id), k.as_slice());
        assert_eq!(vocab.iter().count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_key_length_panics() {
        let mut vocab = BranchVocab::new(2);
        vocab.intern(&key(&[1, 2]));
    }

    #[test]
    fn query_vocab_reuses_known_ids_and_extends() {
        let mut vocab = BranchVocab::new(2);
        let known = vocab.intern(&key(&[1, 2, 3]));
        let mut query = QueryVocab::new(&vocab);
        assert_eq!(query.resolve_or_extend(&key(&[1, 2, 3])), known);
        let novel = query.resolve_or_extend(&key(&[9, 9, 9]));
        assert_eq!(novel, BranchId(1));
        // Stable across repeated resolution.
        assert_eq!(query.resolve_or_extend(&key(&[9, 9, 9])), novel);
        let second = query.resolve_or_extend(&key(&[8, 8, 8]));
        assert_eq!(second, BranchId(2));
        assert_eq!(query.novel_count(), 2);
        // Base vocabulary untouched.
        assert_eq!(vocab.len(), 1);
    }
}
