//! Exact reproduction of the paper's worked example (Figures 1–3).
//!
//! From Figure 2's normalized binary trees, the example trees are
//!
//! * `T1 = a( b(c d), b(c d), e )` — preorder a b c d b c d e with
//!   (pre, post) tags a(1,8) b(2,3) c(3,1) d(4,2) b(5,6) c(6,4) d(7,5)
//!   e(8,7);
//! * `T2 = a( b(c d b(e)), c, d, e )` — a(1,9) b(2,5) c(3,1) d(4,2)
//!   b(5,4) e(6,3) c(7,6) d(8,7) e(9,8).
//!
//! Figure 3 lists the ten binary branch dimensions and the two vectors
//!
//! ```text
//! dim       a⟨b,ε⟩ b⟨c,b⟩ b⟨c,c⟩ b⟨c,e⟩ b⟨e,ε⟩ c⟨ε,d⟩ d⟨ε,b⟩ d⟨ε,e⟩ d⟨ε,ε⟩ e⟨ε,ε⟩
//! BRV(T1)     1      1      0      1      0      2      0      0      2      1
//! BRV(T2)     1      0      1      0      1      2      1      1      0      2
//! ```
//!
//! so `BDist(T1, T2) = 9`.

use std::collections::HashMap;

use treesim_core::{extract_branches, BranchVector, BranchVocab, PositionalVector};
use treesim_edit::edit_distance;
use treesim_tree::{parse::bracket, LabelId, LabelInterner, Tree};

fn paper_trees() -> (Tree, Tree, LabelInterner) {
    let mut interner = LabelInterner::new();
    let t1 = bracket::parse(&mut interner, "a(b(c d) b(c d) e)").unwrap();
    let t2 = bracket::parse(&mut interner, "a(b(c d b(e)) c d e)").unwrap();
    (t1, t2, interner)
}

/// Renders a branch key as the paper writes it: `u⟨u1,u2⟩`.
fn branch_name(interner: &LabelInterner, key: &[LabelId]) -> String {
    format!(
        "{}⟨{},{}⟩",
        interner.resolve(key[0]),
        interner.resolve(key[1]),
        interner.resolve(key[2])
    )
}

#[test]
fn figure_2_positions_match() {
    let (t1, t2, _) = paper_trees();
    // (pre, post) per preorder node, as printed beside Fig. 2's nodes.
    let tags1: Vec<(u32, u32)> = extract_branches(&t1, 2)
        .iter()
        .map(|o| (o.pre, o.post))
        .collect();
    assert_eq!(
        tags1,
        vec![
            (1, 8),
            (2, 3),
            (3, 1),
            (4, 2),
            (5, 6),
            (6, 4),
            (7, 5),
            (8, 7)
        ]
    );
    let tags2: Vec<(u32, u32)> = extract_branches(&t2, 2)
        .iter()
        .map(|o| (o.pre, o.post))
        .collect();
    assert_eq!(
        tags2,
        vec![
            (1, 9),
            (2, 5),
            (3, 1),
            (4, 2),
            (5, 4),
            (6, 3),
            (7, 6),
            (8, 7),
            (9, 8)
        ]
    );
}

#[test]
fn figure_3_vectors_match() {
    let (t1, t2, interner) = paper_trees();
    let count = |tree: &Tree| -> HashMap<String, u32> {
        let mut counts = HashMap::new();
        for occurrence in extract_branches(tree, 2) {
            *counts
                .entry(branch_name(&interner, &occurrence.key))
                .or_insert(0) += 1;
        }
        counts
    };
    let v1 = count(&t1);
    let v2 = count(&t2);

    let expected: [(&str, u32, u32); 10] = [
        ("a⟨b,ε⟩", 1, 1),
        ("b⟨c,b⟩", 1, 0),
        ("b⟨c,c⟩", 0, 1),
        ("b⟨c,e⟩", 1, 0),
        ("b⟨e,ε⟩", 0, 1),
        ("c⟨ε,d⟩", 2, 2),
        ("d⟨ε,b⟩", 0, 1),
        ("d⟨ε,e⟩", 0, 1),
        ("d⟨ε,ε⟩", 2, 0),
        ("e⟨ε,ε⟩", 1, 2),
    ];
    for (name, in_t1, in_t2) in expected {
        assert_eq!(v1.get(name).copied().unwrap_or(0), in_t1, "{name} in T1");
        assert_eq!(v2.get(name).copied().unwrap_or(0), in_t2, "{name} in T2");
    }
    // No dimensions beyond the figure's ten.
    let mut all: Vec<&String> = v1.keys().chain(v2.keys()).collect();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), 10);
}

#[test]
fn figure_3_bdist_is_nine_and_bounds_hold() {
    let (t1, t2, _) = paper_trees();
    let bdist = treesim_core::binary_branch_distance(&t1, &t2, 2);
    assert_eq!(bdist, 9);

    let edist = edit_distance(&t1, &t2);
    assert!(bdist <= 5 * edist, "Theorem 3.2 on the paper's own example");
    assert_eq!(bdist.div_ceil(5), 2, "plain lower bound ⌈9/5⌉ = 2 ≤ EDist");
    assert!(edist >= 2);
}

#[test]
fn section_4_2_positional_example() {
    // §4.2 with pr = 1: (BiB(c,ε,d),3,1) in T1 maps only to (…,3,1) in T2;
    // (…,6,4) and (…,7,6) cannot map to each other; (BiB(e),8,7) in T1 maps
    // to (…,9,8) in T2 but not to (…,6,3).
    let (t1, t2, interner) = paper_trees();
    let mut vocab = BranchVocab::new(2);
    let v1 = PositionalVector::build(&t1, &mut vocab);
    let v2 = PositionalVector::build(&t2, &mut vocab);

    let c = interner.get("c").unwrap();
    let d = interner.get("d").unwrap();
    let e = interner.get("e").unwrap();
    let eps = LabelId::EPSILON;

    let find = |vector: &PositionalVector, key: &[LabelId]| -> Vec<(u32, u32)> {
        let id = vocab.lookup(key).expect("branch in vocabulary");
        vector
            .entries()
            .find(|entry| entry.branch == id)
            .map(|entry| entry.positions.to_vec())
            .unwrap_or_default()
    };
    assert_eq!(find(&v1, &[c, eps, d]), vec![(3, 1), (6, 4)]);
    assert_eq!(find(&v2, &[c, eps, d]), vec![(3, 1), (7, 6)]);
    assert_eq!(find(&v1, &[e, eps, eps]), vec![(8, 7)]);
    assert_eq!(find(&v2, &[e, eps, eps]), vec![(6, 3), (9, 8)]);

    // With pr = 1 only one c⟨ε,d⟩ pair and one e⟨ε,ε⟩ pair can match, as
    // the paper walks through.
    use treesim_core::matching::max_matching;
    assert_eq!(max_matching(&[(3, 1), (6, 4)], &[(3, 1), (7, 6)], 1), 1);
    assert_eq!(max_matching(&[(8, 7)], &[(6, 3), (9, 8)], 1), 1);
    assert_eq!(max_matching(&[(8, 7)], &[(6, 3)], 1), 0);

    // And the resulting optimistic bound is a valid lower bound here too.
    let edist = edit_distance(&t1, &t2);
    let propt = v1.optimistic_bound(&v2);
    assert!(propt <= edist);
    assert!(propt >= v1.bdist(&v2).div_ceil(5));
}

#[test]
fn figure_4_zero_distance_collision() {
    // Fig. 4's point (trees with identical vectors): BDist is only a
    // pseudometric. Verified on the minimal single-label collision.
    let mut interner = LabelInterner::new();
    let t1 = bracket::parse(&mut interner, "a(a a(a))").unwrap();
    let t2 = bracket::parse(&mut interner, "a(a(a a))").unwrap();
    assert_ne!(t1, t2);
    let mut vocab = BranchVocab::new(2);
    let v1 = BranchVector::build(&t1, &mut vocab);
    let v2 = BranchVector::build(&t2, &mut vocab);
    assert_eq!(v1.bdist(&v2), 0);
    assert!(edit_distance(&t1, &t2) > 0);
}
