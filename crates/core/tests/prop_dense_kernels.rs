//! Property tests for the dense/arena kernels: on arbitrary forests —
//! including fully out-of-vocabulary queries and empty segments — they are
//! bit-identical to order-independent sparse references, the CSR arena
//! round-trips every pushed segment, and the dense scatter postings merge
//! equals the k-way heap merge it replaced.

use std::collections::BTreeMap;

use proptest::prelude::*;
use treesim_core::{
    merge_shared_mass, merge_shared_mass_sparse, BranchId, DenseQuery, InvertedFileIndex,
    PositionalVector, VectorArena,
};
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_tree::{Forest, TreeId};

fn small_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(10.0, 3.0),
        label_count: 5,
        decay: 0.25,
        seed_count: 2.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// Order-independent L1 reference: scatter both count vectors into one map
/// and sum absolute differences. Shares no code with the merge kernels.
fn naive_l1(a: &PositionalVector, b: &PositionalVector) -> u64 {
    let mut dims: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
    for (id, count) in a.iter_counts() {
        dims.entry(id.index()).or_default().0 += u64::from(count);
    }
    for (id, count) in b.iter_counts() {
        dims.entry(id.index()).or_default().1 += u64::from(count);
    }
    dims.values().map(|&(x, y)| x.abs_diff(y)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The SoA merge behind `PositionalVector::bdist` equals the naive
    /// scatter-subtract reference on random tree pairs.
    #[test]
    fn dense_bdist_matches_naive_l1(seed in 0u64..100_000) {
        let forest = small_forest(seed, 2);
        let index = InvertedFileIndex::build(&forest, 2);
        let vectors = index.positional_vectors();
        let (v1, v2) = (&vectors[0], &vectors[1]);
        prop_assert_eq!(v1.bdist(v2), naive_l1(v1, v2));
        prop_assert_eq!(v2.bdist(v1), naive_l1(v1, v2));
    }

    /// The arena's dense lookup BDist equals the sparse-vector BDist (and
    /// the naive reference) for every query/candidate pair, and
    /// `bdist_between` agrees on arbitrary in-arena pairs.
    #[test]
    fn arena_bdist_matches_sparse_vectors(seed in 0u64..100_000, count in 2usize..7) {
        let forest = small_forest(seed, count);
        let index = InvertedFileIndex::build(&forest, 2);
        let arena = VectorArena::from_index(&index);
        let vectors = index.positional_vectors();
        prop_assert_eq!(arena.len(), vectors.len());
        for (qi, query) in vectors.iter().enumerate() {
            let dense = DenseQuery::new(
                index.vocab().len(),
                query.iter_counts(),
                u64::from(query.tree_size()),
            );
            for (raw, data) in vectors.iter().enumerate() {
                let got = arena.bdist(raw as u32, &dense);
                prop_assert_eq!(got, query.bdist(data), "q={} t={}", qi, raw);
                prop_assert_eq!(got, naive_l1(query, data));
                prop_assert_eq!(
                    arena.bdist_between(qi as u32, raw as u32),
                    naive_l1(query, data)
                );
            }
        }
    }

    /// A 100%-out-of-vocabulary query shares no mass with any tree: its
    /// dense table is all zeros and BDist collapses to `|BRV(q)| + |BRV(t)|`
    /// — exactly what the sparse merge of disjoint id runs yields.
    #[test]
    fn fully_oov_query_shares_nothing(seed in 0u64..100_000, mass in 1u32..30) {
        let forest = small_forest(seed, 3);
        let index = InvertedFileIndex::build(&forest, 2);
        let arena = VectorArena::from_index(&index);
        let base = index.vocab().len() as u32;
        let oov = [
            (BranchId(base), mass),
            (BranchId(base + 7), 2 * mass),
        ];
        let total = u64::from(3 * mass);
        let dense = DenseQuery::new(index.vocab().len(), oov, total);
        prop_assert!(dense.lookup().iter().all(|&c| c == 0));
        for raw in 0..arena.len() as u32 {
            prop_assert_eq!(
                arena.bdist(raw, &dense),
                total + u64::from(arena.tree_size(raw))
            );
        }
    }

    /// The CSR arena round-trips segment pushes: every `push_tree` is
    /// readable back verbatim (including empty segments), ids out of range
    /// read as empty trees of size zero.
    #[test]
    fn arena_roundtrips_pushed_segments(
        raw_trees in prop::collection::vec(
            prop::collection::vec((0u32..60, 1u32..8), 0..12),
            0..8,
        )
    ) {
        // Collapse duplicate ids per tree: arena segments are keyed maps.
        let trees: Vec<BTreeMap<u32, u32>> = raw_trees
            .iter()
            .map(|pairs| pairs.iter().copied().collect())
            .collect();
        let mut arena = VectorArena::new(2);
        for entries in &trees {
            let size: u32 = entries.values().sum();
            arena.push_tree(
                entries.iter().map(|(&id, &count)| (BranchId(id), count)),
                size,
            );
        }
        prop_assert_eq!(arena.len(), trees.len());
        prop_assert_eq!(
            arena.entry_count(),
            trees.iter().map(BTreeMap::len).sum::<usize>()
        );
        for (raw, entries) in trees.iter().enumerate() {
            let (ids, counts) = arena.tree_entries(raw as u32);
            let got: Vec<(u32, u32)> = ids
                .iter()
                .zip(counts)
                .map(|(id, &count)| (id.index() as u32, count))
                .collect();
            let want: Vec<(u32, u32)> = entries.iter().map(|(&id, &count)| (id, count)).collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(arena.tree_size(raw as u32), entries.values().sum::<u32>());
        }
        // Out-of-range reads are empty, not panics.
        let (ids, counts) = arena.tree_entries(trees.len() as u32 + 5);
        prop_assert!(ids.is_empty() && counts.is_empty());
        prop_assert_eq!(arena.tree_size(trees.len() as u32 + 5), 0);
    }

    /// The dense scatter postings merge is value-identical to the k-way
    /// heap merge it replaced, on arbitrary run sets (duplicate trees
    /// across runs, empty runs, zero query counts).
    #[test]
    fn dense_scatter_merge_equals_heap_merge(
        raw_runs in prop::collection::vec(
            (0u32..5, prop::collection::vec((0u32..40, 1u32..6), 0..10)),
            0..6,
        )
    ) {
        // Posting runs are sorted and unique per tree id.
        let runs: Vec<(u32, BTreeMap<u32, u32>)> = raw_runs
            .iter()
            .map(|(query_count, pairs)| (*query_count, pairs.iter().copied().collect()))
            .collect();
        let make = || -> Vec<(u32, _)> {
            runs.iter()
                .map(|(query_count, list)| {
                    (
                        *query_count,
                        list.iter().map(|(&tree, &count)| (TreeId(tree), count)),
                    )
                })
                .collect()
        };
        prop_assert_eq!(merge_shared_mass(40, make()), merge_shared_mass_sparse(make()));
    }
}
