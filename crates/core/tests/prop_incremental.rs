//! Property test: the incrementally maintained branch multiset never
//! diverges from a from-scratch rebuild, across random edit-op sequences
//! and branch levels.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use treesim_core::IncrementalTree;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_tree::{LabelId, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_stays_synchronized(seed in 0u64..100_000, q in 2usize..4, ops in 1usize..20) {
        let forest = generate(&SyntheticConfig {
            fanout: Normal::new(2.5, 1.0),
            size: Normal::new(12.0, 4.0),
            label_count: 5,
            decay: 0.0,
            seed_count: 1,
            tree_count: 1,
            rng_seed: seed,
        });
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut incremental =
            IncrementalTree::new(forest.tree(treesim_tree::TreeId(0)).clone(), q);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1c);

        for _ in 0..ops {
            let nodes: Vec<NodeId> = incremental.tree().preorder().collect();
            let node = nodes[rng.random_range(0..nodes.len())];
            match rng.random_range(0..3u8) {
                0 => {
                    let label = labels[rng.random_range(0..labels.len())];
                    incremental.relabel(node, label);
                }
                1 => {
                    if node != incremental.tree().root() {
                        incremental.remove_node(node).unwrap();
                    }
                }
                _ => {
                    let label = labels[rng.random_range(0..labels.len())];
                    let degree = incremental.tree().degree(node);
                    let start = rng.random_range(0..=degree);
                    let adopted = rng.random_range(0..=(degree - start));
                    incremental
                        .insert_above_children(node, label, start, adopted)
                        .unwrap();
                }
            }
            prop_assert_eq!(
                incremental.counts(),
                &incremental.rebuilt_counts(),
                "diverged at q={}",
                q
            );
        }
        // Total mass always equals the tree size.
        let total: u32 = incremental.counts().values().sum();
        prop_assert_eq!(total as usize, incremental.tree().len());
    }
}
