//! Fuzz-style property tests for the index codec: arbitrary or corrupted
//! bytes must produce errors, never panics or huge allocations.

use proptest::prelude::*;
use treesim_core::codec::{decode_index, encode_index};
use treesim_core::InvertedFileIndex;
use treesim_tree::Forest;

fn sample_index() -> InvertedFileIndex {
    let mut forest = Forest::new();
    forest.parse_bracket("a(b(c d) e)").unwrap();
    forest.parse_bracket("a(b c)").unwrap();
    InvertedFileIndex::build(&forest, 2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_index(&bytes);
    }

    #[test]
    fn magic_prefixed_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut input = b"TSI1".to_vec();
        input.extend(bytes);
        let _ = decode_index(&input);
    }

    #[test]
    fn corrupted_valid_index_never_panics(position in 0usize..128, value in any::<u8>()) {
        let mut bytes = encode_index(&sample_index()).to_vec();
        let index = position % bytes.len();
        bytes[index] = value;
        if let Ok(decoded) = decode_index(&bytes) {
            // A decode that survives corruption must still be structurally
            // usable.
            let _ = decoded.positional_vectors();
        }
    }

    #[test]
    fn truncation_never_panics(cut in 0usize..128) {
        let bytes = encode_index(&sample_index());
        let cut = cut % bytes.len();
        prop_assert!(decode_index(&bytes[..cut]).is_err());
    }
}
