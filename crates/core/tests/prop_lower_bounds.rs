//! Property tests for the paper's central claims:
//!
//! * Theorem 3.2: `BDist(T1,T2) ≤ 5 · EDist(T1,T2)`;
//! * Theorem 3.3: `BDist_q(T1,T2) ≤ [4(q−1)+1] · EDist(T1,T2)`;
//! * §4.2: `⌈BDist/5⌉ ≤ propt ≤ EDist` (the optimistic bound is valid and
//!   at least as tight as the plain bound);
//! * Proposition 4.2: the range-pruning predicate never prunes a true
//!   result;
//! * triangle inequality of `BDist`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim_core::{BranchVector, BranchVocab, PositionalVector};
use treesim_datagen::mutate::apply_random_ops;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::edit_distance;
use treesim_tree::{Forest, LabelId, Tree, TreeId};

fn small_forest(seed: u64, size_mean: f64, labels: u32, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(size_mean, 3.0),
        label_count: labels,
        decay: 0.25,
        seed_count: 2.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

fn forest_labels(forest: &Forest) -> Vec<LabelId> {
    forest
        .interner()
        .iter()
        .map(|(id, _)| id)
        .filter(|id| !id.is_epsilon())
        .collect()
}

fn positional_pair(t1: &Tree, t2: &Tree, q: usize) -> (PositionalVector, PositionalVector) {
    let mut vocab = BranchVocab::new(q);
    (
        PositionalVector::build(t1, &mut vocab),
        PositionalVector::build(t2, &mut vocab),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 3.2 on random tree pairs.
    #[test]
    fn theorem_3_2_bdist_bounded_by_5_edist(seed in 0u64..100_000) {
        let forest = small_forest(seed, 10.0, 5, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let bdist = treesim_core::binary_branch_distance(t1, t2, 2);
        prop_assert!(bdist <= 5 * edist, "BDist {bdist} > 5·EDist {}", 5 * edist);
    }

    /// Theorem 3.3 for q ∈ {2, 3, 4}.
    #[test]
    fn theorem_3_3_q_level_bound(seed in 0u64..100_000, q in 2usize..5) {
        let forest = small_forest(seed, 9.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let bdist_q = treesim_core::binary_branch_distance(t1, t2, q);
        let factor = treesim_core::bound_factor(q);
        prop_assert!(
            bdist_q <= factor * edist,
            "q={q}: BDist_q {bdist_q} > {factor}·EDist {}",
            factor * edist
        );
    }

    /// Single-operation distortion: k random operations change BDist by at
    /// most 5k (tighter per-op accounting than comparing to EDist, which
    /// may be < k when ops cancel).
    #[test]
    fn k_ops_change_bdist_by_at_most_5k(seed in 0u64..100_000, k in 0usize..6) {
        let forest = small_forest(seed, 14.0, 6, 1);
        let t1 = forest.tree(TreeId(0));
        let labels = forest_labels(&forest);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
        let (t2, ops) = apply_random_ops(t1, k, &labels, &mut rng);
        let bdist = treesim_core::binary_branch_distance(t1, &t2, 2);
        prop_assert!(
            bdist <= 5 * ops.len() as u64,
            "BDist {bdist} > 5k {}",
            5 * ops.len()
        );
    }

    /// §4.2: ⌈BDist/5⌉ ≤ propt ≤ EDist.
    #[test]
    fn optimistic_bound_is_valid_and_tighter(seed in 0u64..100_000) {
        let forest = small_forest(seed, 10.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let (v1, v2) = positional_pair(t1, t2, 2);
        let plain = v1.bdist(&v2).div_ceil(5);
        let propt = v1.optimistic_bound(&v2);
        prop_assert!(propt <= edist, "propt {propt} > EDist {edist}");
        prop_assert!(propt >= plain, "propt {propt} < ⌈BDist/5⌉ {plain}");
    }

    /// Proposition 4.2: range pruning admits every true result.
    #[test]
    fn range_pruning_has_no_false_negatives(seed in 0u64..100_000, tau in 0u32..8) {
        let forest = small_forest(seed, 9.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let (v1, v2) = positional_pair(t1, t2, 2);
        if edist <= u64::from(tau) {
            prop_assert!(
                !v1.exceeds_range(&v2, tau),
                "pruned a result with EDist {edist} ≤ τ {tau}"
            );
        }
    }

    /// The q-level optimistic bound is valid too.
    #[test]
    fn q_level_optimistic_bound_is_valid(seed in 0u64..100_000, q in 2usize..5) {
        let forest = small_forest(seed, 8.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let (v1, v2) = positional_pair(t1, t2, q);
        prop_assert!(v1.optimistic_bound(&v2) <= edist);
    }

    /// Triangle inequality and symmetry of BDist (it is a pseudometric).
    #[test]
    fn bdist_pseudometric_axioms(seed in 0u64..100_000) {
        let forest = small_forest(seed, 8.0, 4, 3);
        let mut vocab = BranchVocab::new(2);
        let vectors: Vec<BranchVector> = forest
            .trees()
            .iter()
            .map(|t| BranchVector::build(t, &mut vocab))
            .collect();
        let d = |a: usize, b: usize| vectors[a].bdist(&vectors[b]);
        prop_assert_eq!(d(0, 0), 0);
        prop_assert_eq!(d(0, 1), d(1, 0));
        prop_assert!(d(0, 2) <= d(0, 1) + d(1, 2));
    }

    /// PosBDist is monotonically non-increasing in pr and converges to BDist.
    #[test]
    fn pos_bdist_monotone_in_pr(seed in 0u64..100_000) {
        let forest = small_forest(seed, 9.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let (v1, v2) = positional_pair(t1, t2, 2);
        let pr_max = v1.tree_size().max(v2.tree_size());
        let mut previous = u64::MAX;
        for pr in 0..=pr_max {
            let d = v1.pos_bdist(&v2, pr);
            prop_assert!(d <= previous);
            previous = d;
        }
        prop_assert_eq!(previous, v1.bdist(&v2));
    }
}
