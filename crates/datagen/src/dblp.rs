//! A DBLP-style bibliographic record generator.
//!
//! The paper's real-data experiments (Figures 13–15) use 2000 records
//! sampled from the DBLP XML repository: shallow, bushy trees with an
//! average size of 10.15 nodes and an average depth of 2.902. The actual
//! snapshot is not redistributable, so this module synthesizes records with
//! the same shape statistics: a record root (`article`, `inproceedings`, …),
//! field elements (`author`, `title`, `year`, …) and text leaves drawn from
//! label pools, giving the same shallow/bushy profile and a similar skewed
//! label distribution.
//!
//! Records are first rendered as XML and then parsed back through
//! [`treesim_tree::parse::xml`], so the full ingestion pipeline is exercised.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use treesim_tree::parse::xml::XmlOptions;
use treesim_tree::Forest;

/// Parameters of the DBLP-style generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DblpConfig {
    /// Number of records to generate (the paper uses 2000).
    pub record_count: usize,
    /// RNG seed for reproducibility.
    pub rng_seed: u64,
    /// Average cluster size: the generator emits one base record followed
    /// by `cluster_size − 1` lightly perturbed variants. Real DBLP
    /// "clusters very well" (§5.2 of the paper) — bibliographic records of
    /// the same venue/author group differ in only a few fields.
    pub cluster_size: usize,
}

impl DblpConfig {
    /// The paper's setting: 2000 records, clustered.
    pub fn paper_default() -> Self {
        DblpConfig {
            record_count: 2000,
            rng_seed: 0xdb1f,
            cluster_size: 20,
        }
    }

    /// Convenience constructor with the default clustering.
    pub fn with_count(record_count: usize, rng_seed: u64) -> Self {
        DblpConfig {
            record_count,
            rng_seed,
            cluster_size: 20,
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "Wei", "Jane", "Rakesh", "Maria", "Panos", "Rui", "Anthony", "Divesh", "Nick", "Laura", "Hans",
    "Petra", "Kaizhong", "Dennis", "Esko", "Luis", "Minos", "Amit", "Karin", "Thomas", "Surajit",
    "Jennifer", "Michael", "Elena", "David", "Sonia", "Jorma", "Erkki", "Gonzalo", "Edgar",
];

const LAST_NAMES: &[&str] = &[
    "Yang",
    "Kalnis",
    "Tung",
    "Zhang",
    "Shasha",
    "Ukkonen",
    "Gravano",
    "Koudas",
    "Srivastava",
    "Garofalakis",
    "Kumar",
    "Kailing",
    "Kriegel",
    "Seidl",
    "Guha",
    "Jagadish",
    "Navarro",
    "Chavez",
    "Selkow",
    "Tarhio",
    "Sutinen",
    "Wang",
    "Tao",
    "Muthukrishnan",
    "Ipeirotis",
    "Aggarwal",
    "Wolf",
    "Yu",
    "Mamoulis",
    "Cheung",
];

const TITLE_WORDS: &[&str] = &[
    "similarity",
    "evaluation",
    "tree",
    "structured",
    "data",
    "efficient",
    "search",
    "index",
    "approximate",
    "join",
    "query",
    "processing",
    "edit",
    "distance",
    "embedding",
    "filtering",
    "xml",
    "streams",
    "hierarchical",
    "databases",
    "matching",
    "patterns",
    "algorithms",
    "fast",
    "scalable",
    "mining",
    "clustering",
    "nearest",
    "neighbor",
    "metric",
];

const JOURNALS: &[&str] = &[
    "VLDB J.",
    "TODS",
    "TKDE",
    "SIAM J. Comput.",
    "Inf. Process. Lett.",
    "Theor. Comput. Sci.",
    "Pattern Recognition",
    "ACM Comput. Surv.",
    "Algorithmica",
    "Inf. Syst.",
];

const BOOKTITLES: &[&str] = &[
    "SIGMOD Conference",
    "VLDB",
    "ICDE",
    "EDBT",
    "PODS",
    "KDD",
    "CIKM",
    "SWAT",
    "SODA",
    "STOC",
    "ICDT",
    "WWW",
];

const PUBLISHERS: &[&str] = &[
    "Springer",
    "ACM Press",
    "Morgan Kaufmann",
    "IEEE Computer Society",
    "Addison-Wesley",
];

const SCHOOLS: &[&str] = &[
    "NUS",
    "Stanford University",
    "MIT",
    "CMU",
    "ETH Zurich",
    "TU Munich",
];

/// One generated record: its kind tag and rendered XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DblpRecord {
    /// Root element name (`article`, `inproceedings`, …).
    pub kind: &'static str,
    /// The rendered XML document.
    pub xml: String,
}

/// Generates `config.record_count` records as XML documents, in clusters of
/// one base record plus perturbed variants.
pub fn generate_records(config: &DblpConfig) -> Vec<DblpRecord> {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let cluster = config.cluster_size.max(1);
    let mut records = Vec::with_capacity(config.record_count);
    while records.len() < config.record_count {
        let base = generate_base(&mut rng);
        records.push(render(&base));
        for _ in 1..cluster {
            if records.len() >= config.record_count {
                break;
            }
            let variant = perturb(&base, &mut rng);
            records.push(render(&variant));
        }
    }
    records
}

/// Generates a forest of DBLP-style trees (elements + text leaves), parsed
/// through the crate's XML parser with [`XmlOptions::WITH_TEXT`].
///
/// # Panics
///
/// Panics if an internally generated record fails to parse — that would be a
/// bug in the generator or parser, not a user error.
pub fn generate_forest(config: &DblpConfig) -> Forest {
    let mut forest = Forest::new();
    for record in generate_records(config) {
        forest
            .parse_xml(&record.xml, XmlOptions::WITH_TEXT)
            .unwrap_or_else(|e| panic!("generated record failed to parse: {e}\n{}", record.xml));
    }
    forest
}

/// Generates a forest of structure-only trees (no text leaves); useful for
/// purely structural experiments.
pub fn generate_structure_forest(config: &DblpConfig) -> Forest {
    let mut forest = Forest::new();
    for record in generate_records(config) {
        forest
            .parse_xml(&record.xml, XmlOptions::STRUCTURE_ONLY)
            .unwrap_or_else(|e| panic!("generated record failed to parse: {e}\n{}", record.xml));
    }
    forest
}

/// A structured record: kind plus ordered fields with optional text.
#[derive(Debug, Clone)]
struct RecordData {
    kind: &'static str,
    /// `(tag, text)`; `None` text renders as an empty element.
    fields: Vec<(&'static str, Option<String>)>,
}

fn generate_base<R: Rng + ?Sized>(rng: &mut R) -> RecordData {
    let roll: f64 = rng.random();
    let kind = if roll < 0.45 {
        "article"
    } else if roll < 0.85 {
        "inproceedings"
    } else if roll < 0.90 {
        "book"
    } else if roll < 0.95 {
        "incollection"
    } else if roll < 0.98 {
        "phdthesis"
    } else {
        "www"
    };

    let mut fields: Vec<(&'static str, Option<String>)> = Vec::new();
    let field = |tag: &'static str, text: String, rng: &mut R, p: f64| {
        if rng.random::<f64>() < p {
            (tag, Some(text))
        } else {
            (tag, None)
        }
    };

    let author_count = match rng.random_range(0..10u8) {
        0..=5 => 1,
        6..=8 => 2,
        _ => 3,
    };
    for _ in 0..author_count {
        let name = author_name(rng);
        fields.push(field("author", name, rng, 0.97));
    }
    let t = title(rng);
    fields.push(field("title", t, rng, 0.99));
    if rng.random::<f64>() < 0.85 {
        let y = year(rng);
        fields.push(field("year", y, rng, 0.97));
    }
    match kind {
        "article" => {
            if rng.random::<f64>() < 0.80 {
                let j = pick(JOURNALS, rng).to_owned();
                fields.push(field("journal", j, rng, 0.97));
            }
            if rng.random::<f64>() < 0.35 {
                let v = rng.random_range(1..60).to_string();
                fields.push(field("volume", v, rng, 0.95));
            }
            if rng.random::<f64>() < 0.35 {
                let pg = pages(rng);
                fields.push(field("pages", pg, rng, 0.95));
            }
        }
        "inproceedings" | "incollection" => {
            if rng.random::<f64>() < 0.85 {
                let b = pick(BOOKTITLES, rng).to_owned();
                fields.push(field("booktitle", b, rng, 0.97));
            }
            if rng.random::<f64>() < 0.35 {
                let pg = pages(rng);
                fields.push(field("pages", pg, rng, 0.95));
            }
        }
        "book" => {
            if rng.random::<f64>() < 0.85 {
                let pb = pick(PUBLISHERS, rng).to_owned();
                fields.push(field("publisher", pb, rng, 0.97));
            }
            if rng.random::<f64>() < 0.40 {
                let i = isbn(rng);
                fields.push(field("isbn", i, rng, 0.95));
            }
        }
        "phdthesis" => {
            let sc = pick(SCHOOLS, rng).to_owned();
            fields.push(field("school", sc, rng, 0.97));
        }
        _ => {}
    }
    if rng.random::<f64>() < 0.25 {
        let e = ee(rng);
        fields.push(field("ee", e, rng, 0.95));
    }
    if rng.random::<f64>() < 0.15 {
        fields.push(("url", None));
    }
    RecordData { kind, fields }
}

/// Derives a cluster member: the base record with 1–3 small edits (the
/// kind of variation adjacent real DBLP records exhibit — same venue and
/// authors, different year/pages/title words).
fn perturb<R: Rng + ?Sized>(base: &RecordData, rng: &mut R) -> RecordData {
    let mut record = base.clone();
    let edits = rng.random_range(1..=2usize);
    for _ in 0..edits {
        match rng.random_range(0..5u8) {
            // Refresh the text of one random field.
            0 => {
                if record.fields.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..record.fields.len());
                let (tag, text) = &mut record.fields[i];
                if text.is_some() {
                    *text = Some(refresh_text(tag, rng));
                }
            }
            // Drop a trailing optional field.
            1 => {
                if record.fields.len() > 2 {
                    let i = rng.random_range(0..record.fields.len());
                    if record.fields[i].0 != "title" {
                        record.fields.remove(i);
                    }
                }
            }
            // Add an extra author at the front.
            2 => {
                let name = author_name(rng);
                record.fields.insert(0, ("author", Some(name)));
            }
            // Add a trailing url/ee.
            3 => {
                if rng.random::<f64>() < 0.5 {
                    record.fields.push(("url", None));
                } else {
                    let e = ee(rng);
                    record.fields.push(("ee", Some(e)));
                }
            }
            // Blank out one field's text (empty element variant).
            _ => {
                if record.fields.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..record.fields.len());
                record.fields[i].1 = None;
            }
        }
    }
    record
}

fn refresh_text<R: Rng + ?Sized>(tag: &str, rng: &mut R) -> String {
    match tag {
        "author" => author_name(rng),
        "title" => title(rng),
        "year" => year(rng),
        "journal" => pick(JOURNALS, rng).to_owned(),
        "booktitle" => pick(BOOKTITLES, rng).to_owned(),
        "publisher" => pick(PUBLISHERS, rng).to_owned(),
        "school" => pick(SCHOOLS, rng).to_owned(),
        "volume" => rng.random_range(1..60).to_string(),
        "pages" => pages(rng),
        "isbn" => isbn(rng),
        "ee" => ee(rng),
        _ => String::new(),
    }
}

fn render(record: &RecordData) -> DblpRecord {
    let mut xml = String::with_capacity(256);
    xml.push('<');
    xml.push_str(record.kind);
    xml.push('>');
    for (tag, text) in &record.fields {
        match text {
            Some(t) => {
                xml.push('<');
                xml.push_str(tag);
                xml.push('>');
                xml.push_str(t);
                xml.push_str("</");
                xml.push_str(tag);
                xml.push('>');
            }
            None => {
                xml.push('<');
                xml.push_str(tag);
                xml.push_str("/>");
            }
        }
    }
    xml.push_str("</");
    xml.push_str(record.kind);
    xml.push('>');
    DblpRecord {
        kind: record.kind,
        xml,
    }
}

fn pick<'a, R: Rng + ?Sized>(pool: &[&'a str], rng: &mut R) -> &'a str {
    pool[rng.random_range(0..pool.len())]
}

fn author_name<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
}

fn title<R: Rng + ?Sized>(rng: &mut R) -> String {
    let words = rng.random_range(3..8);
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(pick(TITLE_WORDS, rng));
    }
    out
}

fn year<R: Rng + ?Sized>(rng: &mut R) -> String {
    rng.random_range(1977..2005).to_string()
}

fn pages<R: Rng + ?Sized>(rng: &mut R) -> String {
    let start = rng.random_range(1..900);
    format!("{start}-{}", start + rng.random_range(5..20))
}

fn isbn<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "{}-{}-{}-{}",
        rng.random_range(0..10),
        rng.random_range(100..999),
        rng.random_range(10000..99999),
        rng.random_range(0..10)
    )
}

fn ee<R: Rng + ?Sized>(rng: &mut R) -> String {
    format!(
        "db/journals/j{}/p{}.html",
        rng.random_range(1..40),
        rng.random_range(1..999)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn forest_1000() -> Forest {
        generate_forest(&DblpConfig::with_count(1000, 0xdb1f))
    }

    #[test]
    fn generates_requested_count() {
        let forest = forest_1000();
        assert_eq!(forest.len(), 1000);
    }

    #[test]
    fn shape_matches_paper_statistics() {
        // The paper quotes avg size 10.15 and avg depth 2.902 for its DBLP
        // sample; the generator is calibrated to land near those values.
        let stats = forest_1000().stats();
        assert!(
            (8.5..12.0).contains(&stats.avg_size),
            "avg size {}",
            stats.avg_size
        );
        assert!(
            (2.7..=3.0).contains(&stats.avg_height),
            "avg height {}",
            stats.avg_height
        );
    }

    #[test]
    fn trees_are_shallow_and_bushy() {
        let forest = forest_1000();
        for (_, tree) in forest.iter() {
            assert!(tree.height() <= 3, "height {}", tree.height());
            tree.validate().unwrap();
        }
    }

    #[test]
    fn structure_only_variant_drops_text() {
        let config = DblpConfig::with_count(50, 3);
        let with_text = generate_forest(&config);
        let structure = generate_structure_forest(&config);
        assert!(structure.stats().avg_size < with_text.stats().avg_size);
        assert!(structure.stats().distinct_labels < 20);
    }

    #[test]
    fn records_are_valid_xml() {
        let records = generate_records(&DblpConfig::with_count(20, 9));
        let mut interner = treesim_tree::LabelInterner::new();
        for record in &records {
            let tree =
                treesim_tree::parse::xml::parse(&mut interner, &record.xml, XmlOptions::FULL)
                    .unwrap();
            assert_eq!(interner.resolve(tree.label(tree.root())), record.kind);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = DblpConfig::with_count(10, 4);
        assert_eq!(generate_records(&config), generate_records(&config));
    }

    #[test]
    fn record_kind_mix_is_plausible() {
        let records = generate_records(&DblpConfig::with_count(1000, 5));
        let articles = records.iter().filter(|r| r.kind == "article").count();
        let inproc = records.iter().filter(|r| r.kind == "inproceedings").count();
        assert!((350..550).contains(&articles), "articles {articles}");
        assert!((300..500).contains(&inproc), "inproceedings {inproc}");
    }
}
