//! Dataset generators reproducing the evaluation workloads of
//! *Similarity Evaluation on Tree-structured Data* (SIGMOD 2005).
//!
//! * [`synthetic`]: the paper's `N{fanout}N{size}L{labels}D{decay}` generator
//!   (seed trees grown breadth-first, then decay-factor mutation chains);
//! * [`dblp`]: DBLP-style bibliographic XML records calibrated to the shape
//!   statistics the paper quotes for its real dataset;
//! * [`mutate`]: random Zhang–Shasha edit operations (also the backbone of
//!   the lower-bound property tests across the workspace);
//! * [`normal`]: Box–Muller normal sampling;
//! * [`workload`]: query sampling and distance calibration helpers.
//!
//! # Example
//!
//! ```
//! use treesim_datagen::normal::Normal;
//! use treesim_datagen::synthetic::{generate, SyntheticConfig};
//!
//! let forest = generate(&SyntheticConfig {
//!     fanout: Normal::new(4.0, 0.5),
//!     size: Normal::new(20.0, 2.0),
//!     label_count: 8,
//!     decay: 0.05,
//!     seed_count: 2,
//!     tree_count: 10,
//!     rng_seed: 7,
//! });
//! assert_eq!(forest.len(), 10);
//! ```

#![warn(missing_docs)]

pub mod dblp;
pub mod mutate;
pub mod normal;
pub mod synthetic;
pub mod workload;
pub mod zaki;

pub use dblp::DblpConfig;
pub use mutate::{apply_random_op, apply_random_ops, decay_mutate, EditOp, EditOpKind};
pub use normal::Normal;
pub use synthetic::SyntheticConfig;
