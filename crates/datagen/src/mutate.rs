//! Random edit operations on trees.
//!
//! Used by the synthetic generator (each node of a seed tree is changed with
//! the decay-factor probability, the change being equiprobably an insertion,
//! a deletion or a relabeling — §5 of the paper) and by the test suites,
//! which apply `k` operations and check that every lower bound stays ≤ `k`.

use rand::{Rng, RngExt};
use treesim_tree::{LabelId, NodeId, Tree};

/// One applied edit operation, in the Zhang–Shasha model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// The label of a node was changed.
    Relabel {
        /// Node whose label changed.
        node: NodeId,
        /// The previous label.
        from: LabelId,
        /// The new label.
        to: LabelId,
    },
    /// A non-root node was removed; its children were spliced into its place.
    Delete {
        /// The removed node.
        node: NodeId,
    },
    /// A new node was inserted under `parent`, adopting `adopted` consecutive
    /// children starting at child position `start`.
    Insert {
        /// The new node.
        node: NodeId,
        /// Parent it was inserted under.
        parent: NodeId,
        /// First adopted child position.
        start: usize,
        /// Number of adopted children.
        adopted: usize,
    },
}

/// Kinds of edit operation, for selection control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOpKind {
    /// Change a node label.
    Relabel,
    /// Delete a non-root node.
    Delete,
    /// Insert a node.
    Insert,
}

/// Applies one random edit operation of the given `kind` anchored at `node`.
///
/// Returns `None` when the operation is inapplicable (deleting the root, or
/// relabeling when only one label exists).
pub fn apply_op_at<R: Rng + ?Sized>(
    tree: &mut Tree,
    node: NodeId,
    kind: EditOpKind,
    labels: &[LabelId],
    rng: &mut R,
) -> Option<EditOp> {
    match kind {
        EditOpKind::Relabel => {
            let from = tree.label(node);
            let candidates: Vec<_> = labels.iter().copied().filter(|&l| l != from).collect();
            if candidates.is_empty() {
                return None;
            }
            let to = candidates[rng.random_range(0..candidates.len())];
            tree.relabel(node, to);
            Some(EditOp::Relabel { node, from, to })
        }
        EditOpKind::Delete => {
            if node == tree.root() {
                return None;
            }
            tree.remove_node(node).ok()?;
            Some(EditOp::Delete { node })
        }
        EditOpKind::Insert => {
            if labels.is_empty() {
                return None;
            }
            let label = labels[rng.random_range(0..labels.len())];
            let degree = tree.degree(node);
            let start = rng.random_range(0..=degree);
            let adopted = rng.random_range(0..=(degree - start));
            let new = tree
                .insert_above_children(node, label, start, adopted)
                .expect("range sampled within bounds");
            Some(EditOp::Insert {
                node: new,
                parent: node,
                start,
                adopted,
            })
        }
    }
}

/// Applies one uniformly random edit operation somewhere in the tree.
///
/// Returns `None` only in degenerate situations (e.g., single-label universe
/// and a relabel was drawn on a single-node tree where deletion is also
/// impossible); callers typically retry.
pub fn apply_random_op<R: Rng + ?Sized>(
    tree: &mut Tree,
    labels: &[LabelId],
    rng: &mut R,
) -> Option<EditOp> {
    let nodes: Vec<NodeId> = tree.preorder().collect();
    let node = nodes[rng.random_range(0..nodes.len())];
    let kind = match rng.random_range(0..3u8) {
        0 => EditOpKind::Relabel,
        1 => EditOpKind::Delete,
        _ => EditOpKind::Insert,
    };
    apply_op_at(tree, node, kind, labels, rng)
}

/// Applies exactly `k` random edit operations (retrying inapplicable draws),
/// returning the mutated tree and the operations applied.
///
/// The result is a tree whose true edit distance to the input is **at most**
/// `k` (operations may cancel out).
pub fn apply_random_ops<R: Rng + ?Sized>(
    tree: &Tree,
    k: usize,
    labels: &[LabelId],
    rng: &mut R,
) -> (Tree, Vec<EditOp>) {
    let mut mutated = tree.clone();
    let mut ops = Vec::with_capacity(k);
    let mut stall_guard = 0usize;
    while ops.len() < k {
        match apply_random_op(&mut mutated, labels, rng) {
            Some(op) => {
                ops.push(op);
                stall_guard = 0;
            }
            None => {
                stall_guard += 1;
                if stall_guard > 64 {
                    break; // degenerate universe: give up gracefully
                }
            }
        }
    }
    (mutated.compact(), ops)
}

/// Mutates every node of `tree` independently with probability `decay`,
/// choosing equiprobably among insertion, deletion and relabeling — the
/// per-tree step of the paper's synthetic generator.
pub fn decay_mutate<R: Rng + ?Sized>(
    tree: &Tree,
    decay: f64,
    labels: &[LabelId],
    rng: &mut R,
) -> (Tree, usize) {
    let mut mutated = tree.clone();
    let snapshot: Vec<NodeId> = mutated.preorder().collect();
    let mut applied = 0usize;
    for node in snapshot {
        if !mutated.contains(node) {
            continue; // removed by an earlier deletion in this pass
        }
        if rng.random::<f64>() >= decay {
            continue;
        }
        let kind = match rng.random_range(0..3u8) {
            0 => EditOpKind::Relabel,
            1 => EditOpKind::Delete,
            _ => EditOpKind::Insert,
        };
        if apply_op_at(&mut mutated, node, kind, labels, rng).is_some() {
            applied += 1;
        }
    }
    (mutated.compact(), applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use treesim_tree::LabelInterner;

    fn setup() -> (Tree, Vec<LabelId>, LabelInterner) {
        let mut interner = LabelInterner::new();
        let labels: Vec<_> = (0..8).map(|i| interner.intern(&format!("l{i}"))).collect();
        let mut tree = Tree::new(labels[0]);
        let root = tree.root();
        let a = tree.add_child(root, labels[1]);
        tree.add_child(root, labels[2]);
        tree.add_child(a, labels[3]);
        tree.add_child(a, labels[4]);
        (tree, labels, interner)
    }

    #[test]
    fn relabel_changes_label() {
        let (mut tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let node = tree.root();
        let before = tree.label(node);
        let op = apply_op_at(&mut tree, node, EditOpKind::Relabel, &labels, &mut rng).unwrap();
        match op {
            EditOp::Relabel { from, to, .. } => {
                assert_eq!(from, before);
                assert_ne!(to, before);
                assert_eq!(tree.label(node), to);
            }
            _ => panic!("expected relabel"),
        }
    }

    #[test]
    fn delete_root_is_inapplicable() {
        let (mut tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let root = tree.root();
        assert!(apply_op_at(&mut tree, root, EditOpKind::Delete, &labels, &mut rng).is_none());
        assert_eq!(tree.len(), 5);
    }

    #[test]
    fn insert_grows_tree_by_one() {
        let (mut tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let before = tree.len();
        let root = tree.root();
        apply_op_at(&mut tree, root, EditOpKind::Insert, &labels, &mut rng).unwrap();
        assert_eq!(tree.len(), before + 1);
        tree.validate().unwrap();
    }

    #[test]
    fn apply_random_ops_applies_exactly_k() {
        let (tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        for k in 0..6 {
            let (mutated, ops) = apply_random_ops(&tree, k, &labels, &mut rng);
            assert_eq!(ops.len(), k);
            mutated.validate().unwrap();
        }
    }

    #[test]
    fn apply_random_ops_is_deterministic_per_seed() {
        let (tree, labels, _) = setup();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            apply_random_ops(&tree, 4, &labels, &mut rng).0
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn decay_zero_is_identity() {
        let (tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let (mutated, applied) = decay_mutate(&tree, 0.0, &labels, &mut rng);
        assert_eq!(applied, 0);
        assert_eq!(mutated, tree);
    }

    #[test]
    fn decay_one_touches_most_nodes() {
        let (tree, labels, _) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let (mutated, applied) = decay_mutate(&tree, 1.0, &labels, &mut rng);
        assert!(applied >= tree.len() - 2, "applied {applied}");
        mutated.validate().unwrap();
    }

    #[test]
    fn single_label_universe_degenerates_gracefully() {
        let mut interner = LabelInterner::new();
        let only = interner.intern("x");
        let tree = Tree::new(only);
        let mut rng = StdRng::seed_from_u64(0);
        // Relabel impossible (one label), delete impossible (root only);
        // insert still works, so k ops should still be applied.
        let (mutated, ops) = apply_random_ops(&tree, 3, &[only], &mut rng);
        assert!(ops.len() <= 3);
        mutated.validate().unwrap();
    }
}
