//! Normal-distribution sampling via the Box–Muller transform.
//!
//! The paper's generator draws tree sizes and fanouts from normal
//! distributions `N{mean, sd}` (§5). The approved dependency set contains
//! `rand` but not `rand_distr`, so we implement the transform ourselves.

use rand::{Rng, RngExt};

/// A normal distribution `N{mean, sd}` in the paper's notation.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use treesim_datagen::normal::Normal;
///
/// let dist = Normal::new(50.0, 2.0);
/// let mut rng = StdRng::seed_from_u64(7);
/// let x = dist.sample(&mut rng);
/// assert!((30.0..70.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates `N{mean, sd}`.
    ///
    /// # Panics
    ///
    /// Panics if `sd` is negative or not finite.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            sd >= 0.0 && sd.is_finite(),
            "standard deviation must be ≥ 0"
        );
        assert!(mean.is_finite(), "mean must be finite");
        Normal { mean, sd }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sd * radius * theta.cos()
    }

    /// Draws a sample rounded to the nearest integer and clamped to
    /// `[min, max]` — the shape used for tree sizes and fanouts.
    pub fn sample_clamped_usize<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        min: usize,
        max: usize,
    ) -> usize {
        let value = self.sample(rng).round();
        if !value.is_finite() || value <= min as f64 {
            return min;
        }
        (value as usize).clamp(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_and_sd_converge() {
        let dist = Normal::new(50.0, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn zero_sd_is_constant() {
        let dist = Normal::new(4.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(dist.sample(&mut rng), 4.0);
        }
    }

    #[test]
    fn clamped_sampling_respects_bounds() {
        let dist = Normal::new(4.0, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = dist.sample_clamped_usize(&mut rng, 1, 8);
            assert!((1..=8).contains(&v));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let dist = Normal::new(0.0, 1.0);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| dist.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..5).map(|_| dist.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_sd_panics() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn accessors() {
        let dist = Normal::new(4.0, 0.5);
        assert_eq!(dist.mean(), 4.0);
        assert_eq!(dist.sd(), 0.5);
    }
}
