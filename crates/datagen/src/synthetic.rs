//! The paper's synthetic dataset generator (§5).
//!
//! A specification `N{4,0.5}N{50,2}L8D0.05` reads: node fanout ~ `N{4,0.5}`,
//! tree size ~ `N{50,2}`, 8 distinct labels, decay factor 0.05. Generation
//! proceeds in two phases:
//!
//! 1. **Seeds.** A number of seed trees are grown breadth-first: the maximum
//!    size is sampled from the size distribution, each node's label is
//!    sampled uniformly from the label universe, and each node's child count
//!    from the fanout distribution, until the size cap is reached.
//! 2. **Chains.** Every further tree is derived from a previously generated
//!    tree by changing each node with probability `decay`, the change being
//!    equiprobably an insertion, a deletion or a relabeling. Derived trees
//!    join the pool and can seed later derivations.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use treesim_tree::{Forest, LabelId, LabelInterner, Tree};

use crate::mutate::decay_mutate;
use crate::normal::Normal;

/// Parameters of the synthetic generator, mirroring the paper's
/// `N{f_mean,f_sd}N{s_mean,s_sd}L{labels}D{decay}` notation.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Fanout distribution (`N{4,0.5}` in most experiments).
    pub fanout: Normal,
    /// Tree size distribution (`N{50,2}` in most experiments).
    pub size: Normal,
    /// Number of distinct labels (`L8` …).
    pub label_count: u32,
    /// Per-node mutation probability between chained trees (`D0.05`).
    pub decay: f64,
    /// Number of independently grown seed trees.
    pub seed_count: usize,
    /// Total number of trees to generate (including the seeds).
    pub tree_count: usize,
    /// RNG seed for reproducibility.
    pub rng_seed: u64,
}

impl SyntheticConfig {
    /// The paper's default shape: `N{4,0.5} N{50,2} L8 D0.05`, 2000 trees.
    pub fn paper_default() -> Self {
        SyntheticConfig {
            fanout: Normal::new(4.0, 0.5),
            size: Normal::new(50.0, 2.0),
            label_count: 8,
            decay: 0.05,
            seed_count: 10,
            tree_count: 2000,
            rng_seed: 0x5eed,
        }
    }

    /// Renders the paper's specification string for this configuration.
    pub fn spec_string(&self) -> String {
        format!(
            "N{{{},{}}}N{{{},{}}}L{}D{}",
            self.fanout.mean(),
            self.fanout.sd(),
            self.size.mean(),
            self.size.sd(),
            self.label_count,
            self.decay
        )
    }
}

/// Generates a forest according to `config`.
///
/// Labels are named `"0"`, `"1"`, … and interned into the fresh forest.
///
/// # Panics
///
/// Panics if `config.label_count == 0`, `tree_count == 0` or
/// `seed_count == 0`.
pub fn generate(config: &SyntheticConfig) -> Forest {
    assert!(config.label_count > 0, "need at least one label");
    assert!(config.tree_count > 0, "need at least one tree");
    assert!(config.seed_count > 0, "need at least one seed");
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut interner = LabelInterner::new();
    let labels: Vec<LabelId> = (0..config.label_count)
        .map(|i| interner.intern(&i.to_string()))
        .collect();

    let seed_count = config.seed_count.min(config.tree_count);
    let mut trees: Vec<Tree> = Vec::with_capacity(config.tree_count);
    for _ in 0..seed_count {
        trees.push(grow_seed(config, &labels, &mut rng));
    }
    while trees.len() < config.tree_count {
        let parent_index = rng.random_range(0..trees.len());
        let (derived, _) = decay_mutate(&trees[parent_index], config.decay, &labels, &mut rng);
        trees.push(derived);
    }
    Forest::from_parts(interner, trees)
}

/// Grows one seed tree breadth-first (phase 1 of the generator).
fn grow_seed<R: Rng + ?Sized>(config: &SyntheticConfig, labels: &[LabelId], rng: &mut R) -> Tree {
    let max_size = config.size.sample_clamped_usize(rng, 1, 1_000_000);
    let root_label = labels[rng.random_range(0..labels.len())];
    let mut tree = Tree::with_capacity(root_label, max_size);
    let mut queue = std::collections::VecDeque::from([tree.root()]);
    while let Some(node) = queue.pop_front() {
        if tree.len() >= max_size {
            break;
        }
        let fanout = config.fanout.sample_clamped_usize(rng, 0, max_size);
        for _ in 0..fanout {
            if tree.len() >= max_size {
                break;
            }
            let label = labels[rng.random_range(0..labels.len())];
            queue.push_back(tree.add_child(node, label));
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            fanout: Normal::new(4.0, 0.5),
            size: Normal::new(50.0, 2.0),
            label_count: 8,
            decay: 0.05,
            seed_count: 5,
            tree_count: 100,
            rng_seed: 1,
        }
    }

    #[test]
    fn generates_requested_count() {
        let forest = generate(&small_config());
        assert_eq!(forest.len(), 100);
        for (_, tree) in forest.iter() {
            tree.validate().unwrap();
        }
    }

    #[test]
    fn sizes_follow_distribution() {
        let forest = generate(&small_config());
        let stats = forest.stats();
        // N{50, 2} with decay mutations keeps the mean near 50.
        assert!(
            (40.0..60.0).contains(&stats.avg_size),
            "avg size {}",
            stats.avg_size
        );
        assert!(stats.max_size < 80);
    }

    #[test]
    fn label_universe_is_bounded() {
        let config = small_config();
        let forest = generate(&config);
        assert!(forest.stats().distinct_labels <= config.label_count as usize);
    }

    #[test]
    fn fanout_follows_distribution() {
        let forest = generate(&small_config());
        let stats = forest.stats();
        // Internal fanout mean should be near 4 (the last internal level is
        // truncated by the size cap, dragging it slightly below).
        assert!(
            (2.5..5.0).contains(&stats.avg_fanout),
            "avg fanout {}",
            stats.avg_fanout
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.len(), b.len());
        for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = small_config();
        let a = generate(&config);
        config.rng_seed = 2;
        let b = generate(&config);
        let any_diff = a.iter().zip(b.iter()).any(|((_, x), (_, y))| x != y);
        assert!(any_diff);
    }

    #[test]
    fn spec_string_matches_paper_notation() {
        let config = small_config();
        assert_eq!(config.spec_string(), "N{4,0.5}N{50,2}L8D0.05");
    }

    #[test]
    fn paper_default_shape() {
        let config = SyntheticConfig::paper_default();
        assert_eq!(config.tree_count, 2000);
        assert_eq!(config.label_count, 8);
    }

    #[test]
    fn single_tree_dataset() {
        let mut config = small_config();
        config.tree_count = 1;
        let forest = generate(&config);
        assert_eq!(forest.len(), 1);
    }
}
