//! Query workload sampling and dataset distance calibration.
//!
//! The paper selects 100 queries at random from each dataset, sets the range
//! query radius to 1/5 of the average pairwise distance and retrieves 0.25 %
//! of the dataset for k-NN queries. The average pairwise distance over 2000
//! trees would need ~2·10⁶ edit-distance computations, so we estimate it
//! from a random sample of pairs (documented substitution in DESIGN.md).

use rand::{Rng, RngExt};
use treesim_tree::{Forest, Tree, TreeId};

/// Samples `count` distinct query tree ids uniformly from the forest.
///
/// If `count >= forest.len()`, all ids are returned (shuffled).
pub fn sample_queries<R: Rng + ?Sized>(forest: &Forest, count: usize, rng: &mut R) -> Vec<TreeId> {
    let mut ids: Vec<TreeId> = forest.iter().map(|(id, _)| id).collect();
    // Partial Fisher–Yates: shuffle the first `count` positions.
    let take = count.min(ids.len());
    for i in 0..take {
        let j = rng.random_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(take);
    ids
}

/// Estimates the mean pairwise distance of the forest under `distance` by
/// sampling `pair_samples` unordered pairs of distinct trees.
///
/// Returns 0.0 for forests with fewer than two trees.
pub fn estimate_avg_distance<R, D>(
    forest: &Forest,
    pair_samples: usize,
    rng: &mut R,
    mut distance: D,
) -> f64
where
    R: Rng + ?Sized,
    D: FnMut(&Tree, &Tree) -> u64,
{
    let n = forest.len();
    if n < 2 || pair_samples == 0 {
        return 0.0;
    }
    let mut total = 0u64;
    for _ in 0..pair_samples {
        let a = rng.random_range(0..n);
        let mut b = rng.random_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        total += distance(forest.tree(TreeId(a as u32)), forest.tree(TreeId(b as u32)));
    }
    total as f64 / pair_samples as f64
}

/// The paper's k for k-NN experiments: 0.25 % of the dataset, at least 1.
pub fn paper_knn_k(dataset_size: usize) -> usize {
    ((dataset_size as f64 * 0.0025).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn forest(n: usize) -> Forest {
        let mut forest = Forest::new();
        for i in 0..n {
            forest.parse_bracket(&format!("a(b{} c)", i % 5)).unwrap();
        }
        forest
    }

    #[test]
    fn samples_distinct_queries() {
        let forest = forest(50);
        let mut rng = StdRng::seed_from_u64(1);
        let queries = sample_queries(&forest, 10, &mut rng);
        assert_eq!(queries.len(), 10);
        let mut dedup = queries.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
    }

    #[test]
    fn oversampling_returns_everything() {
        let forest = forest(5);
        let mut rng = StdRng::seed_from_u64(1);
        let queries = sample_queries(&forest, 100, &mut rng);
        assert_eq!(queries.len(), 5);
    }

    #[test]
    fn avg_distance_estimate_under_constant_metric() {
        let forest = forest(20);
        let mut rng = StdRng::seed_from_u64(2);
        let avg = estimate_avg_distance(&forest, 100, &mut rng, |_, _| 7);
        assert_eq!(avg, 7.0);
    }

    #[test]
    fn avg_distance_pairs_are_distinct_trees() {
        let forest = forest(10);
        let mut rng = StdRng::seed_from_u64(3);
        // Distance function that fails on identical references.
        let avg = estimate_avg_distance(&forest, 500, &mut rng, |a, b| {
            assert!(!std::ptr::eq(a, b), "sampled a pair of the same tree");
            1
        });
        assert_eq!(avg, 1.0);
    }

    #[test]
    fn degenerate_forests_yield_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(
            estimate_avg_distance(&forest(1), 10, &mut rng, |_, _| 9),
            0.0
        );
        assert_eq!(
            estimate_avg_distance(&forest(5), 0, &mut rng, |_, _| 9),
            0.0
        );
    }

    #[test]
    fn paper_k_is_quarter_percent() {
        assert_eq!(paper_knn_k(2000), 5);
        assert_eq!(paper_knn_k(400), 1);
        assert_eq!(paper_knn_k(10), 1);
    }
}
