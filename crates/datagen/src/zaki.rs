//! A Zaki-style dataset generator (reference \[21\] of the paper —
//! *Efficiently mining frequent trees in a forest*, KDD 2002).
//!
//! The paper's own generator is "similar to that of \[21\]" but replaces
//! website-browsing simulation with explicit distance control (that variant
//! lives in [`crate::synthetic`]). This module provides the original
//! master-tree flavor as an additional workload: one large **master tree**
//! is grown, and every dataset tree is a pruned top-down copy of it —
//! datasets share large common substructures, the regime tree-mining and
//! similarity papers both probe.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use treesim_tree::{Forest, LabelId, LabelInterner, NodeId, Tree};

/// Parameters of the master-tree generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ZakiConfig {
    /// Nodes in the master tree.
    pub master_size: usize,
    /// Maximum fanout while growing the master tree.
    pub max_fanout: usize,
    /// Distinct labels.
    pub label_count: u32,
    /// Probability that a child (and hence its subtree) survives pruning.
    pub inclusion_probability: f64,
    /// Number of dataset trees to derive.
    pub tree_count: usize,
    /// Minimum size of a derived tree (smaller draws are retried).
    pub min_tree_size: usize,
    /// RNG seed.
    pub rng_seed: u64,
}

impl ZakiConfig {
    /// A moderate default: 1000-node master, 100 derived trees.
    pub fn default_workload() -> Self {
        ZakiConfig {
            master_size: 1000,
            max_fanout: 5,
            label_count: 10,
            inclusion_probability: 0.7,
            tree_count: 100,
            min_tree_size: 5,
            rng_seed: 0x2a21,
        }
    }
}

/// Generates the master tree and the derived forest.
///
/// # Panics
///
/// Panics on degenerate configurations (no labels, empty master, a minimum
/// size the pruning can never reach).
pub fn generate(config: &ZakiConfig) -> (Tree, Forest) {
    assert!(config.label_count > 0, "need at least one label");
    assert!(config.master_size > 0, "master tree cannot be empty");
    assert!(
        config.min_tree_size <= config.master_size,
        "minimum derived size exceeds the master size"
    );
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut interner = LabelInterner::new();
    let labels: Vec<LabelId> = (0..config.label_count)
        .map(|i| interner.intern(&format!("z{i}")))
        .collect();

    let master = grow_master(config, &labels, &mut rng);
    let mut trees = Vec::with_capacity(config.tree_count);
    while trees.len() < config.tree_count {
        let derived = prune_copy(&master, config.inclusion_probability, &mut rng);
        if derived.len() >= config.min_tree_size {
            trees.push(derived);
        }
    }
    (master, Forest::from_parts(interner, trees))
}

fn grow_master<R: Rng + ?Sized>(config: &ZakiConfig, labels: &[LabelId], rng: &mut R) -> Tree {
    let mut tree = Tree::with_capacity(
        labels[rng.random_range(0..labels.len())],
        config.master_size,
    );
    // Attach each new node under a random existing node with spare fanout.
    let mut open: Vec<NodeId> = vec![tree.root()];
    while tree.len() < config.master_size && !open.is_empty() {
        let slot = rng.random_range(0..open.len());
        let parent = open[slot];
        let label = labels[rng.random_range(0..labels.len())];
        let child = tree.add_child(parent, label);
        open.push(child);
        if tree.degree(parent) >= config.max_fanout {
            open.swap_remove(slot);
        }
    }
    tree
}

/// Top-down pruned copy: the root always survives; each child edge
/// survives independently with the inclusion probability.
fn prune_copy<R: Rng + ?Sized>(master: &Tree, probability: f64, rng: &mut R) -> Tree {
    let mut out = Tree::new(master.label(master.root()));
    let mut stack: Vec<(NodeId, NodeId)> = master
        .children(master.root())
        .map(|c| (c, out.root()))
        .collect();
    stack.reverse();
    while let Some((old, new_parent)) = stack.pop() {
        if rng.random::<f64>() >= probability {
            continue; // prune this whole subtree
        }
        let copy = out.add_child(new_parent, master.label(old));
        let before = stack.len();
        stack.extend(master.children(old).map(|c| (c, copy)));
        stack[before..].reverse();
    }
    out
}

/// Whether `derived` embeds into `master` as a top-down, order-preserving
/// pruned copy (test oracle; greedy left-to-right matching suffices for
/// this generator's outputs, which preserve child order).
pub fn is_pruned_copy(master: &Tree, derived: &Tree) -> bool {
    fn embeds(master: &Tree, m: NodeId, derived: &Tree, d: NodeId) -> bool {
        if master.label(m) != derived.label(d) {
            return false;
        }
        // Greedy order-preserving injection of d's children into m's.
        let mut master_children = master.children(m);
        'outer: for d_child in derived.children(d) {
            for m_child in master_children.by_ref() {
                if embeds(master, m_child, derived, d_child) {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
    embeds(master, master.root(), derived, derived.root())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ZakiConfig {
        ZakiConfig {
            master_size: 200,
            max_fanout: 4,
            label_count: 6,
            inclusion_probability: 0.7,
            tree_count: 30,
            min_tree_size: 3,
            rng_seed: 9,
        }
    }

    #[test]
    fn master_has_requested_size() {
        let (master, forest) = generate(&config());
        master.validate().unwrap();
        assert_eq!(master.len(), 200);
        assert_eq!(forest.len(), 30);
    }

    #[test]
    fn derived_trees_are_pruned_copies() {
        let (master, forest) = generate(&config());
        for (_, tree) in forest.iter() {
            tree.validate().unwrap();
            assert!(tree.len() >= 3);
            assert!(tree.len() <= master.len());
            assert!(
                is_pruned_copy(&master, tree),
                "derived tree does not embed in the master"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = generate(&config());
        let (_, b) = generate(&config());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn shared_substructure_means_small_distances() {
        // Trees pruned from one master should be far closer to each other
        // than independent random trees of the same size would be.
        let (_, forest) = generate(&config());
        let t0 = forest.tree(treesim_tree::TreeId(0));
        let t1 = forest.tree(treesim_tree::TreeId(1));
        let upper = (t0.len() + t1.len()) as u64;
        let bdist = {
            // Cheap structural proxy available in this crate: size overlap.
            (t0.len() as i64 - t1.len() as i64).unsigned_abs()
        };
        assert!(bdist < upper);
    }

    #[test]
    fn oracle_rejects_non_copies() {
        let mut interner = LabelInterner::new();
        let master = treesim_tree::parse::bracket::parse(&mut interner, "a(b(c) d)").unwrap();
        let yes = treesim_tree::parse::bracket::parse(&mut interner, "a(b d)").unwrap();
        let no = treesim_tree::parse::bracket::parse(&mut interner, "a(d b)").unwrap();
        let deeper = treesim_tree::parse::bracket::parse(&mut interner, "a(b(c(x)))").unwrap();
        assert!(is_pruned_copy(&master, &yes));
        assert!(!is_pruned_copy(&master, &no), "order must be preserved");
        assert!(!is_pruned_copy(&master, &deeper));
    }

    #[test]
    #[should_panic(expected = "minimum derived size")]
    fn impossible_minimum_panics() {
        let mut bad = config();
        bad.min_tree_size = 1000;
        generate(&bad);
    }
}
