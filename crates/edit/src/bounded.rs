//! Threshold-aware ("bounded") Zhang–Shasha.
//!
//! [`bounded_zhang_shasha`] answers the *decision-plus-value* question the
//! filter-and-refine cascade actually asks: given a live budget `τ` (the
//! range radius, the current k-th heap distance, a join radius), return the
//! exact distance when it is `≤ τ` and `None` as soon as the distance
//! provably exceeds `τ` — without paying for DP cells the budget already
//! rules out. The pruning ideas follow the bounded-TED line of work
//! (Jin, ICALP 2021; see PAPERS.md): with unit-ish costs a budget `τ`
//! confines the interesting part of each forest-distance table to a band of
//! width `O(τ)` around the diagonal.
//!
//! Three pruning layers, all exact (no false dismissals — see DESIGN §11):
//!
//! 1. **Entry cutoff**: the whole-tree size / height / leaf-count lower
//!    bounds of [`crate::bounds`] are checked before any DP memory is
//!    touched; if any exceeds `τ` the keyroot loop exits at iteration zero.
//! 2. **Subproblem skip**: a keyroot pair `(k1, k2)` only ever *writes*
//!    tree-distance cells for node pairs on its leftmost-leaf chains. If
//!    every such pair is unusable — its global prefix gap
//!    `|lml(k1) − lml(k2)|`, or the minimum global suffix gap over the
//!    subproblem's index rectangle, already exceeds the budget — the whole
//!    forest-distance subproblem is skipped.
//! 3. **Band pruning**: inside a subproblem, a forest pair whose sizes
//!    differ by more than `B = ⌊τ / min_op⌋` costs more than `τ`; only the
//!    `|di − dj| ≤ B` band is computed, and every read outside the band (or
//!    of a tree-distance cell whose size / height / prefix / suffix gap
//!    exceeds `B`) yields the sentinel `τ + 1` instead of touching memory.
//!
//! The key invariant is that every computed cell `c` satisfies
//! `c ≥ min(true, τ + 1)`, with equality `c = true` on every cell a
//! `≤ τ` derivation of the root can reach — so `Some(d)` is always the true
//! distance and `None` is returned iff the true distance exceeds `τ`.

use treesim_tree::Tree;

use crate::cost::{CostModel, UnitCost};
use crate::zhang_shasha::{zhang_shasha, TreeInfo, ZsWorkspace};

/// Work accounting for one [`bounded_zhang_shasha`] call.
///
/// `cells_computed + cells_skipped == cells_full` always holds, where a
/// "cell" is one inner-loop iteration of the classic DP (the unit
/// `refine.zs.nodes` is derived from).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundedStats {
    /// Forest-distance cells actually evaluated.
    pub cells_computed: u64,
    /// Cells the band / subproblem pruning skipped.
    pub cells_skipped: u64,
    /// Whole keyroot subproblems skipped without touching the matrices.
    pub subproblems_skipped: u64,
    /// Cells the unbounded DP would have evaluated for this tree pair.
    pub cells_full: u64,
    /// Whether the call returned `None` (distance proven `> τ`).
    pub cutoff: bool,
}

/// Unit-cost bounded tree edit distance.
///
/// Returns `Some(d)` with the exact Zhang–Shasha distance `d` when
/// `d ≤ tau`, and `None` iff the true distance exceeds `tau`.
///
/// # Examples
///
/// ```
/// use treesim_edit::ted_bounded;
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let t1 = bracket::parse(&mut interner, "a(b(c d) e)").unwrap();
/// let t2 = bracket::parse(&mut interner, "a(b(c x) e)").unwrap();
/// assert_eq!(ted_bounded(&t1, &t2, 5), Some(1));
/// assert_eq!(ted_bounded(&t1, &t2, 0), None);
/// ```
pub fn ted_bounded(t1: &Tree, t2: &Tree, tau: u64) -> Option<u64> {
    let info1 = TreeInfo::new(t1);
    let info2 = TreeInfo::new(t2);
    let mut workspace = ZsWorkspace::new();
    bounded_zhang_shasha(&info1, &info2, &UnitCost, tau, &mut workspace).0
}

/// Bounded Zhang–Shasha over precomputed [`TreeInfo`]s, reusing `workspace`.
///
/// Semantics match [`ted_bounded`] generalized to any [`CostModel`]: the
/// first component is `Some(d)` with the exact distance iff `d ≤ tau`, else
/// `None`; the second reports how much of the DP was actually evaluated.
pub fn bounded_zhang_shasha<C: CostModel>(
    info1: &TreeInfo,
    info2: &TreeInfo,
    cost: &C,
    tau: u64,
    workspace: &mut ZsWorkspace,
) -> (Option<u64>, BoundedStats) {
    let n1 = info1.len();
    let n2 = info2.len();
    let cells_full = full_cells(info1, info2);
    let min_op = cost.min_operation_cost().max(1);
    // Any pair of index sets whose cardinalities differ by more than `band`
    // is more than `tau` apart: gap > band ⇔ gap · min_op > tau.
    let band = tau / min_op;

    let mut stats = BoundedStats {
        cells_full,
        ..BoundedStats::default()
    };

    // Entry cutoff: whole-tree lower bounds, no DP memory touched.
    let size_gap = (n1 as u64).abs_diff(n2 as u64);
    let height_gap = info1.height_at(n1 - 1).abs_diff(info2.height_at(n2 - 1));
    let leaf_gap = (info1.leaf_count() as u64).abs_diff(info2.leaf_count() as u64);
    if size_gap > band || height_gap > band || leaf_gap > band {
        stats.cells_skipped = cells_full;
        stats.cutoff = true;
        return (None, stats);
    }

    // Fast path: the band covers every cell, so the bounded DP degenerates
    // to the classic one; run it without per-cell guard overhead.
    if band >= n1.max(n2) as u64 {
        let d = zhang_shasha(info1, info2, cost, workspace);
        stats.cells_computed = cells_full;
        if d > tau {
            stats.cutoff = true;
            return (None, stats);
        }
        return (Some(d), stats);
    }

    // `inf` is the smallest sentinel that still proves "> tau"; using it
    // (rather than a huge constant) keeps saturating arithmetic exact for
    // any cost scale. Every guarded read substitutes `inf` for the cell.
    let inf = tau.saturating_add(1);
    let b = band as usize; // band < max(n1, n2) here, so this fits.

    let stride = n2 + 1;
    let (td, fd) = workspace.matrices();
    td.clear();
    td.resize((n1 + 1) * stride, inf);
    fd.clear();
    fd.resize((n1 + 1) * stride, inf);

    for &k1 in info1.keyroots() {
        for &k2 in info2.keyroots() {
            let region = info1.subtree_size(k1) as u64 * info2.subtree_size(k2) as u64;
            if skip_subproblem(info1, info2, k1, k2, band) {
                stats.subproblems_skipped += 1;
                stats.cells_skipped += region;
                continue;
            }
            let computed =
                compute_bounded_treedist(info1, info2, k1, k2, cost, td, fd, stride, b, inf);
            stats.cells_computed += computed;
            stats.cells_skipped += region - computed;
        }
    }

    let d = td[n1 * stride + n2];
    if d > tau {
        stats.cutoff = true;
        (None, stats)
    } else {
        (Some(d), stats)
    }
}

/// Cells the unbounded DP evaluates: one per (node-in-keyroot-subtree) pair,
/// which factors into a product of per-tree keyroot subtree-size sums.
fn full_cells(info1: &TreeInfo, info2: &TreeInfo) -> u64 {
    let sum = |info: &TreeInfo| -> u64 {
        info.keyroots()
            .iter()
            .map(|&k| info.subtree_size(k) as u64)
            .sum()
    };
    sum(info1) * sum(info2)
}

/// Whether keyroot subproblem `(k1, k2)` can be skipped entirely.
///
/// The subproblem only writes tree-distance cells `(a, b)` with
/// `lml(a) = lml(k1)`, `lml(b) = lml(k2)` (its leftmost-leaf chains). Any
/// global mapping of cost `≤ τ` that matches such a pair must map the `lml`
/// prefixes onto each other and the postorder suffixes onto each other, so
/// if the prefix gap — or the *minimum* suffix gap over the whole index
/// rectangle — exceeds the band, none of those cells can participate in a
/// `≤ τ` derivation and the guarded reads will never look at them.
fn skip_subproblem(info1: &TreeInfo, info2: &TreeInfo, k1: usize, k2: usize, band: u64) -> bool {
    let l1 = info1.leftmost_leaf(k1);
    let l2 = info2.leftmost_leaf(k2);
    if (l1 as u64).abs_diff(l2 as u64) > band {
        return true;
    }
    // Suffix gap of a cell (a, b) is |(n1 − a) − (n2 − b)| = |D − (a − b)|
    // with D = n1 − n2; over the rectangle, a − b spans [l1 − k2, k1 − l2].
    let d = info1.len() as i64 - info2.len() as i64;
    let lo = l1 as i64 - k2 as i64;
    let hi = k1 as i64 - l2 as i64;
    let min_suffix_gap = if d < lo {
        (lo - d) as u64
    } else if d > hi {
        (d - hi) as u64
    } else {
        0
    };
    min_suffix_gap > band
}

/// Banded version of `compute_treedist` for keyroot pair `(k1, k2)`.
///
/// Returns the number of cells evaluated. All reads are guarded: a read
/// outside the `|di − dj| ≤ band` diagonal band — or of a tree-distance
/// cell whose size / height / prefix / suffix gap exceeds the band — yields
/// `inf` instead of memory, which makes skipped subproblems, pruned rows,
/// and out-of-band stale cells invisible to the recurrence.
#[allow(clippy::too_many_arguments)]
fn compute_bounded_treedist<C: CostModel>(
    info1: &TreeInfo,
    info2: &TreeInfo,
    k1: usize,
    k2: usize,
    cost: &C,
    td: &mut [u64],
    fd: &mut [u64],
    stride: usize,
    band: usize,
    inf: u64,
) -> u64 {
    let n1 = info1.len();
    let n2 = info2.len();
    // 1-based postorder ranges [l1 .. k1+1] × [l2 .. k2+1], as in the
    // classic DP; index 0 is the empty-forest boundary.
    let l1 = info1.leftmost_leaf(k1) + 1;
    let l2 = info2.leftmost_leaf(k2) + 1;
    let i_hi = k1 + 1;
    let j_hi = k2 + 1;
    let at = |i: usize, j: usize| i * stride + j;
    // Band coordinates: di = i − (l1 − 1), dj = j − (l2 − 1) are the left
    // forest sizes; fd(i, j) ≥ |di − dj| · min_op, so outside the band the
    // cell is provably > tau.
    let in_band = |i: usize, j: usize| {
        let di = i - (l1 - 1);
        let dj = j - (l2 - 1);
        di.abs_diff(dj) <= band
    };
    let fd_read = |fd: &[u64], i: usize, j: usize| {
        if in_band(i, j) {
            fd[at(i, j)]
        } else {
            inf
        }
    };
    // Guarded tree-distance read for 1-based node pair (a, b): each gap is
    // a lower bound (scaled by min_op) on either the subtree distance
    // itself (size, height) or on any global mapping that matches a ↔ b
    // (prefix, suffix) — see DESIGN §11.
    let td_read = |td: &[u64], a: usize, b: usize| {
        let (a0, b0) = (a - 1, b - 1);
        let size_gap = (info1.subtree_size(a0) as u64).abs_diff(info2.subtree_size(b0) as u64);
        let height_gap = info1.height_at(a0).abs_diff(info2.height_at(b0));
        let prefix_gap = (info1.leftmost_leaf(a0) as u64).abs_diff(info2.leftmost_leaf(b0) as u64);
        let suffix_gap = ((n1 - a) as u64).abs_diff((n2 - b) as u64);
        let band = band as u64;
        if size_gap > band || height_gap > band || prefix_gap > band || suffix_gap > band {
            inf
        } else {
            td[at(a, b)]
        }
    };

    fd[at(l1 - 1, l2 - 1)] = 0;
    for i in l1..=i_hi {
        if i - (l1 - 1) > band {
            break;
        }
        fd[at(i, l2 - 1)] =
            fd[at(i - 1, l2 - 1)].saturating_add(cost.delete(info1.label_at(i - 1)));
    }
    for j in l2..=j_hi {
        if j - (l2 - 1) > band {
            break;
        }
        fd[at(l1 - 1, j)] =
            fd[at(l1 - 1, j - 1)].saturating_add(cost.insert(info2.label_at(j - 1)));
    }

    let mut computed = 0u64;
    for i in l1..=i_hi {
        let di = i - (l1 - 1);
        // dj must lie in [di − band, di + band]; translate back to j.
        let j_lo = (l2 - 1 + di.saturating_sub(band)).max(l2);
        let j_hi_row = (l2 - 1 + di + band).min(j_hi);
        if j_lo > j_hi_row {
            // di − band already exceeds the widest dj; rows below only
            // drift further from the band.
            break;
        }
        let li = info1.leftmost_leaf(i - 1) + 1;
        let del_cost = cost.delete(info1.label_at(i - 1));
        for j in j_lo..=j_hi_row {
            computed += 1;
            let lj = info2.leftmost_leaf(j - 1) + 1;
            let del = fd_read(fd, i - 1, j).saturating_add(del_cost);
            let ins = fd_read(fd, i, j - 1).saturating_add(cost.insert(info2.label_at(j - 1)));
            if li == l1 && lj == l2 {
                let rel = fd_read(fd, i - 1, j - 1)
                    .saturating_add(cost.relabel(info1.label_at(i - 1), info2.label_at(j - 1)));
                let best = del.min(ins).min(rel);
                fd[at(i, j)] = best;
                td[at(i, j)] = best;
            } else {
                let split = fd_read(fd, li - 1, lj - 1).saturating_add(td_read(td, i, j));
                fd[at(i, j)] = del.min(ins).min(split);
            }
        }
    }
    computed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn parse_pair(a: &str, b: &str) -> (Tree, Tree) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        (t1, t2)
    }

    fn check_all_taus(a: &str, b: &str) {
        let (t1, t2) = parse_pair(a, b);
        let d = edit_distance(&t1, &t2);
        for tau in [0, d.saturating_sub(1), d, d + 1, u64::MAX] {
            let got = ted_bounded(&t1, &t2, tau);
            if tau >= d {
                assert_eq!(got, Some(d), "{a} vs {b} at tau={tau}");
            } else {
                assert_eq!(got, None, "{a} vs {b} at tau={tau}");
            }
        }
    }

    #[test]
    fn matches_unbounded_across_thresholds() {
        check_all_taus("a(b(c d) b e)", "a(b(c d) b e)");
        check_all_taus("a", "b");
        check_all_taus("a(b c)", "a(x(b c))");
        check_all_taus("f(d(a c(b)) e)", "f(c(d(a b)) e)");
        check_all_taus("a(b(c(d(e))))", "e(d(c(b(a))))");
        check_all_taus("a(b c d e f)", "a(b(c(d(e(f)))))");
        check_all_taus("r(a b c)", "r(x(y(z)) a b c)");
    }

    #[test]
    fn deep_chains_and_skew() {
        // Degenerate keyroot structure: left chains have a single keyroot,
        // right chains one keyroot per node.
        check_all_taus("a(a(a(a(a))))", "a(a(a))");
        check_all_taus("a(b a(b a(b)))", "a(b a(b))");
        check_all_taus("a(a(a(a)) b)", "b(a a(a(a)))");
    }

    #[test]
    fn entry_cutoff_skips_all_cells() {
        let (t1, t2) = parse_pair("a(b(c(d(e(f(g))))))", "a");
        let info1 = TreeInfo::new(&t1);
        let info2 = TreeInfo::new(&t2);
        let mut ws = ZsWorkspace::new();
        let (res, stats) = bounded_zhang_shasha(&info1, &info2, &UnitCost, 2, &mut ws);
        assert_eq!(res, None);
        assert!(stats.cutoff);
        assert_eq!(stats.cells_computed, 0);
        assert_eq!(stats.cells_skipped, stats.cells_full);
    }

    #[test]
    fn tight_budget_prunes_cells() {
        let (t1, t2) = parse_pair(
            "r(a(b c d) e(f g h) i(j k l) m(n o p))",
            "r(a(b c d) e(f g h) i(j k l) m(n o q))",
        );
        let info1 = TreeInfo::new(&t1);
        let info2 = TreeInfo::new(&t2);
        let mut ws = ZsWorkspace::new();
        let (res, stats) = bounded_zhang_shasha(&info1, &info2, &UnitCost, 1, &mut ws);
        assert_eq!(res, Some(1));
        assert!(!stats.cutoff);
        assert!(stats.cells_computed < stats.cells_full);
        assert_eq!(stats.cells_computed + stats.cells_skipped, stats.cells_full);
    }

    #[test]
    fn generous_budget_takes_fast_path() {
        let (t1, t2) = parse_pair("a(b c)", "a(b d)");
        let info1 = TreeInfo::new(&t1);
        let info2 = TreeInfo::new(&t2);
        let mut ws = ZsWorkspace::new();
        let (res, stats) = bounded_zhang_shasha(&info1, &info2, &UnitCost, u64::MAX, &mut ws);
        assert_eq!(res, Some(1));
        assert_eq!(stats.cells_computed, stats.cells_full);
        assert_eq!(stats.cells_skipped, 0);
    }

    #[test]
    fn weighted_costs_respect_budget() {
        use crate::cost::WeightedCost;
        let model = WeightedCost {
            relabel: 2,
            delete: 3,
            insert: 5,
        };
        let (t1, t2) = parse_pair("a(b c)", "a(x y(z))");
        let info1 = TreeInfo::new(&t1);
        let info2 = TreeInfo::new(&t2);
        let mut ws = ZsWorkspace::new();
        let full = zhang_shasha(&info1, &info2, &model, &mut ws);
        for tau in [0, full.saturating_sub(1), full, full + 1, u64::MAX] {
            let (res, _) = bounded_zhang_shasha(&info1, &info2, &model, tau, &mut ws);
            if tau >= full {
                assert_eq!(res, Some(full), "tau={tau}");
            } else {
                assert_eq!(res, None, "tau={tau}");
            }
        }
    }

    #[test]
    fn workspace_reuse_is_clean_across_budgets() {
        // A bounded run leaves `inf` sentinels in the matrices; the next
        // run (bounded or not) must not observe them.
        let (t1, t2) = parse_pair("a(b(c d) e)", "x(y z)");
        let info1 = TreeInfo::new(&t1);
        let info2 = TreeInfo::new(&t2);
        let mut ws = ZsWorkspace::new();
        let full = zhang_shasha(&info1, &info2, &UnitCost, &mut ws);
        let (r1, _) = bounded_zhang_shasha(&info1, &info2, &UnitCost, 0, &mut ws);
        assert_eq!(r1, None);
        let (r2, _) = bounded_zhang_shasha(&info1, &info2, &UnitCost, full, &mut ws);
        assert_eq!(r2, Some(full));
        assert_eq!(zhang_shasha(&info1, &info2, &UnitCost, &mut ws), full);
    }
}
