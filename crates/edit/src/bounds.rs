//! Trivial lower and upper bounds on the unit-cost tree edit distance.
//!
//! These bounds cost `O(1)` given precomputed tree metrics and are combined
//! with the binary-branch bounds in the search engine (§4.2 notes
//! `EDist(T1,T2) ≥ ||T1| − |T2||`, which also seeds the positional range
//! search).

use treesim_tree::Tree;

/// `| |T1| − |T2| |` — every unmatched node costs one insert or delete.
pub fn size_lower_bound(t1: &Tree, t2: &Tree) -> u64 {
    (t1.len() as i64 - t2.len() as i64).unsigned_abs()
}

/// `| height(T1) − height(T2) |` — one edit operation changes the height of
/// a tree by at most 1 (deletion splices children one level up; insertion
/// pushes a consecutive run one level down; relabeling changes nothing).
pub fn height_lower_bound(t1: &Tree, t2: &Tree) -> u64 {
    (t1.height() as i64 - t2.height() as i64).unsigned_abs()
}

/// `| leaves(T1) − leaves(T2) |` — one edit operation changes the number of
/// leaves by at most 1: deleting a leaf may promote its parent to a leaf
/// (net 0) or removes one leaf; deleting an inner node keeps the leaf set;
/// inserting symmetrically; relabeling changes nothing.
pub fn leaf_lower_bound(t1: &Tree, t2: &Tree) -> u64 {
    (t1.leaf_count() as i64 - t2.leaf_count() as i64).unsigned_abs()
}

/// An upper bound: delete every non-root node of `T1`, relabel the root,
/// insert every non-root node of `T2`.
pub fn trivial_upper_bound(t1: &Tree, t2: &Tree) -> u64 {
    let relabel = u64::from(t1.label(t1.root()) != t2.label(t2.root()));
    (t1.len() as u64 - 1) + (t2.len() as u64 - 1) + relabel
}

/// The maximum of all O(1) lower bounds.
pub fn combined_lower_bound(t1: &Tree, t2: &Tree) -> u64 {
    size_lower_bound(t1, t2)
        .max(height_lower_bound(t1, t2))
        .max(leaf_lower_bound(t1, t2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn pair(a: &str, b: &str) -> (Tree, Tree) {
        let mut interner = LabelInterner::new();
        (
            bracket::parse(&mut interner, a).unwrap(),
            bracket::parse(&mut interner, b).unwrap(),
        )
    }

    #[test]
    fn bounds_sandwich_the_distance() {
        let cases = [
            ("a(b(c d) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a(b c d)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b(c) d(e f) g)", "a(b)"),
        ];
        for (x, y) in cases {
            let (t1, t2) = pair(x, y);
            let d = edit_distance(&t1, &t2);
            assert!(combined_lower_bound(&t1, &t2) <= d, "LB broke on {x} {y}");
            assert!(trivial_upper_bound(&t1, &t2) >= d, "UB broke on {x} {y}");
        }
    }

    #[test]
    fn size_bound_value() {
        let (t1, t2) = pair("a(b c d)", "a");
        assert_eq!(size_lower_bound(&t1, &t2), 3);
        assert_eq!(size_lower_bound(&t2, &t1), 3);
    }

    #[test]
    fn height_bound_value() {
        let (t1, t2) = pair("a(b(c(d)))", "a(x y z)");
        assert_eq!(height_lower_bound(&t1, &t2), 2);
    }

    #[test]
    fn leaf_bound_value() {
        let (t1, t2) = pair("a(b c d)", "a(b)");
        assert_eq!(leaf_lower_bound(&t1, &t2), 2);
    }

    #[test]
    fn identical_trees_have_zero_bounds() {
        let (t1, t2) = pair("a(b c)", "a(b c)");
        assert_eq!(combined_lower_bound(&t1, &t2), 0);
        assert_eq!(trivial_upper_bound(&t1, &t2), 4);
    }
}
