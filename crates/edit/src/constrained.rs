//! Zhang's constrained edit distance (reference \[22\] of the paper).
//!
//! The constrained model restricts mappings so that *disjoint subtrees map
//! to disjoint subtrees* — the intuition the paper quotes from Zhang 1995.
//! Every constrained mapping is a valid general mapping, so the constrained
//! distance upper-bounds the Zhang–Shasha distance while being computable
//! in `O(|T1|·|T2|)` (each forest subproblem is a children-sequence
//! alignment rather than a full forest DP).
//!
//! Recurrences (γ = cost model, `F(t)` = children forest of `t`):
//!
//! ```text
//! Dt(t1, t2) = min { Dt(∅,t2) + min_j  [Dt(t1, t2ⱼ) − Dt(∅, t2ⱼ)],
//!                    Dt(t1,∅) + min_i  [Dt(t1ᵢ, t2) − Dt(t1ᵢ, ∅)],
//!                    γ(u→v) + Df(F(t1), F(t2)) }
//! Df(F1, F2) = min { Df(∅,F2) + min_j  [Df(F1, F(t2ⱼ)) − Df(∅, F(t2ⱼ))],
//!                    Df(F1,∅) + min_i  [Df(F(t1ᵢ), F2) − Df(F(t1ᵢ), ∅)],
//!                    align(F1, F2)  (sequence alignment with Dt costs) }
//! ```

use treesim_tree::{NodeId, Tree};

use crate::cost::{CostModel, UnitCost};

/// Unit-cost constrained edit distance.
pub fn constrained_distance(t1: &Tree, t2: &Tree) -> u64 {
    constrained_distance_with(t1, t2, &UnitCost)
}

/// Constrained edit distance under an arbitrary cost model.
pub fn constrained_distance_with<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> u64 {
    Solver::new(t1, t2, cost).solve()
}

struct Solver<'a, C: CostModel> {
    t1: &'a Tree,
    t2: &'a Tree,
    cost: &'a C,
    /// Nodes of each tree in postorder with a dense index.
    post1: Vec<NodeId>,
    post2: Vec<NodeId>,
    index1: Vec<usize>,
    index2: Vec<usize>,
    /// Cost of deleting / inserting whole subtrees and children forests.
    del_tree: Vec<u64>,
    ins_tree: Vec<u64>,
    /// Dt and Df tables, (n1 × n2), postorder-indexed.
    dt: Vec<u64>,
    df: Vec<u64>,
}

impl<'a, C: CostModel> Solver<'a, C> {
    fn new(t1: &'a Tree, t2: &'a Tree, cost: &'a C) -> Self {
        let post1: Vec<NodeId> = t1.postorder().collect();
        let post2: Vec<NodeId> = t2.postorder().collect();
        let mut index1 = vec![0usize; t1.arena_len()];
        for (i, n) in post1.iter().enumerate() {
            index1[n.index()] = i;
        }
        let mut index2 = vec![0usize; t2.arena_len()];
        for (j, n) in post2.iter().enumerate() {
            index2[n.index()] = j;
        }
        let mut del_tree = vec![0u64; t1.arena_len()];
        for &n in &post1 {
            del_tree[n.index()] =
                cost.delete(t1.label(n)) + t1.children(n).map(|c| del_tree[c.index()]).sum::<u64>();
        }
        let mut ins_tree = vec![0u64; t2.arena_len()];
        for &n in &post2 {
            ins_tree[n.index()] =
                cost.insert(t2.label(n)) + t2.children(n).map(|c| ins_tree[c.index()]).sum::<u64>();
        }
        let n1 = post1.len();
        let n2 = post2.len();
        Solver {
            t1,
            t2,
            cost,
            post1,
            post2,
            index1,
            index2,
            del_tree,
            ins_tree,
            dt: vec![0; n1 * n2],
            df: vec![0; n1 * n2],
        }
    }

    fn del_forest(&self, u: NodeId) -> u64 {
        self.del_tree[u.index()] - self.cost.delete(self.t1.label(u))
    }

    fn ins_forest(&self, v: NodeId) -> u64 {
        self.ins_tree[v.index()] - self.cost.insert(self.t2.label(v))
    }

    fn solve(mut self) -> u64 {
        let n2 = self.post2.len();
        for i in 0..self.post1.len() {
            let u = self.post1[i];
            for j in 0..n2 {
                let v = self.post2[j];
                let (df, dt) = self.compute_pair(u, v);
                self.df[i * n2 + j] = df;
                self.dt[i * n2 + j] = dt;
            }
        }
        self.dt[(self.post1.len() - 1) * n2 + (n2 - 1)]
    }

    #[inline]
    fn dt_at(&self, u: NodeId, v: NodeId) -> u64 {
        self.dt[self.index1[u.index()] * self.post2.len() + self.index2[v.index()]]
    }

    #[inline]
    fn df_at(&self, u: NodeId, v: NodeId) -> u64 {
        self.df[self.index1[u.index()] * self.post2.len() + self.index2[v.index()]]
    }

    /// Computes `(Df(F(u), F(v)), Dt(u, v))`; children are postorder-before
    /// their parents, so their entries are already available.
    fn compute_pair(&self, u: NodeId, v: NodeId) -> (u64, u64) {
        let children1: Vec<NodeId> = self.t1.children(u).collect();
        let children2: Vec<NodeId> = self.t2.children(v).collect();

        // ── Df(F(u), F(v)) ───────────────────────────────────────────────
        let del_all = self.del_forest(u);
        let ins_all = self.ins_forest(v);
        let mut df = self.align_forests(&children1, &children2);
        // F(u) maps entirely inside the children forest of one t2ⱼ.
        for &t2j in &children2 {
            let candidate = ins_all - self.ins_forest(t2j) + self.df_at(u, t2j);
            df = df.min(candidate);
        }
        // Symmetric case.
        for &t1i in &children1 {
            let candidate = del_all - self.del_forest(t1i) + self.df_at(t1i, v);
            df = df.min(candidate);
        }

        // ── Dt(u, v) ─────────────────────────────────────────────────────
        let mut dt = self.cost.relabel(self.t1.label(u), self.t2.label(v)) + df;
        // t1 maps inside one subtree t2ⱼ (v and the rest inserted).
        for &t2j in &children2 {
            let candidate =
                self.ins_tree[v.index()] - self.ins_tree[t2j.index()] + self.dt_at(u, t2j);
            dt = dt.min(candidate);
        }
        for &t1i in &children1 {
            let candidate =
                self.del_tree[u.index()] - self.del_tree[t1i.index()] + self.dt_at(t1i, v);
            dt = dt.min(candidate);
        }
        (df, dt)
    }

    /// Sequence alignment of two child-subtree sequences with `Dt`
    /// substitution costs and whole-subtree gap costs.
    fn align_forests(&self, f1: &[NodeId], f2: &[NodeId]) -> u64 {
        let rows = f1.len() + 1;
        let cols = f2.len() + 1;
        let mut dp = vec![0u64; rows * cols];
        let at = |i: usize, j: usize| i * cols + j;
        for i in 1..rows {
            dp[at(i, 0)] = dp[at(i - 1, 0)] + self.del_tree[f1[i - 1].index()];
        }
        for j in 1..cols {
            dp[at(0, j)] = dp[at(0, j - 1)] + self.ins_tree[f2[j - 1].index()];
        }
        for i in 1..rows {
            for j in 1..cols {
                let substitute = dp[at(i - 1, j - 1)] + self.dt_at(f1[i - 1], f2[j - 1]);
                let delete = dp[at(i - 1, j)] + self.del_tree[f1[i - 1].index()];
                let insert = dp[at(i, j - 1)] + self.ins_tree[f2[j - 1].index()];
                dp[at(i, j)] = substitute.min(delete).min(insert);
            }
        }
        dp[at(rows - 1, cols - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn both(a: &str, b: &str) -> (u64, u64) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        (constrained_distance(&t1, &t2), edit_distance(&t1, &t2))
    }

    #[test]
    fn identical_trees_zero() {
        let (constrained, _) = both("a(b(c d) e)", "a(b(c d) e)");
        assert_eq!(constrained, 0);
    }

    #[test]
    fn simple_operations_match_general_distance() {
        for (x, y, expected) in [
            ("a", "b", 1),
            ("a(b c)", "a(b z)", 1),
            ("a(b)", "a(b c)", 1),
            ("a(b(c(d)) b e)", "a(c(d) b e)", 1),
        ] {
            let (constrained, zs) = both(x, y);
            assert_eq!(zs, expected);
            assert_eq!(constrained, expected, "{x} vs {y}");
        }
    }

    #[test]
    fn upper_bounds_zhang_shasha() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a(b c d)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b c d e)", "a(e d c b)"),
            ("a(b(x y) c(z))", "a(c(z) b(x y))"),
        ];
        for (x, y) in cases {
            let (constrained, zs) = both(x, y);
            assert!(
                constrained >= zs,
                "constrained {constrained} < zs {zs} on {x} vs {y}"
            );
        }
    }

    #[test]
    fn strictly_larger_when_splits_are_needed() {
        // The classic case where the general mapping splits a subtree
        // across two subtrees — forbidden in the constrained model.
        let (constrained, zs) = both("f(d(a c(b)) e)", "f(c(d(a b)) e)");
        assert_eq!(zs, 2);
        assert!(constrained >= zs);
    }

    #[test]
    fn symmetric_under_unit_costs() {
        for (x, y) in [
            ("a(b(c))", "a(b c)"),
            ("a(b c)", "d(e)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
        ] {
            let (xy, _) = both(x, y);
            let (yx, _) = both(y, x);
            assert_eq!(xy, yx, "{x} / {y}");
        }
    }

    #[test]
    fn maps_into_single_subtree() {
        // t1 equals a subtree of t2: distance = insertions of the rest.
        let (constrained, zs) = both("b(c d)", "a(b(c d) e)");
        assert_eq!(zs, 2); // insert a … wait: insert root a and e
        assert_eq!(constrained, 2);
    }

    #[test]
    fn selkow_upper_bounds_constrained() {
        // Hierarchy: ZS ≤ constrained ≤ Selkow (mapping classes shrink).
        use crate::selkow::selkow_distance;
        let mut interner = LabelInterner::new();
        for (x, y) in [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b(c d))", "a(c d)"),
            ("a(b c d e)", "a(e d c b)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
        ] {
            let t1 = bracket::parse(&mut interner, x).unwrap();
            let t2 = bracket::parse(&mut interner, y).unwrap();
            let zs = edit_distance(&t1, &t2);
            let constrained = constrained_distance(&t1, &t2);
            let selkow = selkow_distance(&t1, &t2);
            assert!(
                zs <= constrained && constrained <= selkow,
                "{x} vs {y}: zs={zs} c={constrained} s={selkow}"
            );
        }
    }
}
