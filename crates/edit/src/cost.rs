//! Edit-operation cost models.
//!
//! The paper adopts the **unit cost** tree edit distance (every operation
//! costs 1) but notes the approach extends to general costs as long as each
//! operation's cost is bounded below. [`CostModel`] captures the general
//! form; [`UnitCost`] is the model used throughout the reproduction.

use treesim_tree::LabelId;

/// Costs of the three Zhang–Shasha edit operations.
///
/// Implementations must satisfy `relabel(a, a) == 0` for the distance to be
/// reflexive, and should be symmetric (`relabel(a, b) == relabel(b, a)`,
/// `insert(l) == delete(l)`) for it to be a metric.
pub trait CostModel {
    /// Cost of changing a node's label from `from` to `to`.
    fn relabel(&self, from: LabelId, to: LabelId) -> u64;
    /// Cost of deleting a node labeled `label`.
    fn delete(&self, label: LabelId) -> u64;
    /// Cost of inserting a node labeled `label`.
    fn insert(&self, label: LabelId) -> u64;

    /// A lower bound on the cost of any single edit operation; used to scale
    /// binary-branch lower bounds to general cost models (§2.1 of the
    /// paper). Must be ≥ the infimum over all operations with nonzero cost.
    fn min_operation_cost(&self) -> u64 {
        1
    }
}

/// The unit-cost model: every operation costs 1; relabeling to the same
/// label costs 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl CostModel for UnitCost {
    #[inline]
    fn relabel(&self, from: LabelId, to: LabelId) -> u64 {
        u64::from(from != to)
    }

    #[inline]
    fn delete(&self, _label: LabelId) -> u64 {
        1
    }

    #[inline]
    fn insert(&self, _label: LabelId) -> u64 {
        1
    }
}

/// A uniform weighted model: fixed per-operation costs independent of the
/// labels involved (relabeling identical labels still costs 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedCost {
    /// Cost of a label change.
    pub relabel: u64,
    /// Cost of a deletion.
    pub delete: u64,
    /// Cost of an insertion.
    pub insert: u64,
}

impl CostModel for WeightedCost {
    #[inline]
    fn relabel(&self, from: LabelId, to: LabelId) -> u64 {
        if from == to {
            0
        } else {
            self.relabel
        }
    }

    #[inline]
    fn delete(&self, _label: LabelId) -> u64 {
        self.delete
    }

    #[inline]
    fn insert(&self, _label: LabelId) -> u64 {
        self.insert
    }

    fn min_operation_cost(&self) -> u64 {
        self.relabel.min(self.delete).min(self.insert).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_is_unit() {
        let a = LabelId::from_u32(1);
        let b = LabelId::from_u32(2);
        assert_eq!(UnitCost.relabel(a, a), 0);
        assert_eq!(UnitCost.relabel(a, b), 1);
        assert_eq!(UnitCost.delete(a), 1);
        assert_eq!(UnitCost.insert(b), 1);
        assert_eq!(UnitCost.min_operation_cost(), 1);
    }

    #[test]
    fn weighted_cost_applies_weights() {
        let model = WeightedCost {
            relabel: 2,
            delete: 3,
            insert: 5,
        };
        let a = LabelId::from_u32(1);
        let b = LabelId::from_u32(2);
        assert_eq!(model.relabel(a, a), 0);
        assert_eq!(model.relabel(a, b), 2);
        assert_eq!(model.delete(a), 3);
        assert_eq!(model.insert(a), 5);
        assert_eq!(model.min_operation_cost(), 2);
    }
}
