//! Tree edit distance — the "real" similarity measure that the binary
//! branch embedding of `treesim-core` lower-bounds.
//!
//! * [`zhang_shasha`](mod@zhang_shasha): the classic Zhang–Shasha dynamic program
//!   (reference \[23\] of the paper) with reusable per-tree precomputation
//!   ([`TreeInfo`]) and scratch space ([`ZsWorkspace`]);
//! * [`bounded`]: threshold-aware Zhang–Shasha ([`ted_bounded`]) that stops
//!   paying for DP cells once a live budget `τ` rules them out;
//! * [`cost`]: pluggable edit-operation cost models ([`UnitCost`] is the
//!   paper's setting);
//! * [`bounds`]: O(1) lower/upper bounds used to cheapen filtering further;
//! * [`naive`]: a slow independent oracle used by the test suites.
//!
//! # Example
//!
//! ```
//! use treesim_edit::edit_distance;
//! use treesim_tree::{parse::bracket, LabelInterner};
//!
//! let mut interner = LabelInterner::new();
//! let t1 = bracket::parse(&mut interner, "article(author title year)").unwrap();
//! let t2 = bracket::parse(&mut interner, "article(author author title)").unwrap();
//! assert_eq!(edit_distance(&t1, &t2), 2);
//! ```

#![warn(missing_docs)]

pub mod bounded;
pub mod bounds;
pub mod constrained;
pub mod cost;
pub mod mapping;
pub mod naive;
pub mod script;
pub mod selkow;
pub mod zhang_shasha;

pub use bounded::{bounded_zhang_shasha, ted_bounded, BoundedStats};
pub use constrained::{constrained_distance, constrained_distance_with};
pub use cost::{CostModel, UnitCost, WeightedCost};
pub use mapping::{edit_mapping, EditMapping};
pub use script::{apply_mapping, diff, AppliedScript, ScriptOp};
pub use selkow::{selkow_distance, selkow_distance_with};
pub use zhang_shasha::{edit_distance, edit_distance_with, zhang_shasha, TreeInfo, ZsWorkspace};
