//! Edit-mapping recovery: not just the distance, but *which* nodes map to
//! which (§2.1 of the paper describes the mapping view of edit scripts).
//!
//! The paper only needs distances; mapping recovery is provided as an
//! extension for downstream applications (diffing, version management).
//! The algorithm re-runs the Zhang–Shasha forest DP on the subproblems the
//! optimal solution touches and backtracks, which costs no more than the
//! original distance computation.

use treesim_tree::{NodeId, Tree};

use crate::cost::CostModel;
use crate::zhang_shasha::{zhang_shasha, TreeInfo, ZsWorkspace};

/// An optimal edit mapping between two trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditMapping {
    /// Matched node pairs `(u ∈ T1, v ∈ T2)`; a pair with differing labels
    /// is a relabel operation.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Nodes of `T1` with no counterpart (deleted).
    pub deleted: Vec<NodeId>,
    /// Nodes of `T2` with no counterpart (inserted).
    pub inserted: Vec<NodeId>,
    /// Total cost of the mapping (= the edit distance).
    pub cost: u64,
}

impl EditMapping {
    /// Number of relabel operations implied by the mapping.
    pub fn relabel_count(&self, t1: &Tree, t2: &Tree) -> usize {
        self.pairs
            .iter()
            .filter(|&&(u, v)| t1.label(u) != t2.label(v))
            .count()
    }
}

/// Computes an optimal edit mapping under `cost`.
pub fn edit_mapping<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> EditMapping {
    let info1 = TreeInfo::new(t1);
    let info2 = TreeInfo::new(t2);
    let mut workspace = ZsWorkspace::new();
    let distance = zhang_shasha(&info1, &info2, cost, &mut workspace);
    // The full run leaves treedist[i][j] populated for every node pair.
    let treedist = workspace.treedist_snapshot();

    let n1 = info1.len();
    let n2 = info2.len();
    let stride = n2 + 1;
    let at = |i: usize, j: usize| i * stride + j;

    let mut matched: Vec<(usize, usize)> = Vec::new();
    // Stack of *tree* subproblems, in 1-based postorder indices.
    let mut stack = vec![(n1, n2)];
    let mut fd = vec![0u64; (n1 + 1) * stride];

    while let Some((root1, root2)) = stack.pop() {
        // Recompute the forest DP for the subproblem anchored at
        // (root1, root2), exactly as compute_treedist does.
        let l1 = info1.leftmost_leaf(root1 - 1) + 1;
        let l2 = info2.leftmost_leaf(root2 - 1) + 1;
        fd[at(l1 - 1, l2 - 1)] = 0;
        for i in l1..=root1 {
            fd[at(i, l2 - 1)] = fd[at(i - 1, l2 - 1)] + cost.delete(info1.label_at(i - 1));
        }
        for j in l2..=root2 {
            fd[at(l1 - 1, j)] = fd[at(l1 - 1, j - 1)] + cost.insert(info2.label_at(j - 1));
        }
        for i in l1..=root1 {
            let li = info1.leftmost_leaf(i - 1) + 1;
            for j in l2..=root2 {
                let lj = info2.leftmost_leaf(j - 1) + 1;
                let del = fd[at(i - 1, j)] + cost.delete(info1.label_at(i - 1));
                let ins = fd[at(i, j - 1)] + cost.insert(info2.label_at(j - 1));
                if li == l1 && lj == l2 {
                    let rel = fd[at(i - 1, j - 1)]
                        + cost.relabel(info1.label_at(i - 1), info2.label_at(j - 1));
                    fd[at(i, j)] = del.min(ins).min(rel);
                } else {
                    let split = fd[at(li - 1, lj - 1)] + treedist[at(i, j)];
                    fd[at(i, j)] = del.min(ins).min(split);
                }
            }
        }

        // Backtrack from (root1, root2) down to the empty boundary.
        let (mut i, mut j) = (root1, root2);
        while i >= l1 || j >= l2 {
            if i >= l1 && fd[at(i, j)] == fd[at(i - 1, j)] + cost.delete(info1.label_at(i - 1)) {
                i -= 1; // node i deleted
                continue;
            }
            if j >= l2 && fd[at(i, j)] == fd[at(i, j - 1)] + cost.insert(info2.label_at(j - 1)) {
                j -= 1; // node j inserted
                continue;
            }
            debug_assert!(i >= l1 && j >= l2, "backtrack fell off the table");
            let li = info1.leftmost_leaf(i - 1) + 1;
            let lj = info2.leftmost_leaf(j - 1) + 1;
            if li == l1 && lj == l2 {
                // Matched roots of whole-prefix subtrees: relabel step.
                matched.push((i, j));
                i -= 1;
                j -= 1;
            } else {
                // Split: the pair of subtrees (i, j) is solved recursively.
                stack.push((i, j));
                i = li - 1;
                j = lj - 1;
            }
        }
    }

    let mapped1: std::collections::HashSet<usize> = matched.iter().map(|&(i, _)| i).collect();
    let mapped2: std::collections::HashSet<usize> = matched.iter().map(|&(_, j)| j).collect();
    EditMapping {
        pairs: matched
            .iter()
            .map(|&(i, j)| (info1.node_at(i - 1), info2.node_at(j - 1)))
            .collect(),
        deleted: (1..=n1)
            .filter(|i| !mapped1.contains(i))
            .map(|i| info1.node_at(i - 1))
            .collect(),
        inserted: (1..=n2)
            .filter(|j| !mapped2.contains(j))
            .map(|j| info2.node_at(j - 1))
            .collect(),
        cost: distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner, Positions};

    fn mapping_for(a: &str, b: &str) -> (EditMapping, Tree, Tree) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        let mapping = edit_mapping(&t1, &t2, &UnitCost);
        (mapping, t1, t2)
    }

    fn assert_valid(mapping: &EditMapping, t1: &Tree, t2: &Tree) {
        // Cost equals the edit distance.
        assert_eq!(mapping.cost, edit_distance(t1, t2));
        // Cost decomposes into the mapping's operations (unit model).
        let relabels = mapping.relabel_count(t1, t2) as u64;
        assert_eq!(
            mapping.cost,
            relabels + mapping.deleted.len() as u64 + mapping.inserted.len() as u64
        );
        // One-to-one.
        let mut seen1 = std::collections::HashSet::new();
        let mut seen2 = std::collections::HashSet::new();
        for &(u, v) in &mapping.pairs {
            assert!(seen1.insert(u));
            assert!(seen2.insert(v));
        }
        // Coverage: every node is mapped, deleted or inserted exactly once.
        assert_eq!(mapping.pairs.len() + mapping.deleted.len(), t1.len());
        assert_eq!(mapping.pairs.len() + mapping.inserted.len(), t2.len());
        // Order preservation: ancestor and sibling (pre/post) orders.
        let p1: Positions = t1.positions();
        let p2: Positions = t2.positions();
        for &(u1, v1) in &mapping.pairs {
            for &(u2, v2) in &mapping.pairs {
                assert_eq!(
                    p1.pre(u1) < p1.pre(u2),
                    p2.pre(v1) < p2.pre(v2),
                    "preorder violated"
                );
                assert_eq!(
                    p1.post(u1) < p1.post(u2),
                    p2.post(v1) < p2.post(v2),
                    "postorder violated"
                );
            }
        }
    }

    #[test]
    fn identity_mapping() {
        let (mapping, t1, t2) = mapping_for("a(b(c d) e)", "a(b(c d) e)");
        assert_eq!(mapping.cost, 0);
        assert_eq!(mapping.pairs.len(), 5);
        assert!(mapping.deleted.is_empty());
        assert!(mapping.inserted.is_empty());
        assert_valid(&mapping, &t1, &t2);
    }

    #[test]
    fn single_deletion() {
        let (mapping, t1, t2) = mapping_for("a(b(c(d)) b e)", "a(c(d) b e)");
        assert_eq!(mapping.cost, 1);
        assert_eq!(mapping.deleted.len(), 1);
        assert!(mapping.inserted.is_empty());
        let deleted = mapping.deleted[0];
        assert_eq!(
            t1.label(deleted),
            t1.label(t1.first_child(t1.root()).unwrap())
        );
        assert_valid(&mapping, &t1, &t2);
    }

    #[test]
    fn single_relabel() {
        let (mapping, t1, t2) = mapping_for("a(b c)", "a(b z)");
        assert_eq!(mapping.cost, 1);
        assert_eq!(mapping.relabel_count(&t1, &t2), 1);
        assert_valid(&mapping, &t1, &t2);
    }

    #[test]
    fn classic_example_mapping() {
        let (mapping, t1, t2) = mapping_for("f(d(a c(b)) e)", "f(c(d(a b)) e)");
        assert_eq!(mapping.cost, 2);
        assert_valid(&mapping, &t1, &t2);
    }

    #[test]
    fn disjoint_trees() {
        let (mapping, t1, t2) = mapping_for("a(b c)", "x(y z)");
        assert_eq!(mapping.cost, 3);
        assert_valid(&mapping, &t1, &t2);
    }

    #[test]
    fn asymmetric_sizes() {
        for (a, b) in [
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a"),
            ("a(b c d e)", "a(c)"),
            ("a(b(c(d)))", "a(b c d)"),
        ] {
            let (mapping, t1, t2) = mapping_for(a, b);
            assert_valid(&mapping, &t1, &t2);
        }
    }

    #[test]
    fn random_pairs_are_valid() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut interner = LabelInterner::new();
        let labels: Vec<_> = (0..4).map(|i| interner.intern(&format!("l{i}"))).collect();
        let mut rng = StdRng::seed_from_u64(77);
        for seed in 0..30u32 {
            let base = bracket::parse(&mut interner, "l0(l1(l2 l3) l1 l2(l3))").unwrap();
            let (mutated, _) = treesim_datagen::mutate::apply_random_ops(
                &base,
                (seed % 5) as usize,
                &labels,
                &mut rng,
            );
            let mapping = edit_mapping(&base, &mutated, &UnitCost);
            assert_valid(&mapping, &base, &mutated);
        }
    }
}
