//! A direct memoized implementation of the forest edit distance recurrence.
//!
//! Independent of the keyroot-optimized Zhang–Shasha code in
//! [`crate::zhang_shasha`](mod@crate::zhang_shasha); used as a cross-checking oracle in tests. Do not
//! use it on large trees — its memo table is keyed by subforest node lists.

use std::collections::HashMap;

use treesim_tree::{NodeId, Tree};

use crate::cost::CostModel;

/// Exact tree edit distance via the textbook forest recurrence.
///
/// Intended for trees of at most a few dozen nodes (tests only).
pub fn naive_edit_distance<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> u64 {
    let mut memo = HashMap::new();
    forest_distance(t1, t2, &[t1.root()], &[t2.root()], cost, &mut memo)
}

type Memo = HashMap<(Vec<NodeId>, Vec<NodeId>), u64>;

/// Distance between the forest of subtrees rooted at `f1` (in `t1`) and the
/// forest rooted at `f2` (in `t2`), decomposing on the rightmost roots.
fn forest_distance<C: CostModel>(
    t1: &Tree,
    t2: &Tree,
    f1: &[NodeId],
    f2: &[NodeId],
    cost: &C,
    memo: &mut Memo,
) -> u64 {
    if f1.is_empty() {
        return f2
            .iter()
            .map(|&n| subtree_cost(t2, n, |l| cost.insert(l)))
            .sum();
    }
    if f2.is_empty() {
        return f1
            .iter()
            .map(|&n| subtree_cost(t1, n, |l| cost.delete(l)))
            .sum();
    }
    let key = (f1.to_vec(), f2.to_vec());
    if let Some(&hit) = memo.get(&key) {
        return hit;
    }

    let (Some((&v, rest1)), Some((&w, rest2))) = (f1.split_last(), f2.split_last()) else {
        unreachable!("both forests checked nonempty above");
    };

    // Option 1: delete v — its children join the forest in its place.
    let mut f1_minus_v: Vec<NodeId> = rest1.to_vec();
    f1_minus_v.extend(t1.children(v));
    let delete = forest_distance(t1, t2, &f1_minus_v, f2, cost, memo) + cost.delete(t1.label(v));

    // Option 2: insert w.
    let mut f2_minus_w: Vec<NodeId> = rest2.to_vec();
    f2_minus_w.extend(t2.children(w));
    let insert = forest_distance(t1, t2, f1, &f2_minus_w, cost, memo) + cost.insert(t2.label(w));

    // Option 3: match v with w — the rest-forests and the child-forests are
    // solved independently.
    let children1: Vec<NodeId> = t1.children(v).collect();
    let children2: Vec<NodeId> = t2.children(w).collect();
    let matched = forest_distance(t1, t2, rest1, rest2, cost, memo)
        + forest_distance(t1, t2, &children1, &children2, cost, memo)
        + cost.relabel(t1.label(v), t2.label(w));

    let best = delete.min(insert).min(matched);
    memo.insert(key, best);
    best
}

fn subtree_cost<F: Fn(treesim_tree::LabelId) -> u64>(
    tree: &Tree,
    root: NodeId,
    per_node: F,
) -> u64 {
    tree.preorder_from(root)
        .map(|n| per_node(tree.label(n)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn both(a: &str, b: &str) -> (u64, u64) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        (
            edit_distance(&t1, &t2),
            naive_edit_distance(&t1, &t2, &UnitCost),
        )
    }

    #[test]
    fn agrees_with_zhang_shasha_on_known_cases() {
        for (a, b) in [
            ("a", "a"),
            ("a", "b"),
            ("a(b c)", "a(b d)"),
            ("a(b(c d) b e)", "a(c(d) b e)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b(c(d)))", "a(b c d)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b c)", "a(c b)"),
            ("a(a(a a) a)", "a(a a(a a))"),
        ] {
            let (zs, naive) = both(a, b);
            assert_eq!(zs, naive, "mismatch on {a} vs {b}");
        }
    }

    #[test]
    fn chain_vs_star_is_four() {
        // See the discussion in the Zhang–Shasha tests: no mapping can match
        // more than {a, one-of-b/c/d}, so the distance is 4.
        let (zs, naive) = both("a(b(c(d)))", "a(b c d)");
        assert_eq!(naive, 4);
        assert_eq!(zs, 4);
    }
}
