//! Edit scripts: turning an optimal [`EditMapping`] into an executable
//! sequence of edit operations, and applying it.
//!
//! This closes the loop on §2.1 of the paper: a mapping *is* a compact
//! representation of an edit script. The derivation follows the classic
//! decomposition — relabel every mapped node whose labels differ, delete
//! the unmapped source nodes, then insert the unmapped target nodes in
//! preorder, each adopting the consecutive run of its (already present)
//! children — and the test suite verifies that applying the script to `T1`
//! reproduces `T2` exactly, with exactly `EDist(T1, T2)` operations.

use std::collections::HashMap;

use treesim_tree::{LabelId, NodeId, Positions, Tree};

use crate::cost::CostModel;
use crate::mapping::{edit_mapping, EditMapping};

/// One executable edit operation, in terms of the *evolving working copy*
/// (a super-rooted clone of the source tree; see [`apply_mapping`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptOp {
    /// Change the label of a (source) node.
    Relabel {
        /// The node in the evolving source tree.
        node: NodeId,
        /// Its new label.
        label: LabelId,
    },
    /// Delete a (source) node, splicing its children into its place.
    Delete {
        /// The node in the evolving source tree.
        node: NodeId,
    },
    /// Insert a new node under `parent`, adopting `count` consecutive
    /// children starting at position `start`.
    Insert {
        /// Parent in the evolving source tree.
        parent: NodeId,
        /// Label of the new node.
        label: LabelId,
        /// First adopted child position.
        start: usize,
        /// Number of adopted children.
        count: usize,
    },
}

/// The result of applying a mapping: the transformed tree and the concrete
/// operations performed.
#[derive(Debug, Clone)]
pub struct AppliedScript {
    /// The transformed tree (structurally equal to the target).
    pub result: Tree,
    /// The operations, in application order.
    pub ops: Vec<ScriptOp>,
}

/// Derives and applies the edit script of `mapping` to (a working copy of)
/// `t1`.
///
/// The Zhang–Shasha mapping may leave either tree's *root* unmapped (the
/// model is really about forests), so the working copy is wrapped under a
/// synthetic `ε`-labeled super-root: every real node then has a parent and
/// root insertion/deletion become ordinary operations. Reported ops
/// reference nodes of that working copy.
///
/// # Panics
///
/// Panics if `mapping` is not a valid mapping between `t1` and `t2`
/// (as produced by [`edit_mapping`]); this indicates a bug, not bad input.
pub fn apply_mapping(t1: &Tree, t2: &Tree, mapping: &EditMapping) -> AppliedScript {
    // Wrap both trees under ε super-roots; translate node ids.
    let (mut work, into_work) = wrapped_copy(t1);
    let (target, into_target) = wrapped_copy(t2);
    let mut ops = Vec::with_capacity(mapping.cost as usize);

    // counterpart[v in wrapped T2] = node in the evolving working copy.
    let mut counterpart: HashMap<NodeId, NodeId> = HashMap::new();
    counterpart.insert(target.root(), work.root());

    // 1. Relabels.
    for &(u, v) in &mapping.pairs {
        let u = into_work[u.index()];
        let v = into_target[v.index()];
        counterpart.insert(v, u);
        let target_label = target.label(v);
        if work.label(u) != target_label {
            work.relabel(u, target_label);
            ops.push(ScriptOp::Relabel {
                node: u,
                label: target_label,
            });
        }
    }

    // 2. Deletions (any order: node ids are stable in the arena).
    for &node in &mapping.deleted {
        let node = into_work[node.index()];
        work.remove_node(node)
            .expect("the super-root is never deleted");
        ops.push(ScriptOp::Delete { node });
    }

    // 3. Insertions, in preorder of T2 so every inserted node's parent is
    //    already present.
    let t2 = &target;
    let t2_positions: Positions = t2.positions();
    let mut inserted: Vec<NodeId> = mapping
        .inserted
        .iter()
        .map(|&v| into_target[v.index()])
        .collect();
    inserted.sort_unstable_by_key(|&v| t2_positions.pre(v));
    for v in inserted {
        let parent_in_t2 = t2
            .parent(v)
            .expect("every real node has a parent under the super-root");
        let parent = *counterpart
            .get(&parent_in_t2)
            .expect("parents precede children in preorder");
        // v adopts the *present frontier* of its T2 subtree: mapped
        // descendants reachable without crossing an already-inserted node.
        // (Not-yet-inserted descendants of v still hang off `parent`; their
        // own mapped children sit there too and belong inside v.)
        let mut present = Vec::new();
        present_frontier(t2, v, &counterpart, &mut present);
        let (start, count) = if present.is_empty() {
            // Fresh leaf: insert before the nearest present node of any
            // following sibling's subtree.
            let successor = following_present_sibling(t2, v, &counterpart);
            let position = match successor {
                Some(successor_node) => work
                    .children(parent)
                    .position(|c| c == successor_node)
                    .expect("successor is a child of parent"),
                None => work.degree(parent),
            };
            (position, 0)
        } else {
            let positions: Vec<usize> = present
                .iter()
                .map(|&node| {
                    work.children(parent)
                        .position(|c| c == node)
                        .expect("present child under expected parent")
                })
                .collect();
            let start = *positions.iter().min().expect("nonempty");
            let end = *positions.iter().max().expect("nonempty");
            assert_eq!(
                end - start + 1,
                positions.len(),
                "mapped children of an inserted node must be consecutive"
            );
            (start, positions.len())
        };
        let new_node = work
            .insert_above_children(parent, t2.label(v), start, count)
            .expect("validated run");
        counterpart.insert(v, new_node);
        ops.push(ScriptOp::Insert {
            parent,
            label: t2.label(v),
            start,
            count,
        });
    }

    // Unwrap: the super-root must hold exactly the target tree.
    let root_child = work
        .first_child(work.root())
        .expect("result cannot be empty");
    assert_eq!(
        work.next_sibling(root_child),
        None,
        "super-root ended with more than one child"
    );
    AppliedScript {
        result: subtree_copy(&work, root_child),
        ops,
    }
}

/// Clones `tree` under a fresh `ε`-labeled super-root, returning the copy
/// and the old-id → new-id translation (indexed by old arena index).
fn wrapped_copy(tree: &Tree) -> (Tree, Vec<NodeId>) {
    let mut wrapped = Tree::with_capacity(LabelId::EPSILON, tree.len() + 1);
    let mut translation = vec![wrapped.root(); tree.arena_len()];
    let root_copy = wrapped.add_child(wrapped.root(), tree.label(tree.root()));
    translation[tree.root().index()] = root_copy;
    // Preorder clone preserving child order (stack pops the leftmost
    // pending node first).
    let mut stack: Vec<(NodeId, NodeId)> =
        tree.children(tree.root()).map(|c| (c, root_copy)).collect();
    stack.reverse();
    while let Some((old, new_parent)) = stack.pop() {
        let copy = wrapped.add_child(new_parent, tree.label(old));
        translation[old.index()] = copy;
        let before = stack.len();
        stack.extend(tree.children(old).map(|c| (c, copy)));
        stack[before..].reverse();
    }
    (wrapped, translation)
}

/// Clones the subtree rooted at `node` into a fresh dense tree.
fn subtree_copy(tree: &Tree, node: NodeId) -> Tree {
    let mut out = Tree::with_capacity(tree.label(node), tree.subtree_size(node));
    let mut stack: Vec<(NodeId, NodeId)> = tree.children(node).map(|c| (c, out.root())).collect();
    stack.reverse();
    while let Some((old, new_parent)) = stack.pop() {
        let copy = out.add_child(new_parent, tree.label(old));
        let before = stack.len();
        stack.extend(tree.children(old).map(|c| (c, copy)));
        stack[before..].reverse();
    }
    out
}

/// Collects (in order) the working-copy counterparts of the nearest
/// present descendants of `v`'s children — the frontier v must adopt.
fn present_frontier(
    t2: &Tree,
    v: NodeId,
    counterpart: &HashMap<NodeId, NodeId>,
    out: &mut Vec<NodeId>,
) {
    for child in t2.children(v) {
        match counterpart.get(&child) {
            Some(&node) => out.push(node),
            None => present_frontier(t2, child, counterpart, out),
        }
    }
}

/// The first present node (leftmost, nearest) within the subtrees of `v`'s
/// following siblings — the position anchor for inserting a fresh leaf.
fn following_present_sibling(
    t2: &Tree,
    v: NodeId,
    counterpart: &HashMap<NodeId, NodeId>,
) -> Option<NodeId> {
    let mut cursor = t2.next_sibling(v);
    while let Some(sibling) = cursor {
        if let Some(node) = first_present(t2, sibling, counterpart) {
            return Some(node);
        }
        cursor = t2.next_sibling(sibling);
    }
    None
}

/// The leftmost present node in the subtree rooted at `s` (itself included).
fn first_present(t2: &Tree, s: NodeId, counterpart: &HashMap<NodeId, NodeId>) -> Option<NodeId> {
    if let Some(&node) = counterpart.get(&s) {
        return Some(node);
    }
    t2.children(s)
        .find_map(|child| first_present(t2, child, counterpart))
}

/// Convenience: derives the optimal script between two trees and applies
/// it, returning the operations (whose length equals the unit-cost edit
/// distance) — the full "diff" of the two trees.
pub fn diff<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> AppliedScript {
    let mapping = edit_mapping(t1, t2, cost);
    apply_mapping(t1, t2, &mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn check(a: &str, b: &str) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        let applied = diff(&t1, &t2, &UnitCost);
        assert_eq!(
            applied.result, t2,
            "script did not reproduce the target for {a} → {b}"
        );
        assert_eq!(
            applied.ops.len() as u64,
            edit_distance(&t1, &t2),
            "script length ≠ edit distance for {a} → {b}"
        );
    }

    #[test]
    fn identity_script_is_empty() {
        check("a(b(c d) e)", "a(b(c d) e)");
    }

    #[test]
    fn single_operations() {
        check("a(b c)", "a(b z)"); // relabel
        check("a(b(c(d)) b e)", "a(c(d) b e)"); // delete
        check("a(c(d) b e)", "a(b(c(d)) b e)"); // insert
        check("a(b c)", "a(b x c)"); // leaf insert in the middle
    }

    #[test]
    fn classic_example() {
        check("f(d(a c(b)) e)", "f(c(d(a b)) e)");
        check("f(c(d(a b)) e)", "f(d(a c(b)) e)");
    }

    #[test]
    fn root_insertion_and_deletion() {
        check("a", "b(a)"); // new root above the old one
        check("b(a)", "a"); // delete the root
        check("a(b)", "c(a(b) d)");
        check("c(a(b) d)", "a(b)");
    }

    #[test]
    fn asymmetric_shapes() {
        check("a", "a(b(c(d)))");
        check("a(b(c(d)))", "a");
        check("a(b(c(d)))", "a(b c d)");
        check("a(b c d)", "a(b(c(d)))");
        check("a(b c d e f)", "a(f e d c b)");
        check("a(b(x y) c(z))", "q(r(s) t)");
    }

    #[test]
    fn scripts_on_random_pairs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut interner = LabelInterner::new();
        let labels: Vec<_> = (0..4).map(|i| interner.intern(&format!("l{i}"))).collect();
        let base = bracket::parse(&mut interner, "l0(l1(l2 l3) l1 l2(l3 l0))").unwrap();
        let mut rng = StdRng::seed_from_u64(123);
        for k in 0..24usize {
            let (mutated, _) =
                treesim_datagen::mutate::apply_random_ops(&base, k % 6, &labels, &mut rng);
            let applied = diff(&base, &mutated, &UnitCost);
            assert_eq!(applied.result, mutated);
            assert_eq!(applied.ops.len() as u64, edit_distance(&base, &mutated));
        }
    }

    #[test]
    fn script_ops_are_reported_in_order() {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, "a(b c)").unwrap();
        let t2 = bracket::parse(&mut interner, "a(z(b c))").unwrap();
        let applied = diff(&t1, &t2, &UnitCost);
        assert_eq!(applied.ops.len(), 1);
        match &applied.ops[0] {
            ScriptOp::Insert { start, count, .. } => {
                assert_eq!((*start, *count), (0, 2));
            }
            other => panic!("expected an insert, got {other:?}"),
        }
    }
}
