//! Selkow's top-down tree edit distance (reference \[14\] of the paper).
//!
//! The earliest tree edit model: insertions and deletions are allowed only
//! for whole subtrees at the leaves of the mapping — equivalently, a node
//! may be mapped only if its parent is mapped, so the two roots always map
//! to each other. The distance is therefore an upper bound of the general
//! Zhang–Shasha distance (its mappings are a subset).
//!
//! Runs in `O(|T1|·|T2|)` time via a children-sequence alignment per
//! matched node pair.

use treesim_tree::{NodeId, Tree};

use crate::cost::{CostModel, UnitCost};

/// Unit-cost Selkow (top-down) distance.
pub fn selkow_distance(t1: &Tree, t2: &Tree) -> u64 {
    selkow_distance_with(t1, t2, &UnitCost)
}

/// Selkow distance under an arbitrary cost model.
pub fn selkow_distance_with<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> u64 {
    let delete_costs = subtree_costs(t1, |l| cost.delete(l));
    let insert_costs = subtree_costs(t2, |l| cost.insert(l));
    tree_distance(
        t1,
        t2,
        t1.root(),
        t2.root(),
        cost,
        &delete_costs,
        &insert_costs,
    )
}

/// Cost of deleting (resp. inserting) each whole subtree, indexed by node.
fn subtree_costs<F: Fn(treesim_tree::LabelId) -> u64>(tree: &Tree, per_node: F) -> Vec<u64> {
    let mut costs = vec![0u64; tree.arena_len()];
    for node in tree.postorder() {
        costs[node.index()] =
            per_node(tree.label(node)) + tree.children(node).map(|c| costs[c.index()]).sum::<u64>();
    }
    costs
}

fn tree_distance<C: CostModel>(
    t1: &Tree,
    t2: &Tree,
    u: NodeId,
    v: NodeId,
    cost: &C,
    delete_costs: &[u64],
    insert_costs: &[u64],
) -> u64 {
    let relabel = cost.relabel(t1.label(u), t2.label(v));
    let children1: Vec<NodeId> = t1.children(u).collect();
    let children2: Vec<NodeId> = t2.children(v).collect();
    // Sequence alignment over the child subtrees: substitution recurses,
    // gaps pay whole-subtree costs.
    let rows = children1.len() + 1;
    let cols = children2.len() + 1;
    let mut dp = vec![0u64; rows * cols];
    let at = |i: usize, j: usize| i * cols + j;
    for i in 1..rows {
        dp[at(i, 0)] = dp[at(i - 1, 0)] + delete_costs[children1[i - 1].index()];
    }
    for j in 1..cols {
        dp[at(0, j)] = dp[at(0, j - 1)] + insert_costs[children2[j - 1].index()];
    }
    for i in 1..rows {
        for j in 1..cols {
            let substitute = dp[at(i - 1, j - 1)]
                + tree_distance(
                    t1,
                    t2,
                    children1[i - 1],
                    children2[j - 1],
                    cost,
                    delete_costs,
                    insert_costs,
                );
            let delete = dp[at(i - 1, j)] + delete_costs[children1[i - 1].index()];
            let insert = dp[at(i, j - 1)] + insert_costs[children2[j - 1].index()];
            dp[at(i, j)] = substitute.min(delete).min(insert);
        }
    }
    relabel + dp[at(rows - 1, cols - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zhang_shasha::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn both(a: &str, b: &str) -> (u64, u64) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        (selkow_distance(&t1, &t2), edit_distance(&t1, &t2))
    }

    #[test]
    fn identical_trees_zero() {
        let (selkow, _) = both("a(b(c d) e)", "a(b(c d) e)");
        assert_eq!(selkow, 0);
    }

    #[test]
    fn relabel_only() {
        let (selkow, zs) = both("a(b c)", "a(b z)");
        assert_eq!(selkow, 1);
        assert_eq!(zs, 1);
    }

    #[test]
    fn leaf_subtree_insertion() {
        let (selkow, zs) = both("a(b)", "a(b c)");
        assert_eq!(selkow, 1);
        assert_eq!(zs, 1);
    }

    #[test]
    fn inner_deletions_cost_whole_subtrees() {
        // ZS can delete the inner b and splice; Selkow must delete/insert
        // whole subtrees, paying more.
        let (selkow, zs) = both("a(b(c d))", "a(c d)");
        assert_eq!(zs, 1);
        assert!(selkow > zs, "selkow {selkow} vs zs {zs}");
    }

    #[test]
    fn upper_bounds_zhang_shasha() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a(b c d)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b c d e)", "a(e d c b)"),
        ];
        for (x, y) in cases {
            let (selkow, zs) = both(x, y);
            assert!(selkow >= zs, "selkow {selkow} < zs {zs} on {x} vs {y}");
        }
    }

    #[test]
    fn symmetric_under_unit_costs() {
        for (x, y) in [("a(b(c))", "a(b c)"), ("a(b c)", "d(e)")] {
            let (xy, _) = both(x, y);
            let (yx, _) = both(y, x);
            assert_eq!(xy, yx);
        }
    }

    #[test]
    fn completely_different_trees() {
        // Roots always map (relabel); everything else is subtree churn.
        let (selkow, _) = both("a(b b)", "z");
        assert_eq!(selkow, 3); // relabel root + delete 2 leaf subtrees
    }
}
