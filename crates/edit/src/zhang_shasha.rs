//! The Zhang–Shasha tree edit distance (reference \[23\] of the paper).
//!
//! Runs in `O(|T1|·|T2|·min(depth,leaves)(T1)·min(depth,leaves)(T2))` time
//! and `O(|T1|·|T2|)` space using the classic postorder / leftmost-leaf /
//! LR-keyroot formulation. This is the "real" distance that the paper's
//! filter-and-refine framework tries to avoid computing.

use treesim_tree::{LabelId, NodeId, Tree};

use crate::cost::{CostModel, UnitCost};

/// Per-tree precomputation reused across many distance evaluations — the
/// refinement step of a similarity search compares one query against many
/// candidates, so the query's `TreeInfo` is built once.
#[derive(Debug, Clone)]
pub struct TreeInfo {
    /// Node labels in postorder (0-based).
    labels: Vec<LabelId>,
    /// `lml[i]` = 0-based postorder index of the leftmost leaf descendant of
    /// the node with postorder index `i`.
    lml: Vec<usize>,
    /// LR-keyroots in increasing postorder index.
    keyroots: Vec<usize>,
    /// Original node ids in postorder, for mapping recovery.
    ids: Vec<NodeId>,
    /// `heights[i]` = height (nodes on the longest downward path, so a
    /// leaf has height 1) of the subtree rooted at postorder index `i`.
    /// Used by the bounded DP's height guards ([`crate::bounded`]).
    heights: Vec<u64>,
    /// Number of leaves, for the O(1) leaf-count cutoff of the bounded DP.
    leaves: usize,
}

impl TreeInfo {
    /// Precomputes postorder labels, leftmost leaves and LR-keyroots.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.len();
        let mut labels = Vec::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        let mut lml = vec![0usize; n];
        let mut heights = Vec::with_capacity(n);
        // Postorder index per node, to resolve first-child lookups, and
        // the running subtree height per arena slot (children precede
        // parents in postorder, so a node's slot is final when visited).
        let mut post_index = vec![usize::MAX; tree.arena_len()];
        let mut height_of = vec![1u64; tree.arena_len()];
        for (i, node) in tree.postorder().enumerate() {
            post_index[node.index()] = i;
            labels.push(tree.label(node));
            ids.push(node);
            // Leftmost leaf: follow first-child links to a leaf. Children
            // precede parents in postorder, so their lml is already set.
            lml[i] = match tree.first_child(node) {
                Some(first) => lml[post_index[first.index()]],
                None => i,
            };
            let h = height_of[node.index()];
            heights.push(h);
            if let Some(parent) = tree.parent(node) {
                let slot = &mut height_of[parent.index()];
                *slot = (*slot).max(h + 1);
            }
        }
        let leaves = lml.iter().enumerate().filter(|&(i, &l)| l == i).count();
        // LR-keyroots: nodes with no proper ancestor sharing their leftmost
        // leaf — equivalently, for each distinct lml value keep the largest
        // postorder index that attains it.
        let mut last_for_lml = std::collections::HashMap::new();
        for (i, &leaf) in lml.iter().enumerate() {
            last_for_lml.insert(leaf, i);
        }
        let mut keyroots: Vec<usize> = last_for_lml.into_values().collect();
        keyroots.sort_unstable();
        TreeInfo {
            labels,
            lml,
            keyroots,
            ids,
            heights,
            leaves,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the tree info is empty (never: trees have ≥ 1 node).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Node id at 0-based postorder position `i`.
    pub fn node_at(&self, i: usize) -> NodeId {
        self.ids[i]
    }

    /// Label at 0-based postorder position `i`.
    pub fn label_at(&self, i: usize) -> LabelId {
        self.labels[i]
    }

    /// 0-based postorder index of the leftmost leaf under position `i`.
    pub fn leftmost_leaf(&self, i: usize) -> usize {
        self.lml[i]
    }

    /// The LR-keyroots in increasing postorder index.
    pub fn keyroots(&self) -> &[usize] {
        &self.keyroots
    }

    /// Height (nodes on the longest downward path; a leaf has height 1)
    /// of the subtree rooted at 0-based postorder position `i`.
    pub fn height_at(&self, i: usize) -> u64 {
        self.heights[i]
    }

    /// Number of nodes in the subtree rooted at 0-based postorder
    /// position `i` (postorder index minus leftmost-leaf index, plus one).
    pub fn subtree_size(&self, i: usize) -> usize {
        i - self.lml[i] + 1
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }
}

/// Workspace for repeated Zhang–Shasha runs; reusing it avoids reallocating
/// the two `O(n1·n2)` matrices on every comparison.
#[derive(Debug, Default)]
pub struct ZsWorkspace {
    treedist: Vec<u64>,
    forestdist: Vec<u64>,
}

impl ZsWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        ZsWorkspace::default()
    }

    /// The tree-distance table of the last run (filled for every node
    /// pair); used by mapping recovery.
    pub(crate) fn treedist_snapshot(&self) -> &[u64] {
        &self.treedist
    }

    /// Mutable access to the `(treedist, forestdist)` matrices for the
    /// bounded DP ([`crate::bounded`]), which shares this workspace.
    pub(crate) fn matrices(&mut self) -> (&mut Vec<u64>, &mut Vec<u64>) {
        (&mut self.treedist, &mut self.forestdist)
    }
}

/// Unit-cost tree edit distance between two trees.
///
/// # Examples
///
/// ```
/// use treesim_edit::edit_distance;
/// use treesim_tree::{parse::bracket, LabelInterner};
///
/// let mut interner = LabelInterner::new();
/// let t1 = bracket::parse(&mut interner, "a(b(c(d)) b e)").unwrap();
/// let t2 = bracket::parse(&mut interner, "a(c(d) b e)").unwrap();
/// assert_eq!(edit_distance(&t1, &t2), 1); // delete the first b
/// ```
pub fn edit_distance(t1: &Tree, t2: &Tree) -> u64 {
    edit_distance_with(t1, t2, &UnitCost)
}

/// Tree edit distance under an arbitrary [`CostModel`].
pub fn edit_distance_with<C: CostModel>(t1: &Tree, t2: &Tree, cost: &C) -> u64 {
    let info1 = TreeInfo::new(t1);
    let info2 = TreeInfo::new(t2);
    let mut workspace = ZsWorkspace::new();
    zhang_shasha(&info1, &info2, cost, &mut workspace)
}

/// Zhang–Shasha distance over precomputed [`TreeInfo`]s, reusing `workspace`.
pub fn zhang_shasha<C: CostModel>(
    info1: &TreeInfo,
    info2: &TreeInfo,
    cost: &C,
    workspace: &mut ZsWorkspace,
) -> u64 {
    let n1 = info1.len();
    let n2 = info2.len();
    let stride = n2 + 1;
    workspace.treedist.clear();
    workspace.treedist.resize((n1 + 1) * stride, 0);
    workspace.forestdist.clear();
    workspace.forestdist.resize((n1 + 1) * stride, 0);

    for &k1 in info1.keyroots() {
        for &k2 in info2.keyroots() {
            compute_treedist(info1, info2, k1, k2, cost, workspace, stride);
        }
    }
    workspace.treedist[n1 * stride + n2]
}

/// Fills `treedist[di][dj]` for all pairs of nodes whose subtree problems
/// are anchored at keyroots `k1`, `k2` (0-based postorder indices).
fn compute_treedist<C: CostModel>(
    info1: &TreeInfo,
    info2: &TreeInfo,
    k1: usize,
    k2: usize,
    cost: &C,
    workspace: &mut ZsWorkspace,
    stride: usize,
) {
    // Work in 1-based postorder indices over the node ranges
    // [l1 .. k1+1] and [l2 .. k2+1], with index 0 = empty forest boundary.
    let l1 = info1.leftmost_leaf(k1) + 1;
    let l2 = info2.leftmost_leaf(k2) + 1;
    let i_hi = k1 + 1;
    let j_hi = k2 + 1;

    let ZsWorkspace {
        treedist: td,
        forestdist: fd,
    } = workspace;
    // fd is indexed with the same (node, node) layout as treedist; the
    // boundary "empty forest" rows live at l1-1 / l2-1.
    let at = |i: usize, j: usize| i * stride + j;

    fd[at(l1 - 1, l2 - 1)] = 0;
    for i in l1..=i_hi {
        fd[at(i, l2 - 1)] = fd[at(i - 1, l2 - 1)] + cost.delete(info1.label_at(i - 1));
    }
    for j in l2..=j_hi {
        fd[at(l1 - 1, j)] = fd[at(l1 - 1, j - 1)] + cost.insert(info2.label_at(j - 1));
    }
    for i in l1..=i_hi {
        let li = info1.leftmost_leaf(i - 1) + 1;
        for j in l2..=j_hi {
            let lj = info2.leftmost_leaf(j - 1) + 1;
            let del = fd[at(i - 1, j)] + cost.delete(info1.label_at(i - 1));
            let ins = fd[at(i, j - 1)] + cost.insert(info2.label_at(j - 1));
            if li == l1 && lj == l2 {
                // Both prefixes are whole subtrees: this is a tree problem.
                let rel = fd[at(i - 1, j - 1)]
                    + cost.relabel(info1.label_at(i - 1), info2.label_at(j - 1));
                let best = del.min(ins).min(rel);
                fd[at(i, j)] = best;
                td[at(i, j)] = best;
            } else {
                let split = fd[at(li - 1, lj - 1)] + td[at(i, j)];
                fd[at(i, j)] = del.min(ins).min(split);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn dist(a: &str, b: &str) -> u64 {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        edit_distance(&t1, &t2)
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        assert_eq!(dist("a(b(c d) b e)", "a(b(c d) b e)"), 0);
        assert_eq!(dist("a", "a"), 0);
    }

    #[test]
    fn single_relabel() {
        assert_eq!(dist("a", "b"), 1);
        assert_eq!(dist("a(b c)", "a(b d)"), 1);
        assert_eq!(dist("a(b c)", "x(b c)"), 1);
    }

    #[test]
    fn single_insert_or_delete() {
        assert_eq!(dist("a", "a(b)"), 1);
        assert_eq!(dist("a(b)", "a"), 1);
        assert_eq!(dist("a(b c)", "a(x(b c))"), 1);
        assert_eq!(dist("a(x(b c))", "a(b c)"), 1);
        assert_eq!(dist("a(b c)", "a(b x c)"), 1);
    }

    #[test]
    fn paper_fig1_example() {
        // Fig. 1 of the paper: T2 is obtained from T1 by deleting the first
        // b (its children c, d splice up) and relabeling the second b's
        // subtree... the mapping shown implies a small distance; here we
        // verify the canonical delete-splice semantics on that shape.
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, "a(b(c(d)) b(e))").unwrap();
        let t2 = bracket::parse(&mut interner, "a(c(d) b(e))").unwrap();
        assert_eq!(edit_distance(&t1, &t2), 1);
    }

    #[test]
    fn completely_disjoint_labels() {
        // Best strategy: relabel all three matched nodes.
        assert_eq!(dist("a(b c)", "x(y z)"), 3);
    }

    #[test]
    fn size_difference_is_a_lower_bound() {
        let d = dist("a(b(c) d(e f) g)", "a(b)");
        assert!(d >= 5);
    }

    #[test]
    fn deep_vs_wide() {
        // Chain a(b(c(d))) versus star a(b c d): an edit mapping must
        // preserve ancestorship, so besides a→a only one of b/c/d can be
        // matched; the other two are deleted and re-inserted: distance 4.
        let d = dist("a(b(c(d)))", "a(b c d)");
        assert_eq!(d, 4);
    }

    #[test]
    fn order_sensitivity() {
        // Ordered distance distinguishes sibling orders.
        let d = dist("a(b c)", "a(c b)");
        assert!(d > 0);
        assert!(d <= 2);
    }

    #[test]
    fn unit_distance_is_symmetric() {
        let pairs = [
            ("a(b(c d) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
        ];
        for (x, y) in pairs {
            assert_eq!(dist(x, y), dist(y, x), "asymmetry for {x} vs {y}");
        }
    }

    #[test]
    fn classic_zhang_shasha_example() {
        // The canonical example from the Zhang–Shasha paper:
        // f(d(a c(b)) e) vs f(c(d(a b)) e) has distance 2.
        assert_eq!(dist("f(d(a c(b)) e)", "f(c(d(a b)) e)"), 2);
    }

    #[test]
    fn weighted_cost_scales_distance() {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, "a(b)").unwrap();
        let t2 = bracket::parse(&mut interner, "a(c d)").unwrap();
        // Unit: relabel b→c + insert d = 2.
        assert_eq!(edit_distance(&t1, &t2), 2);
        let weighted = crate::cost::WeightedCost {
            relabel: 10,
            delete: 1,
            insert: 1,
        };
        // With expensive relabels: delete b, insert c, insert d = 3.
        assert_eq!(edit_distance_with(&t1, &t2, &weighted), 3);
    }

    #[test]
    fn tree_info_shape() {
        let mut interner = LabelInterner::new();
        let t = bracket::parse(&mut interner, "f(d(a c(b)) e)").unwrap();
        let info = TreeInfo::new(&t);
        assert_eq!(info.len(), 6);
        assert!(!info.is_empty());
        // Postorder: a b c d e f → leftmost leaves: a,b,b? no: c's leftmost
        // leaf is b; d's is a; f's is a; e's is e.
        let names: Vec<_> = (0..info.len())
            .map(|i| interner.resolve(info.label_at(i)).to_owned())
            .collect();
        assert_eq!(names, vec!["a", "b", "c", "d", "e", "f"]);
        assert_eq!(info.leftmost_leaf(0), 0); // a
        assert_eq!(info.leftmost_leaf(2), 1); // c → b
        assert_eq!(info.leftmost_leaf(3), 0); // d → a
        assert_eq!(info.leftmost_leaf(5), 0); // f → a
                                              // Keyroots: largest postorder index per distinct lml: {a:5, b:2, e:4}.
        assert_eq!(info.keyroots(), &[2, 4, 5]);
    }

    #[test]
    fn workspace_reuse_is_consistent() {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, "a(b(c(d)) b e)").unwrap();
        let t2 = bracket::parse(&mut interner, "a(c(d) b e)").unwrap();
        let t3 = bracket::parse(&mut interner, "x(y)").unwrap();
        let i1 = TreeInfo::new(&t1);
        let i2 = TreeInfo::new(&t2);
        let i3 = TreeInfo::new(&t3);
        let mut ws = ZsWorkspace::new();
        let d12 = zhang_shasha(&i1, &i2, &UnitCost, &mut ws);
        let d13 = zhang_shasha(&i1, &i3, &UnitCost, &mut ws);
        let d12_again = zhang_shasha(&i1, &i2, &UnitCost, &mut ws);
        assert_eq!(d12, d12_again);
        assert_eq!(d12, 1);
        assert!(d13 >= 4);
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let specs = [
            "a(b(c d) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a",
            "a(b(c(d)))",
        ];
        let mut interner = LabelInterner::new();
        let trees: Vec<_> = specs
            .iter()
            .map(|s| bracket::parse(&mut interner, s).unwrap())
            .collect();
        for x in &trees {
            for y in &trees {
                for z in &trees {
                    let xy = edit_distance(x, y);
                    let yz = edit_distance(y, z);
                    let xz = edit_distance(x, z);
                    assert!(xz <= xy + yz, "triangle violated");
                }
            }
        }
    }
}
