//! Property tests for the bounded (threshold-aware) Zhang–Shasha:
//! `ted_bounded(t1, t2, τ)` must return `Some(d)` iff the unbounded
//! distance is `d ≤ τ` and `None` iff it exceeds `τ`, for every budget
//! shape the cascade can hand it — including the degenerate-keyroot chains
//! that stress the subproblem-skip logic.

use proptest::prelude::*;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::bounded::bounded_zhang_shasha;
use treesim_edit::zhang_shasha::{zhang_shasha, TreeInfo, ZsWorkspace};
use treesim_edit::{edit_distance, ted_bounded, UnitCost, WeightedCost};
use treesim_tree::{parse::bracket, Forest, LabelInterner, Tree, TreeId};

fn small_forest(seed: u64, size_mean: f64, labels: u32, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.0, 1.0),
        size: Normal::new(size_mean, 2.0),
        label_count: labels,
        decay: 0.2,
        seed_count: 2.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

/// The tau values the satellite calls out: 0, d−1, d, d+1, ∞.
fn boundary_taus(d: u64) -> [u64; 5] {
    [0, d.saturating_sub(1), d, d + 1, u64::MAX]
}

fn assert_bounded_semantics(t1: &Tree, t2: &Tree, ctx: &str) {
    let d = edit_distance(t1, t2);
    for tau in boundary_taus(d) {
        let got = ted_bounded(t1, t2, tau);
        let want = if d <= tau { Some(d) } else { None };
        assert_eq!(got, want, "{ctx}: tau={tau}, unbounded d={d}");
    }
}

/// A chain tree `a(a(a(...)))` of the given depth — a single keyroot on
/// the left spine, which degenerates the keyroot decomposition.
fn chain(depth: usize, label: &str) -> Tree {
    let mut interner = LabelInterner::new();
    let mut s = String::new();
    for _ in 0..depth.saturating_sub(1) {
        s.push_str(label);
        s.push('(');
    }
    s.push_str(label);
    s.push_str(&")".repeat(depth.saturating_sub(1)));
    bracket::parse(&mut interner, &s).unwrap()
}

/// A right-comb `a(b a(b a(...)))`: every spine node is a keyroot, the
/// opposite degeneracy from `chain`.
fn comb(depth: usize) -> Tree {
    let mut interner = LabelInterner::new();
    let mut s = String::new();
    for _ in 0..depth.saturating_sub(1) {
        s.push_str("a(b ");
    }
    s.push('a');
    s.push_str(&")".repeat(depth.saturating_sub(1)));
    bracket::parse(&mut interner, &s).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Some(d)` iff `zhang_shasha == d ≤ τ`, `None` iff the distance
    /// exceeds τ, on synthetic tree pairs at the boundary budgets.
    #[test]
    fn bounded_matches_unbounded_at_boundaries(seed in 0u64..10_000) {
        let forest = small_forest(seed, 8.0, 4, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        assert_bounded_semantics(t1, t2, "synthetic");
    }

    /// Same contract on deep/skewed trees whose keyroot decomposition is
    /// degenerate (single-keyroot left chains vs one-keyroot-per-node
    /// right combs), which exercises the subproblem-skip paths.
    #[test]
    fn bounded_handles_degenerate_keyroots(d1 in 1usize..14, d2 in 1usize..14) {
        assert_bounded_semantics(&chain(d1, "a"), &chain(d2, "a"), "chain/chain");
        assert_bounded_semantics(&chain(d1, "a"), &chain(d2, "b"), "chain/relabel");
        assert_bounded_semantics(&chain(d1, "a"), &comb(d2), "chain/comb");
        assert_bounded_semantics(&comb(d1), &comb(d2), "comb/comb");
    }

    /// Every tau in [0, d + 2] — not just the boundaries — agrees with the
    /// unbounded oracle, and the work accounting is conserved.
    #[test]
    fn bounded_agrees_for_every_tau(seed in 0u64..10_000) {
        let forest = small_forest(seed, 6.0, 3, 2);
        let info1 = TreeInfo::new(forest.tree(TreeId(0)));
        let info2 = TreeInfo::new(forest.tree(TreeId(1)));
        let mut ws = ZsWorkspace::new();
        let d = zhang_shasha(&info1, &info2, &UnitCost, &mut ws);
        for tau in 0..=d + 2 {
            let (res, stats) = bounded_zhang_shasha(&info1, &info2, &UnitCost, tau, &mut ws);
            let want = if d <= tau { Some(d) } else { None };
            prop_assert_eq!(res, want, "tau={}, d={}", tau, d);
            prop_assert_eq!(stats.cutoff, res.is_none());
            prop_assert_eq!(
                stats.cells_computed + stats.cells_skipped,
                stats.cells_full
            );
        }
    }

    /// The contract holds for non-unit costs, where the band is scaled by
    /// the model's minimum operation cost.
    #[test]
    fn bounded_respects_weighted_costs(
        seed in 0u64..10_000,
        relabel in 1u64..6,
        delete in 1u64..6,
        insert in 1u64..6,
    ) {
        let model = WeightedCost { relabel, delete, insert };
        let forest = small_forest(seed, 6.0, 4, 2);
        let info1 = TreeInfo::new(forest.tree(TreeId(0)));
        let info2 = TreeInfo::new(forest.tree(TreeId(1)));
        let mut ws = ZsWorkspace::new();
        let d = zhang_shasha(&info1, &info2, &model, &mut ws);
        for tau in boundary_taus(d) {
            let (res, _) = bounded_zhang_shasha(&info1, &info2, &model, tau, &mut ws);
            let want = if d <= tau { Some(d) } else { None };
            prop_assert_eq!(res, want, "tau={}, d={}", tau, d);
        }
    }

    /// Bounded runs never do more cell work than the full DP, and a zero
    /// budget between different-rooted trees does essentially none.
    #[test]
    fn bounded_never_exceeds_full_work(seed in 0u64..10_000) {
        let forest = small_forest(seed, 8.0, 4, 2);
        let info1 = TreeInfo::new(forest.tree(TreeId(0)));
        let info2 = TreeInfo::new(forest.tree(TreeId(1)));
        let mut ws = ZsWorkspace::new();
        let d = zhang_shasha(&info1, &info2, &UnitCost, &mut ws);
        if d > 0 {
            let (res, stats) =
                bounded_zhang_shasha(&info1, &info2, &UnitCost, d - 1, &mut ws);
            prop_assert_eq!(res, None);
            prop_assert!(stats.cells_computed <= stats.cells_full);
        }
    }
}
