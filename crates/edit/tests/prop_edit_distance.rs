//! Property tests for the Zhang–Shasha implementation: agreement with an
//! independent oracle, metric axioms and edit-sequence upper bounds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim_datagen::mutate::apply_random_ops;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::constrained::constrained_distance;
use treesim_edit::naive::naive_edit_distance;
use treesim_edit::selkow::selkow_distance;
use treesim_edit::{edit_distance, UnitCost};
use treesim_tree::{Forest, LabelId, Tree};

/// Generates a small random forest deterministically from a seed.
fn small_forest(seed: u64, size_mean: f64, labels: u32, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.0, 1.0),
        size: Normal::new(size_mean, 2.0),
        label_count: labels,
        decay: 0.2,
        seed_count: 2.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

fn forest_labels(forest: &Forest) -> Vec<LabelId> {
    forest
        .interner()
        .iter()
        .map(|(id, _)| id)
        .filter(|id| !id.is_epsilon())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zhang–Shasha agrees with the direct forest-recurrence oracle.
    #[test]
    fn zs_matches_naive_oracle(seed in 0u64..10_000) {
        let forest = small_forest(seed, 7.0, 4, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        let zs = edit_distance(t1, t2);
        let oracle = naive_edit_distance(t1, t2, &UnitCost);
        prop_assert_eq!(zs, oracle);
    }

    /// Applying k edit operations never yields distance above k.
    #[test]
    fn k_ops_bound_distance(seed in 0u64..10_000, k in 0usize..8) {
        let forest = small_forest(seed, 12.0, 6, 1);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let labels = forest_labels(&forest);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(k as u64));
        let (t2, ops) = apply_random_ops(t1, k, &labels, &mut rng);
        let d = edit_distance(t1, &t2);
        prop_assert!(d <= ops.len() as u64, "distance {d} > {} ops", ops.len());
    }

    /// d(x, x) = 0 and symmetry.
    #[test]
    fn metric_axioms(seed in 0u64..10_000) {
        let forest = small_forest(seed, 9.0, 5, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        prop_assert_eq!(edit_distance(t1, t1), 0);
        prop_assert_eq!(edit_distance(t1, t2), edit_distance(t2, t1));
    }

    /// Triangle inequality on random triples.
    #[test]
    fn triangle_inequality(seed in 0u64..10_000) {
        let forest = small_forest(seed, 7.0, 4, 3);
        let t: Vec<&Tree> = forest.trees().iter().collect();
        let d01 = edit_distance(t[0], t[1]);
        let d12 = edit_distance(t[1], t[2]);
        let d02 = edit_distance(t[0], t[2]);
        prop_assert!(d02 <= d01 + d12);
    }

    /// O(1) bounds sandwich the true distance.
    #[test]
    fn cheap_bounds_hold(seed in 0u64..10_000) {
        let forest = small_forest(seed, 10.0, 4, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        let d = edit_distance(t1, t2);
        prop_assert!(treesim_edit::bounds::combined_lower_bound(t1, t2) <= d);
        prop_assert!(treesim_edit::bounds::trivial_upper_bound(t1, t2) >= d);
    }

    /// Mapping-class hierarchy: general ⊇ constrained ⊇ top-down, so the
    /// distances order the other way around.
    #[test]
    fn distance_hierarchy(seed in 0u64..10_000) {
        let forest = small_forest(seed, 8.0, 4, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        let zs = edit_distance(t1, t2);
        let constrained = constrained_distance(t1, t2);
        let selkow = selkow_distance(t1, t2);
        prop_assert!(zs <= constrained, "zs {zs} > constrained {constrained}");
        prop_assert!(constrained <= selkow, "constrained {constrained} > selkow {selkow}");
        // All are bounded by delete-all + insert-all.
        prop_assert!(selkow <= (t1.len() + t2.len()) as u64);
    }

    /// The recovered mapping's cost is always the exact distance and its
    /// operation counts decompose it.
    #[test]
    fn mapping_cost_decomposes(seed in 0u64..10_000) {
        let forest = small_forest(seed, 8.0, 4, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        let mapping = treesim_edit::edit_mapping(t1, t2, &UnitCost);
        prop_assert_eq!(mapping.cost, edit_distance(t1, t2));
        let relabels = mapping.relabel_count(t1, t2) as u64;
        prop_assert_eq!(
            mapping.cost,
            relabels + mapping.deleted.len() as u64 + mapping.inserted.len() as u64
        );
    }

    /// Derived edit scripts transform T1 into exactly T2 using exactly
    /// EDist operations — the full pipeline (DP → mapping → script → apply)
    /// is internally consistent.
    #[test]
    fn scripts_reproduce_target(seed in 0u64..10_000) {
        let forest = small_forest(seed, 9.0, 4, 2);
        let t1 = forest.tree(treesim_tree::TreeId(0));
        let t2 = forest.tree(treesim_tree::TreeId(1));
        let applied = treesim_edit::diff(t1, t2, &UnitCost);
        prop_assert_eq!(&applied.result, t2);
        prop_assert_eq!(applied.ops.len() as u64, edit_distance(t1, t2));
    }
}

/// Seed 2852 was once pinned by proptest (see the committed
/// `.proptest-regressions` file) as a shrunk failure of this suite. The
/// triage could not reproduce a violation: every property above passes at
/// seed 2852 directly, and release-mode sweeps over the full `0..10_000`
/// seed space (plus weighted-cost oracle comparison and multi-stream
/// `apply_random_ops` stress) find no counterexample. The regression file
/// cannot be replayed byte-for-byte here — the inputs it pins depend on the
/// original proptest RNG streams — so this test pins the seed explicitly,
/// independent of any strategy implementation, to keep the case covered.
#[test]
fn seed_2852_pinned_regression() {
    let seed = 2852u64;

    let forest = small_forest(seed, 7.0, 4, 2);
    let t1 = forest.tree(treesim_tree::TreeId(0));
    let t2 = forest.tree(treesim_tree::TreeId(1));
    assert_eq!(
        edit_distance(t1, t2),
        naive_edit_distance(t1, t2, &UnitCost)
    );

    let forest = small_forest(seed, 12.0, 6, 1);
    let base = forest.tree(treesim_tree::TreeId(0));
    let labels = forest_labels(&forest);
    for k in 0..8usize {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(k as u64));
        let (mutated, ops) = apply_random_ops(base, k, &labels, &mut rng);
        assert!(edit_distance(base, &mutated) <= ops.len() as u64, "k = {k}");
    }

    let forest = small_forest(seed, 9.0, 5, 2);
    let t1 = forest.tree(treesim_tree::TreeId(0));
    let t2 = forest.tree(treesim_tree::TreeId(1));
    assert_eq!(edit_distance(t1, t1), 0);
    assert_eq!(edit_distance(t1, t2), edit_distance(t2, t1));

    let forest = small_forest(seed, 8.0, 4, 2);
    let t1 = forest.tree(treesim_tree::TreeId(0));
    let t2 = forest.tree(treesim_tree::TreeId(1));
    let zs = edit_distance(t1, t2);
    let constrained = constrained_distance(t1, t2);
    let selkow = selkow_distance(t1, t2);
    assert!(zs <= constrained && constrained <= selkow);
    let mapping = treesim_edit::edit_mapping(t1, t2, &UnitCost);
    assert_eq!(mapping.cost, zs);

    let forest = small_forest(seed, 9.0, 4, 2);
    let t1 = forest.tree(treesim_tree::TreeId(0));
    let t2 = forest.tree(treesim_tree::TreeId(1));
    let applied = treesim_edit::diff(t1, t2, &UnitCost);
    assert_eq!(&applied.result, t2);
    assert_eq!(applied.ops.len() as u64, edit_distance(t1, t2));
}
