//! Histogram filtration — the baseline the paper compares against
//! (Kailing, Kriegel, Schönauer, Seidl: *Efficient similarity search for
//! hierarchical data in large databases*, EDBT 2004; reference \[7\]).
//!
//! Three per-tree histograms summarize structure and content separately:
//!
//! * the **label histogram** (count per label),
//! * the **degree histogram** (count per fanout),
//! * the **height histogram** (count per node height).
//!
//! Their L1 distances yield lower bounds for the unit-cost edit distance
//! after dividing by the maximum change a single edit operation can cause:
//!
//! * label: one relabel moves one unit between two bins (L1 change 2), one
//!   insert/delete changes one bin by 1 → `⌈L1/2⌉ ≤ EDist`;
//! * degree: a relabel changes nothing; an insert changes the parent's
//!   degree bin (±1 twice) and adds the new node's bin (+1); a delete
//!   symmetrically → `⌈L1/3⌉ ≤ EDist`;
//! * height: a plain L1 on node heights admits **no** constant per-op bound
//!   (deleting a node under a long path shifts every ancestor's height), so
//!   the height histogram contributes the provable
//!   `|height(T1) − height(T2)| ≤ EDist` instead. This deviates from the
//!   unordered-tree bound of \[7\] (see DESIGN.md §5); the filtering
//!   structure and cost profile are preserved.
//!
//! The combined filter takes the maximum of the individual bounds plus the
//! size difference — mirroring how \[7\] combines its filters.

#![warn(missing_docs)]

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use treesim_tree::{LabelId, Tree};

/// A sparse histogram: sorted `(key, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    entries: Vec<(u32, u32)>,
}

impl Histogram {
    /// Builds a histogram from an iterator of keys.
    pub fn from_keys<I: IntoIterator<Item = u32>>(keys: I) -> Self {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for key in keys {
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut entries: Vec<(u32, u32)> = counts.into_iter().collect();
        entries.sort_unstable();
        Histogram { entries }
    }

    /// The sparse `(key, count)` entries in key order.
    pub fn entries(&self) -> &[(u32, u32)] {
        &self.entries
    }

    /// Total mass (sum of counts).
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| u64::from(c)).sum()
    }

    /// Number of nonzero bins.
    pub fn nonzero_bins(&self) -> usize {
        self.entries.len()
    }

    /// L1 distance between two histograms.
    pub fn l1(&self, other: &Histogram) -> u64 {
        let mut distance = 0u64;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.entries.len() && j < other.entries.len() {
            let (key_a, count_a) = self.entries[i];
            let (key_b, count_b) = other.entries[j];
            match key_a.cmp(&key_b) {
                std::cmp::Ordering::Less => {
                    distance += u64::from(count_a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    distance += u64::from(count_b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    distance += u64::from(count_a.abs_diff(count_b));
                    i += 1;
                    j += 1;
                }
            }
        }
        distance += self.entries[i..]
            .iter()
            .map(|&(_, c)| u64::from(c))
            .sum::<u64>();
        distance += other.entries[j..]
            .iter()
            .map(|&(_, c)| u64::from(c))
            .sum::<u64>();
        distance
    }
}

/// The three histograms of one tree plus the scalars used by the cheap
/// bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramVector {
    /// Count per label id.
    pub labels: Histogram,
    /// Count per node degree (fanout).
    pub degrees: Histogram,
    /// Count per node height (leaf = 1).
    pub heights: Histogram,
    /// Number of nodes.
    pub size: u32,
    /// Tree height.
    pub height: u32,
    /// The bin budget the histograms were built under. Comparing vectors
    /// built under different budgets is a logic error (debug-asserted).
    pub budget: BinBudget,
}

/// Bin budget for space-constrained histograms (§5 of the paper: "we set
/// the sum of dimension of the three type histogram vectors for one tree to
/// be the averaged vector size plus two averaged tree size").
///
/// Bucketing merges histogram bins (labels by hashing, degrees and heights
/// by clipping); merging bins can only decrease an L1 distance, so every
/// lower bound stays valid — the filter merely loses precision, exactly the
/// effect the paper's space-matching induces on label-rich datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinBudget {
    /// Number of label buckets (labels are hashed into buckets).
    pub label_bins: u32,
    /// Number of degree bins (degrees ≥ `degree_bins − 1` share the last).
    pub degree_bins: u32,
    /// Number of height bins (heights ≥ `height_bins − 1` share the last).
    pub height_bins: u32,
}

impl BinBudget {
    /// Unlimited bins (exact histograms).
    pub const UNLIMITED: BinBudget = BinBudget {
        label_bins: u32::MAX,
        degree_bins: u32::MAX,
        height_bins: u32::MAX,
    };

    /// Splits a total dimension budget evenly across the three histograms
    /// (the paper speaks of "the three type histogram vectors" without a
    /// weighting). Every histogram keeps at least 2 bins.
    pub fn from_total(total: u32) -> Self {
        let third = (total / 3).max(2);
        BinBudget {
            label_bins: third,
            degree_bins: third,
            height_bins: (total - 2 * third).max(2),
        }
    }

    /// The paper's space-matching rule: total dimensions = average
    /// binary-branch vector size + 2 × average tree size.
    pub fn paper_matched(avg_branch_vector_dims: f64, avg_tree_size: f64) -> Self {
        let total = (avg_branch_vector_dims + 2.0 * avg_tree_size).round() as u32;
        Self::from_total(total.max(6))
    }

    #[inline]
    fn bucket_label(&self, label: u32) -> u32 {
        if self.label_bins == u32::MAX {
            label
        } else {
            // Cheap multiplicative hash for stable spread across buckets.
            (label.wrapping_mul(2654435761)) % self.label_bins
        }
    }

    #[inline]
    fn bucket_clip(&self, value: u32, bins: u32) -> u32 {
        if bins == u32::MAX {
            value
        } else {
            value.min(bins - 1)
        }
    }
}

impl HistogramVector {
    /// Builds exact (unbucketed) histograms.
    pub fn build(tree: &Tree) -> Self {
        Self::build_bucketed(tree, BinBudget::UNLIMITED)
    }

    /// Builds all three histograms in one pass under a bin budget.
    pub fn build_bucketed(tree: &Tree, budget: BinBudget) -> Self {
        let mut label_keys = Vec::with_capacity(tree.len());
        let mut degree_keys = Vec::with_capacity(tree.len());
        let mut height_keys = Vec::with_capacity(tree.len());
        // Node heights bottom-up via postorder.
        let mut heights: Vec<u32> = vec![0; tree.arena_len()];
        for node in tree.postorder() {
            let h = 1 + tree
                .children(node)
                .map(|c| heights[c.index()])
                .max()
                .unwrap_or(0);
            heights[node.index()] = h;
            label_keys.push(budget.bucket_label(tree.label(node).as_u32()));
            degree_keys.push(budget.bucket_clip(tree.degree(node) as u32, budget.degree_bins));
            height_keys.push(budget.bucket_clip(h, budget.height_bins));
        }
        HistogramVector {
            labels: Histogram::from_keys(label_keys),
            degrees: Histogram::from_keys(degree_keys),
            heights: Histogram::from_keys(height_keys),
            size: tree.len() as u32,
            height: heights[tree.root().index()],
            budget,
        }
    }

    /// `⌈L1(label histograms)/2⌉` — the label (content) filter.
    pub fn label_lower_bound(&self, other: &HistogramVector) -> u64 {
        debug_assert_eq!(self.budget, other.budget, "mixing bin budgets");
        self.labels.l1(&other.labels).div_ceil(2)
    }

    /// `⌈L1(degree histograms)/3⌉` — the degree (structure) filter.
    pub fn degree_lower_bound(&self, other: &HistogramVector) -> u64 {
        self.degrees.l1(&other.degrees).div_ceil(3)
    }

    /// `|height(T1) − height(T2)|` — the height (structure) filter.
    pub fn height_lower_bound(&self, other: &HistogramVector) -> u64 {
        u64::from(self.height.abs_diff(other.height))
    }

    /// `| |T1| − |T2| |`.
    pub fn size_lower_bound(&self, other: &HistogramVector) -> u64 {
        u64::from(self.size.abs_diff(other.size))
    }

    /// The combined histogram filter: maximum of all individual bounds.
    pub fn lower_bound(&self, other: &HistogramVector) -> u64 {
        self.label_lower_bound(other)
            .max(self.degree_lower_bound(other))
            .max(self.height_lower_bound(other))
            .max(self.size_lower_bound(other))
    }

    /// Space used by this vector, in histogram entries — the evaluation
    /// matches the space of histogram and binary-branch filters (§5).
    pub fn entry_count(&self) -> usize {
        self.labels.nonzero_bins() + self.degrees.nonzero_bins() + self.heights.nonzero_bins()
    }
}

/// Histogram of a label multiset, exposed for the experiments that compare
/// label distributions directly.
pub fn label_histogram(tree: &Tree) -> Histogram {
    Histogram::from_keys(tree.preorder().map(|n| tree.label(n).as_u32()))
}

/// Degree histogram of a tree.
pub fn degree_histogram(tree: &Tree) -> Histogram {
    Histogram::from_keys(tree.preorder().map(|n| tree.degree(n) as u32))
}

/// Per-label-id convenience used in tests.
pub fn label_count(tree: &Tree, label: LabelId) -> u64 {
    tree.preorder().filter(|&n| tree.label(n) == label).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_edit::edit_distance;
    use treesim_tree::{parse::bracket, LabelInterner};

    fn vectors(a: &str, b: &str) -> (HistogramVector, HistogramVector, Tree, Tree) {
        let mut interner = LabelInterner::new();
        let t1 = bracket::parse(&mut interner, a).unwrap();
        let t2 = bracket::parse(&mut interner, b).unwrap();
        (
            HistogramVector::build(&t1),
            HistogramVector::build(&t2),
            t1,
            t2,
        )
    }

    #[test]
    fn histogram_l1_basics() {
        let h1 = Histogram::from_keys([1, 1, 2, 5]);
        let h2 = Histogram::from_keys([1, 2, 2, 7]);
        assert_eq!(h1.l1(&h2), 4); // |2−1| + |1−2| + |1−0| + |0−1|
        assert_eq!(h1.l1(&h1), 0);
        assert_eq!(h1.total(), 4);
        assert_eq!(h1.nonzero_bins(), 3);
        assert_eq!(h1.entries(), &[(1, 2), (2, 1), (5, 1)]);
    }

    #[test]
    fn empty_histograms() {
        let h1 = Histogram::from_keys(std::iter::empty());
        let h2 = Histogram::from_keys([3]);
        assert_eq!(h1.l1(&h2), 1);
        assert_eq!(h1.l1(&h1), 0);
        assert_eq!(h1.total(), 0);
    }

    #[test]
    fn vector_contents_on_known_tree() {
        let (v, _, t, _) = vectors("a(b(c) b)", "a");
        assert_eq!(v.size, 4);
        assert_eq!(v.height, 3);
        assert_eq!(t.height(), 3);
        // Degrees: a=2, b₁=1, c=0, b₂=0.
        assert_eq!(v.degrees.entries(), &[(0, 2), (1, 1), (2, 1)]);
        // Heights: a=3, b₁=2, c=1, b₂=1.
        assert_eq!(v.heights.entries(), &[(1, 2), (2, 1), (3, 1)]);
        assert!(v.entry_count() > 0);
    }

    #[test]
    fn all_bounds_below_edit_distance() {
        let cases = [
            ("a(b(c(d)) b e)", "a(c(d) b e)"),
            ("a(b c)", "x(y z)"),
            ("a", "a(b(c(d)))"),
            ("a(b(c(d)))", "a(b c d)"),
            ("f(d(a c(b)) e)", "f(c(d(a b)) e)"),
            ("a(b(c) d(e f) g)", "a(b)"),
            ("a(b c d e f)", "a(f e d c b)"),
        ];
        for (x, y) in cases {
            let (v1, v2, t1, t2) = vectors(x, y);
            let edist = edit_distance(&t1, &t2);
            assert!(
                v1.lower_bound(&v2) <= edist,
                "histogram bound {} > EDist {edist} on {x} vs {y}",
                v1.lower_bound(&v2)
            );
        }
    }

    #[test]
    fn label_bound_counts_relabels() {
        let (v1, v2, ..) = vectors("a(b b b)", "a(c c c)");
        assert_eq!(v1.label_lower_bound(&v2), 3);
        assert_eq!(v1.lower_bound(&v2), 3);
    }

    #[test]
    fn degree_bound_sees_structure() {
        // Same labels and sizes, different fanout profile.
        let (v1, v2, ..) = vectors("a(a(a(a)))", "a(a a a)");
        assert!(v1.degree_lower_bound(&v2) >= 1);
        assert_eq!(v1.label_lower_bound(&v2), 0);
    }

    #[test]
    fn height_bound_sees_depth() {
        let (v1, v2, ..) = vectors("a(b(c(d(e))))", "a(b c d e)");
        assert_eq!(v1.height_lower_bound(&v2), 3);
    }

    #[test]
    fn blind_spot_versus_binary_branches() {
        // Sibling reorderings are invisible to every histogram — the
        // paper's core argument for why binary branches filter better.
        let (v1, v2, t1, t2) = vectors("a(b c d)", "a(d c b)");
        assert_eq!(v1.lower_bound(&v2), 0);
        assert!(edit_distance(&t1, &t2) > 0);
    }

    #[test]
    fn helper_histograms() {
        let mut interner = LabelInterner::new();
        let t = bracket::parse(&mut interner, "a(b b)").unwrap();
        let b = interner.get("b").unwrap();
        assert_eq!(label_count(&t, b), 2);
        assert_eq!(label_histogram(&t).total(), 3);
        assert_eq!(degree_histogram(&t).entries(), &[(0, 2), (2, 1)]);
    }
}
