//! Property tests: the histogram lower bounds never exceed the true edit
//! distance on random tree pairs and random edit sequences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use treesim_datagen::mutate::apply_random_ops;
use treesim_datagen::normal::Normal;
use treesim_datagen::synthetic::{generate, SyntheticConfig};
use treesim_edit::edit_distance;
use treesim_histogram::HistogramVector;
use treesim_tree::{Forest, LabelId, TreeId};

fn small_forest(seed: u64, count: usize) -> Forest {
    generate(&SyntheticConfig {
        fanout: Normal::new(2.5, 1.0),
        size: Normal::new(10.0, 3.0),
        label_count: 5,
        decay: 0.25,
        seed_count: 2.min(count),
        tree_count: count,
        rng_seed: seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn histogram_bound_is_a_lower_bound(seed in 0u64..100_000) {
        let forest = small_forest(seed, 2);
        let t1 = forest.tree(TreeId(0));
        let t2 = forest.tree(TreeId(1));
        let edist = edit_distance(t1, t2);
        let v1 = HistogramVector::build(t1);
        let v2 = HistogramVector::build(t2);
        prop_assert!(v1.lower_bound(&v2) <= edist);
    }

    #[test]
    fn k_ops_bound_each_histogram(seed in 0u64..100_000, k in 0usize..6) {
        let forest = small_forest(seed, 1);
        let t1 = forest.tree(TreeId(0));
        let labels: Vec<LabelId> = forest
            .interner()
            .iter()
            .map(|(id, _)| id)
            .filter(|id| !id.is_epsilon())
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let (t2, ops) = apply_random_ops(t1, k, &labels, &mut rng);
        let k_applied = ops.len() as u64;
        let v1 = HistogramVector::build(t1);
        let v2 = HistogramVector::build(&t2);
        prop_assert!(v1.labels.l1(&v2.labels) <= 2 * k_applied);
        prop_assert!(v1.degrees.l1(&v2.degrees) <= 3 * k_applied);
        prop_assert!(v1.height_lower_bound(&v2) <= k_applied);
        prop_assert!(v1.size_lower_bound(&v2) <= k_applied);
    }

    #[test]
    fn bounds_are_symmetric(seed in 0u64..100_000) {
        let forest = small_forest(seed, 2);
        let v1 = HistogramVector::build(forest.tree(TreeId(0)));
        let v2 = HistogramVector::build(forest.tree(TreeId(1)));
        prop_assert_eq!(v1.lower_bound(&v2), v2.lower_bound(&v1));
    }
}
