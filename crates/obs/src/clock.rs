//! Injectable monotonic clock: the time source behind the window ring
//! ([`crate::window`]) and every SLO verdict ([`crate::slo`]).
//!
//! Production reads [`now_us`] off a process-monotonic [`Instant`]
//! anchor. Tests install a manually-advanced clock with [`manual`] —
//! the same swap-the-substrate idea as the [`crate::sync`] facade, but
//! resolved at runtime rather than at build time, because the clock must
//! be swappable from *integration* tests that drive the real global
//! server and registry. While a [`ManualClock`] guard is live, [`now_us`]
//! returns exactly what the test last set, so window rotation and every
//! burn-rate verdict derived from it are deterministic.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: MANUAL_ACTIVE = cell — mode switch between the real and
//! the manual source; flipped only by tests holding the manual-clock
//! lock, read best-effort (a reader that races an install may take one
//! more real-clock reading, which both sources tolerate)
//!
//! atomic-role: MANUAL_US = cell — the manually-set microsecond value; a
//! self-contained word, nothing else is published through it. Readers on
//! other threads additionally synchronize through the window-ring mutex
//! before acting on derived state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

static MANUAL_ACTIVE: AtomicU64 = AtomicU64::new(0);
static MANUAL_US: AtomicU64 = AtomicU64::new(0);

/// Monotonic microseconds since an arbitrary process-local epoch (the
/// first call), or the manually-set value while a [`ManualClock`] guard
/// is live. Never decreases under the real source; the manual source is
/// as monotone as the test that drives it.
pub fn now_us() -> u64 {
    if MANUAL_ACTIVE.load(Ordering::Relaxed) != 0 {
        return MANUAL_US.load(Ordering::Relaxed);
    }
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Whether a manual clock is currently installed (diagnostics only).
pub fn is_manual() -> bool {
    MANUAL_ACTIVE.load(Ordering::Relaxed) != 0
}

fn manual_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs a manually-driven clock starting at `start_us` and returns
/// the guard that controls it. The guard holds a global lock so tests
/// that inject time serialize against each other; dropping it restores
/// the real monotonic source.
pub fn manual(start_us: u64) -> ManualClock {
    let guard = manual_lock();
    MANUAL_US.store(start_us, Ordering::Relaxed);
    MANUAL_ACTIVE.store(1, Ordering::Relaxed);
    ManualClock { _guard: guard }
}

/// RAII handle to an installed manual clock (see [`manual`]).
#[derive(Debug)]
pub struct ManualClock {
    _guard: MutexGuard<'static, ()>,
}

impl ManualClock {
    /// The current manual reading.
    pub fn get(&self) -> u64 {
        MANUAL_US.load(Ordering::Relaxed)
    }

    /// Sets the clock to an absolute microsecond value.
    pub fn set(&self, us: u64) {
        MANUAL_US.store(us, Ordering::Relaxed);
    }

    /// Advances the clock by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        let now = MANUAL_US.load(Ordering::Relaxed);
        MANUAL_US.store(now.saturating_add(delta_us), Ordering::Relaxed);
    }
}

impl Drop for ManualClock {
    fn drop(&mut self) {
        MANUAL_ACTIVE.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotone() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_deterministic_and_restores() {
        {
            let clk = manual(1_000);
            assert!(is_manual());
            assert_eq!(now_us(), 1_000);
            clk.advance(500);
            assert_eq!(clk.get(), 1_500);
            assert_eq!(now_us(), 1_500);
            clk.set(10_000);
            assert_eq!(now_us(), 10_000);
        }
        assert!(!is_manual());
        // Back on the real source: readings are process-relative again.
        let a = now_us();
        assert!(now_us() >= a);
    }
}
