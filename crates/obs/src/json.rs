//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! The build environment has no network access to crates.io, so — like the
//! stand-ins under `vendor/` — this is a hand-rolled subset: just enough to
//! round-trip [`crate::MetricsSnapshot`] and the bench `BENCH_*.json`
//! perf-trajectory files. Integers are kept exact (`U64`/`I64` variants)
//! rather than funneled through `f64`, so counter values survive a
//! round-trip bit-for-bit.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (preserved exactly).
    U64(u64),
    /// A negative integer (preserved exactly).
    I64(i64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly when possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for files meant to be read
    /// and diffed by humans, like the `BENCH_*.json` trajectory).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        // Keep a decimal point so the parser reproduces the F64 variant
        // (plain `{}` would print `2` and read back as an integer).
        let _ = write!(out, "{v:.1}");
    } else {
        // `{}` on f64 is shortest-round-trip in Rust, so parse(write(v)) == v.
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 character (multi-byte safe: advance to
                    // the next char boundary).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.error("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("42", Json::U64(42)),
            ("-7", Json::I64(-7)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("1.5", Json::F64(1.5)),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.to_string_compact()).unwrap(), value);
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "tab\t nl\n back\\",
            "uni: ✓",
        ] {
            let value = Json::Str(s.to_owned());
            let text = value.to_string_compact();
            assert_eq!(parse(&text).unwrap(), value, "{text}");
        }
        assert_eq!(parse(r#""✓""#).unwrap(), Json::Str("✓".to_owned()));
    }

    #[test]
    fn nested_structures_round_trip() {
        let value = Json::obj(vec![
            ("name", Json::Str("cascade".into())),
            (
                "stages",
                Json::Arr(vec![
                    Json::obj(vec![("evaluated", Json::U64(400))]),
                    Json::obj(vec![("evaluated", Json::U64(60))]),
                ]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            ("ratio", Json::F64(0.25)),
        ]);
        for text in [value.to_string_compact(), value.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), value);
        }
        assert_eq!(value.get("name").and_then(Json::as_str), Some("cascade"));
        assert_eq!(
            value
                .get("stages")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(value.get("ratio").and_then(Json::as_f64), Some(0.25));
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in [
            "", "{", "[1,", "{\"a\":}", "tru", "\"open", "1 2", "{'a':1}",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
        let err = parse("[1,]").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
