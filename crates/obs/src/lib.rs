//! `treesim-obs` — first-party observability for the treesim workspace:
//! a global lock-free metrics registry and lightweight span tracing.
//!
//! The build environment has no network access to crates.io, so — like the
//! stand-ins under `vendor/` — this is hand-rolled on `std` alone rather
//! than an import of `tracing`/`metrics`. It provides exactly what the
//! cascade, refinement and bench pipelines need:
//!
//! * **Metrics** ([`mod@metrics`]): atomic [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log₂ [`Histogram`]s registered by name, snapshotable to
//!   a [`MetricsSnapshot`] that round-trips through JSON (the
//!   `BENCH_*.json` perf-trajectory format).
//! * **Spans** ([`mod@span`]): RAII [`span!`] guards that record
//!   wall-clock into `<name>.us` histograms, a point [`event!`] macro, and
//!   a pluggable [`Sink`] with three impls — [`PrettySink`] (stderr),
//!   [`JsonLinesSink`], and [`TestSink`] for assertions. With no sink
//!   installed the only cost is the histogram update (one `Acquire`
//!   atomic bool guards everything else).
//! * **Flight recorder** ([`mod@recorder`]): an always-on, bounded,
//!   sharded ring of structured per-query [`QueryRecord`]s — the
//!   query-level complement to the aggregate registry. O(capacity)
//!   memory, allocation-free recording after warm-up, drainable to JSON.
//! * **Exporter** ([`mod@server`] + [`mod@prometheus`]): a std-only
//!   `TcpListener` HTTP endpoint serving `/metrics` (Prometheus text
//!   exposition 0.0.4), `/snapshot.json`, `/recorder.json` (with a
//!   `?since=<seq>` cursor), `/trace.json` (Chrome trace-event format),
//!   `/slo.json` and `/health`.
//! * **Windows & SLOs** ([`mod@window`] + [`mod@slo`] + [`mod@clock`]): a
//!   rotating ring of per-interval registry deltas (windowed counters and
//!   p50/p90/p99 from the same log₂ buckets), driven by an injectable
//!   monotonic clock, feeding declarative SLO targets with SRE-style
//!   fast/slow burn-rate evaluation, an error-budget accountant, and the
//!   `/health` + `/slo.json` endpoints.
//! * **Traces** ([`mod@trace`]): per-query span *trees* — every span
//!   entered while a [`trace::start_trace`] capture is live (including on
//!   worker threads that joined via a [`trace::TraceHandle`]) carries a
//!   parent id and is reassembled into a [`trace::Trace`] held in a
//!   bounded ring, exportable as Chrome trace-event JSON or an indented
//!   tree. Latency histograms stamp the current trace id into the bucket
//!   each sample lands in (**exemplars**), linking `/metrics` tails back
//!   to a concrete recorded query.
//!
//! # Naming scheme
//!
//! Dotted lowercase paths, coarse-to-fine: `engine.knn.*` /
//! `engine.range.*` for query-level measures, `cascade.<stage>.*`
//! (`size`, `bdist`, `propt`, `histo`) for per-stage funnel counters,
//! `refine.zs.*` for Zhang–Shasha refinement, `dynamic.*` for the
//! appendable index, `cluster.*`/`classify.*` for the similarity
//! applications, `trace.*` for the trace layer itself, and
//! `window.*`/`slo.*` for the windowed-aggregation ring and the SLO
//! engine's published burn-rate/budget gauges. Histograms of durations
//! end in `.us` (microseconds).
//! The scheme is a checked contract, not a convention: [`mod@naming`]
//! holds the grammar ([`naming::KNOWN_PREFIXES`],
//! [`naming::CASCADE_STAGES`], [`naming::validate_metric_name`]), the
//! `xtask analyze` metric-name lint enforces it statically over every
//! name literal, and a cross-crate integration test validates every name
//! the engine actually emits.
//!
//! # Example
//!
//! ```
//! let queries = treesim_obs::counter!("example.queries");
//! {
//!     let _span = treesim_obs::span!("example.query", k = 5);
//!     queries.inc();
//! }
//! let snap = treesim_obs::metrics::snapshot();
//! assert!(snap.counter("example.queries").unwrap() >= 1);
//! assert!(snap.histogram("example.query.us").unwrap().count >= 1);
//! // The snapshot round-trips through JSON:
//! let text = snap.to_json_string();
//! assert_eq!(
//!     treesim_obs::MetricsSnapshot::from_json_str(&text).unwrap(),
//!     snap,
//! );
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod json;
pub mod metrics;
pub mod model;
pub mod naming;
pub mod prometheus;
pub mod recorder;
pub mod server;
pub mod slo;
pub mod span;
pub mod sync;
pub mod trace;
pub mod window;

pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{
    bucket_index, bucket_upper_edge, Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram,
    HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use recorder::{BatchContext, FlightRecorder, QueryKind, QueryRecord, StageRecord};
pub use server::{MetricsServer, ServerHandle};
pub use slo::{Objective, SloReport, SloTarget, TargetVerdict};
pub use span::{
    clear_sink, current_depth, current_spans, install_sink, sink_active, Event, EventKind,
    JsonLinesSink, OwnedEvent, PrettySink, Sink, SpanGuard, TestSink,
};
pub use trace::{current_trace_id, start_trace, trace_active, Trace, TraceGuard, TraceSpan};
pub use window::{SealedInterval, WindowRing};

/// Resolves (and caches per call-site) the counter named by a string
/// literal. Expands to `&'static Counter`; the registry lookup happens
/// once, after which use is a single relaxed atomic add.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Resolves (and caches per call-site) the gauge named by a string literal.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

/// Resolves (and caches per call-site) the histogram named by a string
/// literal.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::histogram($name))
    }};
}

/// Opens an RAII span: `let _span = span!("engine.knn");` or
/// `span!("cascade.stage", name = stage, k = 5)`.
///
/// The guard records wall-clock into the `<name>.us` histogram when
/// dropped. Field values are formatted with `Display` — and only when
/// someone will see them (a sink is installed or a trace capture is live
/// on this thread), so uninstrumented runs never pay for formatting.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanGuard::enter(
            $name,
            $crate::histogram!(::std::concat!($name, ".us")),
            ::std::vec::Vec::new(),
        )
    };
    ($name:literal, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::SpanGuard::enter(
            $name,
            $crate::histogram!(::std::concat!($name, ".us")),
            if $crate::sink_active() || $crate::trace_active() {
                ::std::vec![$((::std::stringify!($key), ::std::format!("{}", $value))),+]
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

/// Emits a point event to the installed sink (no-op without one):
/// `event!("engine.knn.done", results = n)`. Field values are only
/// formatted when a sink is installed.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::span::emit_event($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        if $crate::sink_active() {
            $crate::span::emit_event(
                $name,
                &[$((::std::stringify!($key), ::std::format!("{}", $value))),+],
            )
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_handles_per_call_site() {
        let a = counter!("test.lib.macro_counter");
        let b = counter!("test.lib.macro_counter");
        // Two call-sites, one registered metric.
        assert!(std::ptr::eq(a, b));
        let g = gauge!("test.lib.macro_gauge");
        g.set(1);
        let h = histogram!("test.lib.macro_hist");
        h.record(2);
        assert!(h.count() >= 1);
    }

    #[test]
    fn span_macro_records_named_histogram() {
        {
            let _span = span!("test.lib.span_macro");
        }
        let h = crate::metrics::histogram("test.lib.span_macro.us");
        assert!(h.count() >= 1);
    }
}
