//! A global, lock-free metrics registry: atomic [`Counter`]s, [`Gauge`]s
//! and fixed-bucket log₂ [`Histogram`]s, registered by name and
//! snapshotable to a JSON-round-trippable [`MetricsSnapshot`].
//!
//! Handles are `&'static` — the registry leaks one allocation per distinct
//! metric name (a small, bounded set) so the hot path is a plain atomic
//! add with no locking. Name lookup takes a mutex; resolve handles once
//! (the [`crate::counter!`]/[`crate::gauge!`]/[`crate::histogram!`] macros
//! cache per call-site) or once per query, never per candidate.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: value = counter — Counter/Gauge tallies: Relaxed RMWs are
//! atomic and monotone per cell; readers want a recent value, not a
//! synchronized one
//!
//! atomic-role: buckets = counter — histogram bucket tallies, same
//! contract as `value`
//!
//! atomic-role: count = counter — histogram observation count
//!
//! atomic-role: sum = counter — histogram running sum
//!
//! atomic-role: max = counter — histogram running max via `fetch_max`
//!
//! atomic-role: exemplars = cell — best-effort trace-id breadcrumb per
//! bucket; a racing overwrite loses nothing but a hint

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::json::{parse, Json, JsonError};

/// Number of log₂ histogram buckets: bucket 0 counts zeros, bucket `i ≥ 1`
/// counts values in `[2^(i−1), 2^i)`; the last bucket absorbs overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &str) -> Self {
        Counter {
            name: name.to_owned(),
            value: AtomicU64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// An atomic gauge: a value that can go up and down.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &str) -> Self {
        Gauge {
            name: name.to_owned(),
            value: AtomicI64::new(0),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket log₂ histogram of `u64` samples.
///
/// Recording is three relaxed atomic adds (bucket, count, sum) plus a
/// compare-exchange loop for the max — no allocation, no locking, safe to
/// hammer from many threads.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Exemplars: per bucket, the id of the last trace (see
    /// [`crate::trace`]) whose sample landed there, 0 when none — the
    /// link from a latency tail in `/metrics` to a recorded span tree.
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Bucket index of a sample: 0 for 0, otherwise `64 − leading_zeros(v)`
/// clamped into range (values in `[2^(i−1), 2^i)` land in bucket `i`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `i` (`0` for bucket 0, else `2^i − 1`).
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    fn new(name: &str) -> Self {
        Histogram {
            name: name.to_owned(),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records one sample. When a trace capture is live on this thread,
    /// the bucket additionally remembers the trace id as its exemplar
    /// (one thread-local read plus one relaxed store — free otherwise).
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = bucket_index(v);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        let trace_id = crate::trace::current_trace_id();
        if trace_id != 0 {
            self.exemplars[bucket].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Records a duration in microseconds (the convention for `*.us`
    /// histograms; sub-microsecond spans land in bucket 0).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for exemplar in &self.exemplars {
            exemplar.store(0, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let v = b.load(Ordering::Relaxed);
                    (v > 0).then_some((i as u8, v))
                })
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    let id = e.load(Ordering::Relaxed);
                    (id > 0).then_some((i as u8, id))
                })
                .collect(),
        }
    }
}

/// The global registry. Lookup is mutex-guarded (cold path); the returned
/// `&'static` handles are pure atomics (hot path).
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name` (registering it on first use).
pub fn counter(name: &str) -> &'static Counter {
    let mut map = registry()
        .counters
        .lock()
        .expect("metrics registry poisoned");
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter::new(name)));
    map.insert(name.to_owned(), leaked);
    leaked
}

/// The gauge registered under `name` (registering it on first use).
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = registry().gauges.lock().expect("metrics registry poisoned");
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::new(name)));
    map.insert(name.to_owned(), leaked);
    leaked
}

/// The histogram registered under `name` (registering it on first use).
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = registry()
        .histograms
        .lock()
        .expect("metrics registry poisoned");
    if let Some(&existing) = map.get(name) {
        return existing;
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new(name)));
    map.insert(name.to_owned(), leaked);
    leaked
}

/// Zeroes every registered metric (names stay registered). For isolating
/// benchmark runs and tests; concurrent recorders may interleave.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().expect("poisoned").values() {
        c.reset();
    }
    for g in reg.gauges.lock().expect("poisoned").values() {
        g.reset();
    }
    for h in reg.histograms.lock().expect("poisoned").values() {
        h.reset();
    }
}

/// Captures the current value of every registered metric, sorted by name.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    MetricsSnapshot {
        counters: reg
            .counters
            .lock()
            .expect("poisoned")
            .values()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c.get(),
            })
            .collect(),
        gauges: reg
            .gauges
            .lock()
            .expect("poisoned")
            .values()
            .map(|g| GaugeSnapshot {
                name: g.name.clone(),
                value: g.get(),
            })
            .collect(),
        histograms: reg
            .histograms
            .lock()
            .expect("poisoned")
            .values()
            .map(|h| h.snapshot())
            .collect(),
    }
}

/// A counter's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Captured value.
    pub value: u64,
}

/// A gauge's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Captured value.
    pub value: i64,
}

/// A histogram's captured state; only non-empty buckets are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// `(bucket index, sample count)` for each non-empty bucket.
    pub buckets: Vec<(u8, u64)>,
    /// `(bucket index, trace id)` exemplars: the last traced query whose
    /// sample landed in each bucket (empty when no trace was live).
    pub exemplars: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q` ∈ [0, 1]) from the log₂ buckets.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// rank-`⌈q·count⌉` sample and returns that bucket's inclusive upper
    /// edge, clamped to the observed max. Because bucket `i ≥ 1` spans
    /// `[2^(i−1), 2^i)`, the estimate overshoots the true quantile by at
    /// most a factor of 2 (see DESIGN §Observability). Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(i, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_edge(usize::from(i)).min(self.max);
            }
        }
        self.max
    }

    /// Estimated median ([`HistogramSnapshot::quantile`] at 0.5).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The exemplar trace id recorded for bucket `i`, if any.
    pub fn exemplar(&self, i: u8) -> Option<u64> {
        self.exemplars
            .iter()
            .find(|&&(bucket, _)| bucket == i)
            .map(|&(_, id)| id)
    }

    /// Samples recorded in buckets whose inclusive upper edge exceeds
    /// `threshold` — the pessimistic "bad sample" count for a latency
    /// objective (a bucket straddling the threshold counts fully, the
    /// same upper-edge convention as [`HistogramSnapshot::quantile`]).
    pub fn count_over(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .filter(|&&(i, _)| bucket_upper_edge(usize::from(i)) > threshold)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Bucket-wise delta against an `earlier` capture of the same
    /// histogram: what was recorded *between* the two snapshots. Count,
    /// sum and every bucket diff saturating (concurrent recorders make
    /// snapshots best-effort, never negative); `max` is approximated by
    /// the upper edge of the highest non-empty delta bucket (clamped to
    /// the cumulative max) because the registry only tracks a lifetime
    /// max. Exemplars are dropped — they are lifetime breadcrumbs, not
    /// interval data. Windowed quantiles fall out of the same
    /// [`HistogramSnapshot::quantile`] machinery applied to the delta.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let before: BTreeMap<u8, u64> = earlier.buckets.iter().copied().collect();
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .filter_map(|&(i, n)| {
                let d = n.saturating_sub(before.get(&i).copied().unwrap_or(0));
                (d > 0).then_some((i, d))
            })
            .collect();
        let max = buckets
            .last()
            .map(|&(i, _)| bucket_upper_edge(usize::from(i)).min(self.max))
            .unwrap_or(0);
        HistogramSnapshot {
            name: self.name.clone(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max,
            buckets,
            exemplars: Vec::new(),
        }
    }

    /// Accumulates `other` into `self` bucket-wise (count/sum/bucket
    /// adds, max of maxes) — the inverse of [`HistogramSnapshot::
    /// delta_since`], used to sum per-interval deltas into a window.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut combined: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(i, n) in &other.buckets {
            *combined.entry(i).or_insert(0) += n;
        }
        self.buckets = combined.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// A point-in-time capture of the whole registry, JSON round-trippable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The captured value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The captured value of gauge `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// The captured state of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Counter delta against an earlier snapshot (0 if absent in either).
    pub fn counter_delta(&self, earlier: &MetricsSnapshot, name: &str) -> u64 {
        self.counter(name)
            .unwrap_or(0)
            .saturating_sub(earlier.counter(name).unwrap_or(0))
    }

    /// The registry activity *between* `earlier` and `self`, as a
    /// snapshot-shaped value (the [`crate::window`] interval-delta type):
    /// counters are diffed (entries that did not move are dropped),
    /// histograms are bucket-diffed via [`HistogramSnapshot::delta_since`]
    /// (empty deltas dropped), and gauges keep their point-in-time value
    /// from `self` — a gauge is a level, not a flow, so "the gauge over
    /// the last interval" means "the gauge now".
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let empty = |name: &str| HistogramSnapshot {
            name: name.to_owned(),
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
            exemplars: Vec::new(),
        };
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter_map(|c| {
                    let d = c
                        .value
                        .saturating_sub(earlier.counter(&c.name).unwrap_or(0));
                    (d > 0).then(|| CounterSnapshot {
                        name: c.name.clone(),
                        value: d,
                    })
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter_map(|h| {
                    let d = match earlier.histogram(&h.name) {
                        Some(e) => h.delta_since(e),
                        None => h.delta_since(&empty(&h.name)),
                    };
                    (d.count > 0 || !d.buckets.is_empty()).then_some(d)
                })
                .collect(),
        }
    }

    /// Accumulates `other` into `self`: counters add, histograms merge
    /// bucket-wise, gauges take `other`'s value where present (merge
    /// oldest→newest and the result carries the newest level). Inverse of
    /// [`MetricsSnapshot::delta_since`]; summing interval deltas this way
    /// yields a windowed snapshot the quantile machinery reads directly.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.value = mine.value.saturating_add(c.value),
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for g in &other.gauges {
            match self.gauges.iter_mut().find(|mine| mine.name == g.name) {
                Some(mine) => mine.value = g.value,
                None => self.gauges.push(g.clone()),
            }
        }
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        for h in &other.histograms {
            match self.histograms.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.histograms.push(h.clone()),
            }
        }
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Converts to a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::Str(c.name.clone())),
                                ("value", Json::U64(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|g| {
                            Json::obj(vec![
                                ("name", Json::Str(g.name.clone())),
                                (
                                    "value",
                                    if g.value >= 0 {
                                        Json::U64(g.value as u64)
                                    } else {
                                        Json::I64(g.value)
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            let mut fields = vec![
                                ("name", Json::Str(h.name.clone())),
                                ("count", Json::U64(h.count)),
                                ("sum", Json::U64(h.sum)),
                                ("max", Json::U64(h.max)),
                                (
                                    "buckets",
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(i, n)| {
                                                Json::Arr(vec![
                                                    Json::U64(u64::from(i)),
                                                    Json::U64(n),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ];
                            // Omitted when empty so traced and untraced
                            // runs of the same workload serialize alike
                            // (committed BENCH_*.json baselines predate
                            // exemplars).
                            if !h.exemplars.is_empty() {
                                fields.push((
                                    "exemplars",
                                    Json::Arr(
                                        h.exemplars
                                            .iter()
                                            .map(|&(i, id)| {
                                                Json::Arr(vec![
                                                    Json::U64(u64::from(i)),
                                                    Json::U64(id),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Serializes to a pretty JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(value: &Json) -> Result<MetricsSnapshot, JsonError> {
        let bad = |message: &str| JsonError {
            offset: 0,
            message: message.to_owned(),
        };
        let str_field = |obj: &Json, key: &str| -> Result<String, JsonError> {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing string field {key:?}")))
        };
        let u64_field = |obj: &Json, key: &str| -> Result<u64, JsonError> {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(&format!("missing u64 field {key:?}")))
        };
        let arr_field = |obj: &Json, key: &str| -> Result<Vec<Json>, JsonError> {
            obj.get(key)
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| bad(&format!("missing array field {key:?}")))
        };

        let mut snapshot = MetricsSnapshot::default();
        for c in arr_field(value, "counters")? {
            snapshot.counters.push(CounterSnapshot {
                name: str_field(&c, "name")?,
                value: u64_field(&c, "value")?,
            });
        }
        for g in arr_field(value, "gauges")? {
            let raw = g.get("value").ok_or_else(|| bad("missing gauge value"))?;
            let value = match *raw {
                Json::U64(v) => i64::try_from(v).map_err(|_| bad("gauge out of range"))?,
                Json::I64(v) => v,
                _ => return Err(bad("gauge value must be an integer")),
            };
            snapshot.gauges.push(GaugeSnapshot {
                name: str_field(&g, "name")?,
                value,
            });
        }
        for h in arr_field(value, "histograms")? {
            let pairs = |key: &'static str, required: bool| -> Result<Vec<(u8, u64)>, JsonError> {
                if !required && h.get(key).is_none() {
                    return Ok(Vec::new());
                }
                let mut out = Vec::new();
                for pair in arr_field(&h, key)? {
                    let [index, second] = pair
                        .as_array()
                        .ok_or_else(|| bad(&format!("{key} entry must be a pair")))?
                    else {
                        return Err(bad(&format!("{key} entry must be a pair")));
                    };
                    let index = index.as_u64().ok_or_else(|| bad("bucket index"))?;
                    let second = second.as_u64().ok_or_else(|| bad("bucket value"))?;
                    out.push((
                        u8::try_from(index).map_err(|_| bad("bucket index out of range"))?,
                        second,
                    ));
                }
                Ok(out)
            };
            snapshot.histograms.push(HistogramSnapshot {
                name: str_field(&h, "name")?,
                count: u64_field(&h, "count")?,
                sum: u64_field(&h, "sum")?,
                max: u64_field(&h, "max")?,
                buckets: pairs("buckets", true)?,
                // Optional: absent in pre-trace-layer baselines.
                exemplars: pairs("exemplars", false)?,
            });
        }
        Ok(snapshot)
    }

    /// Parses a snapshot from a JSON string.
    pub fn from_json_str(text: &str) -> Result<MetricsSnapshot, JsonError> {
        Self::from_json(&parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let a = counter("test.metrics.counter_once");
        let b = counter("test.metrics.counter_once");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(a.name(), "test.metrics.counter_once");

        let g = gauge("test.metrics.gauge_once");
        assert!(std::ptr::eq(g, gauge("test.metrics.gauge_once")));
        g.set(5);
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(63), u64::MAX);
        // Every value lands in a bucket whose upper edge covers it.
        for v in [0u64, 1, 7, 100, 4096, 1 << 40] {
            assert!(bucket_upper_edge(bucket_index(v)) >= v);
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = histogram("test.metrics.hist");
        h.record(0);
        h.record(1);
        h.record(100);
        h.record_duration(Duration::from_micros(3));
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 104);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.0).abs() < 1e-12);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        let total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 4);
        assert!((snap.mean() - 26.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = histogram("test.metrics.quantiles");
        // 90 small samples (bucket 3: values in [4, 8)) and 10 large
        // (bucket 11: values in [1024, 2048)).
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let snap = h.snapshot();
        // p50 and p90 land in the small bucket (upper edge 7); p99 lands
        // in the large bucket, clamped to the observed max.
        assert_eq!(snap.p50(), 7);
        assert_eq!(snap.p90(), 7);
        assert_eq!(snap.p99(), 1500);
        assert_eq!(snap.quantile(1.0), 1500);
        // Degenerate cases.
        let empty = HistogramSnapshot {
            name: "test.metrics.empty".to_owned(),
            count: 0,
            sum: 0,
            max: 0,
            buckets: Vec::new(),
            exemplars: Vec::new(),
        };
        assert_eq!(empty.p50(), 0);
        let single = histogram("test.metrics.quantiles_single");
        single.record(100);
        assert_eq!(single.snapshot().p50(), 100); // clamped to max
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        counter("test.metrics.rt.counter").add(42);
        gauge("test.metrics.rt.gauge").set(-7);
        histogram("test.metrics.rt.hist").record(1000);
        let snap = snapshot();
        assert!(snap.counter("test.metrics.rt.counter").unwrap() >= 42);
        assert_eq!(snap.gauge("test.metrics.rt.gauge"), Some(-7));
        assert!(snap.histogram("test.metrics.rt.hist").is_some());
        assert_eq!(snap.histogram("test.metrics.rt.missing"), None);

        let text = snap.to_json_string();
        let parsed = MetricsSnapshot::from_json_str(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn exemplars_stamp_the_current_trace_and_round_trip() {
        let h = histogram("test.metrics.exemplars");
        h.record(100); // no trace live → no exemplar
        assert!(h.snapshot().exemplars.is_empty());
        let id = {
            let trace = crate::trace::start_trace();
            h.record(100);
            trace.id()
        };
        let snap = h.snapshot();
        assert_eq!(snap.exemplar(bucket_index(100) as u8), Some(id));
        // The exemplars key survives the snapshot JSON round-trip…
        let full = snapshot();
        let parsed = MetricsSnapshot::from_json_str(&full.to_json_string()).unwrap();
        assert_eq!(
            parsed
                .histogram("test.metrics.exemplars")
                .unwrap()
                .exemplars,
            snap.exemplars,
        );
        // …and untraced histograms serialize without it (baseline compat).
        let text = h0_json_text("test.metrics.untraced");
        assert!(!text.contains("\"exemplars\""), "{text}");
    }

    fn h0_json_text(name: &str) -> String {
        histogram(name).record(1);
        let snap = snapshot();
        let h = snap.histogram(name).unwrap();
        let only = MetricsSnapshot {
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: vec![h.clone()],
        };
        only.to_json_string()
    }

    #[test]
    fn counter_delta_between_snapshots() {
        let c = counter("test.metrics.delta");
        let before = snapshot();
        c.add(9);
        let after = snapshot();
        assert_eq!(after.counter_delta(&before, "test.metrics.delta"), 9);
        assert_eq!(after.counter_delta(&before, "test.metrics.absent"), 0);
    }

    #[test]
    fn histogram_delta_and_merge_round_trip() {
        let h = histogram("test.metrics.window_delta");
        h.record(5);
        h.record(5);
        let before = h.snapshot();
        h.record(5);
        h.record(1500);
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 1505);
        // One new sample per touched bucket; untouched history is gone.
        let total: u64 = delta.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 2);
        // Delta max is the highest delta bucket's edge clamped to max.
        assert_eq!(delta.max, 1500);
        // Quantiles work on the delta alone (both samples, p50 in the
        // small bucket).
        assert_eq!(delta.p50(), 7);
        // Merging the delta back onto `before` reproduces `after`'s
        // bucket content exactly (exemplars aside).
        let mut rebuilt = before.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count, after.count);
        assert_eq!(rebuilt.sum, after.sum);
        assert_eq!(rebuilt.buckets, after.buckets);
        // count_over is pessimistic at bucket granularity.
        assert_eq!(after.count_over(1023), 1);
        assert_eq!(after.count_over(7), 1);
        assert_eq!(after.count_over(6), 4, "straddling bucket counts fully");
    }

    #[test]
    fn snapshot_delta_diffs_counters_and_keeps_gauge_levels() {
        let c = counter("test.metrics.sdelta.counter");
        let g = gauge("test.metrics.sdelta.gauge");
        let h = histogram("test.metrics.sdelta.hist");
        c.add(3);
        g.set(10);
        h.record(7);
        let before = snapshot();
        c.add(4);
        g.set(-2);
        let after = snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.counter("test.metrics.sdelta.counter"), Some(4));
        // Gauges carry the level, not a diff.
        assert_eq!(delta.gauge("test.metrics.sdelta.gauge"), Some(-2));
        // Histograms that saw no traffic drop out of the delta.
        assert_eq!(delta.histogram("test.metrics.sdelta.hist"), None);
        // Merging two deltas sums counters and keeps the newest gauge.
        let mut merged = delta.clone();
        merged.merge(&delta);
        assert_eq!(merged.counter("test.metrics.sdelta.counter"), Some(8));
        assert_eq!(merged.gauge("test.metrics.sdelta.gauge"), Some(-2));
    }

    #[test]
    fn from_json_rejects_malformed_snapshots() {
        for text in [
            "{}",
            r#"{"counters":[],"gauges":[],"histograms":[{"name":"x"}]}"#,
            r#"{"counters":[{"value":1}],"gauges":[],"histograms":[]}"#,
            r#"{"counters":[],"gauges":[{"name":"g","value":"no"}],"histograms":[]}"#,
        ] {
            assert!(MetricsSnapshot::from_json_str(text).is_err(), "{text}");
        }
    }
}
