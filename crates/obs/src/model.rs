//! A first-party interleaving model checker for the lock-free obs core:
//! exhaustive DFS over thread schedules *and* weak-memory read choices,
//! with a preemption bound and seen-state pruning. Zero dependencies.
//!
//! # What it does
//!
//! [`explore`] runs a small concurrent protocol — a per-run shared state
//! built by `setup`, `threads` bodies indexed 0..n, and a final `check` —
//! under every schedule the bounds admit. The bodies use the shim types
//! below ([`AtomicU64`], [`AtomicBool`], [`Mutex`]); each shim operation
//! is one atomic *step*, and between steps the scheduler may switch
//! threads. Atomic loads additionally branch over every write the C11-ish
//! memory model lets them observe, so a `Relaxed` load really can read a
//! stale value even on a strongly-ordered host. A failed [`verify`], a
//! thread panic, a deadlock, or an exhausted op budget aborts the run and
//! [`explore`] returns the failing schedule.
//!
//! Production code reaches the shims through the [`crate::sync`] facade:
//! a `RUSTFLAGS="--cfg treesim_model"` build swaps them in for
//! `std::sync`, so `crates/obs/tests/model.rs` drives the *real* flight
//! recorder, plus mirrors of the `SINK_ACTIVE` and trace-ring protocols,
//! through this checker.
//!
//! # The memory model (and its approximations)
//!
//! Per atomic location the checker keeps the full write history; per
//! thread (and per mutex) it keeps a view: for each location, the oldest
//! write index that thread may still read. A load picks any write at or
//! after the view (branching the DFS), then advances the view to it
//! (coherence: a thread never reads older than it has read). A `Release`
//! store attaches the writer's view to the write; an `Acquire` load of
//! such a write joins it into the reader's view — that is the
//! happens-before edge. RMWs read the newest write (atomicity) and pass
//! an inherited `Release` view through, approximating release sequences.
//! Mutexes carry a view from unlock to the next lock.
//!
//! Approximations, deliberately on the conservative-for-our-protocols
//! side: modification order equals execution order (no store reordering,
//! so store-buffer-only anomalies are missed); `SeqCst` is treated as
//! `AcqRel` (there is no global order stronger than the per-location
//! histories — fine here because the analyzer denies `SeqCst` anyway);
//! seen-state pruning assumes thread-local state is a deterministic
//! function of the values the shims returned (bodies must not branch on
//! wall-clock, randomness, or addresses). See DESIGN.md §14 for the full
//! contract.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: cell = cell — the [`AtomicBool`] shim's backing word; its
//! orderings belong to the code under test (forwarded verbatim), not to a
//! protocol of this module, so there is no pairing to enforce here

use std::cell::RefCell;
use std::collections::HashSet;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as StdU64;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, OnceLock, PoisonError};
use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// Panic payload used to unwind model threads when a run aborts; caught
/// by the per-thread `catch_unwind`, never user-visible.
const ABORT: &str = "treesim-model-abort";

/// Bounds for one [`explore`] call.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum involuntary context switches per schedule (`None` =
    /// unbounded). Switching away from a thread that just blocked or
    /// finished is free; bounding only preemptions keeps the state space
    /// polynomial while still covering every small race window.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules; exceeding it is a *failure* (the
    /// exploration was not exhaustive, so the pass proves nothing).
    pub max_schedules: u64,
    /// Per-schedule step budget; exceeding it reports a likely livelock.
    pub max_ops: u64,
    /// Skip re-branching schedule decisions in states already visited
    /// (memory + views + per-thread progress). Sound under the
    /// determinism contract in the module docs; disable to force a full
    /// tree walk.
    pub state_pruning: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            preemption_bound: Some(3),
            max_schedules: 500_000,
            max_ops: 20_000,
            state_pruning: true,
        }
    }
}

/// Summary of a successful exhaustive exploration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Schedules fully executed.
    pub schedules: u64,
    /// Schedule decisions not branched because the state was already
    /// visited.
    pub pruned: u64,
}

/// A failed exploration: what went wrong and the schedule that did it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable description (assertion message, deadlock report,
    /// budget overrun).
    pub message: String,
    /// The decision sequence of the failing schedule (thread picks and
    /// read picks, interleaved in decision order).
    pub schedule: Vec<usize>,
    /// Schedules executed before the failure surfaced.
    pub schedules_run: u64,
}

/// One DFS decision: `chosen` of `n` alternatives.
#[derive(Debug, Clone, Copy)]
struct Step {
    chosen: usize,
    n: usize,
}

/// Where a model thread is, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Status {
    /// Executing between steps.
    Running,
    /// Parked at a step, waiting to be picked.
    AtYield,
    /// Picked; owns the next step.
    Granted,
    /// Waiting for the mutex with this id.
    Blocked(usize),
    /// Body returned (or unwound).
    Finished,
}

/// One write in a location's history.
#[derive(Debug, Clone, Hash)]
struct Write {
    val: u64,
    /// The writer's view at the write, present iff the write was
    /// `Release`-class — what an `Acquire` reader synchronizes with.
    msg: Option<Vec<usize>>,
}

/// Model state of one mutex.
#[derive(Debug, Clone, Default, Hash)]
struct LockSt {
    held_by: Option<usize>,
    /// View released by the last unlock; joined into the next locker.
    view: Vec<usize>,
}

/// Pointwise-max view join (`b` may be shorter or longer than `a`).
fn join(a: &mut Vec<usize>, b: &[usize]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

fn view_get(v: &[usize], loc: usize) -> usize {
    v.get(loc).copied().unwrap_or(0)
}

fn view_set(v: &mut Vec<usize>, loc: usize, idx: usize) {
    if v.len() <= loc {
        v.resize(loc + 1, 0);
    }
    v[loc] = idx;
}

/// Whether `o` synchronizes as a release on the store side (`SeqCst` is
/// treated as `AcqRel`, see the module docs).
fn release_class(o: Ordering) -> bool {
    !matches!(o, Ordering::Relaxed | Ordering::Acquire)
}

/// Whether `o` synchronizes as an acquire on the load side.
fn acquire_class(o: Ordering) -> bool {
    !matches!(o, Ordering::Relaxed | Ordering::Release)
}

/// Everything mutable about the current run, under one mutex.
#[derive(Debug)]
struct SchedState {
    statuses: Vec<Status>,
    /// Per-location write histories (index 0 is the initial value).
    writes: Vec<Vec<Write>>,
    /// Per-thread views.
    views: Vec<Vec<usize>>,
    locks: Vec<LockSt>,
    /// DFS path: replayed up to `cursor`, extended at the frontier.
    path: Vec<Step>,
    cursor: usize,
    preemptions: usize,
    last_tid: Option<usize>,
    ops: u64,
    op_counts: Vec<u64>,
    failure: Option<String>,
    aborting: bool,
    /// Hashes of states whose schedule decisions were already branched.
    seen: HashSet<u64>,
    pruned: u64,
}

impl SchedState {
    fn new(threads: usize) -> SchedState {
        SchedState {
            statuses: vec![Status::Running; threads],
            writes: Vec::new(),
            views: vec![Vec::new(); threads],
            locks: Vec::new(),
            path: Vec::new(),
            cursor: 0,
            preemptions: 0,
            last_tid: None,
            ops: 0,
            op_counts: vec![0; threads],
            failure: None,
            aborting: false,
            seen: HashSet::new(),
            pruned: 0,
        }
    }

    /// Resets per-run state; the DFS path and seen set persist.
    fn reset(&mut self, threads: usize) {
        self.statuses = vec![Status::Running; threads];
        self.writes.clear();
        self.views = vec![Vec::new(); threads];
        self.locks.clear();
        self.cursor = 0;
        self.preemptions = 0;
        self.last_tid = None;
        self.ops = 0;
        self.op_counts = vec![0; threads];
        self.failure = None;
        self.aborting = false;
    }

    /// Takes one DFS decision over `n` alternatives. Replays the path
    /// while it lasts; at the frontier records a new step (collapsed to a
    /// single alternative when `prune`), so replay and frontier always
    /// consume exactly one step per decision.
    fn decide(&mut self, n: usize, prune: bool) -> usize {
        debug_assert!(n > 0);
        if self.cursor < self.path.len() {
            let s = self.path[self.cursor];
            self.cursor += 1;
            return s.chosen.min(n.saturating_sub(1));
        }
        let n = if prune { 1 } else { n };
        self.path.push(Step { chosen: 0, n });
        self.cursor += 1;
        0
    }

    /// Advances the DFS to the next unexplored schedule. `false` when the
    /// whole bounded tree has been walked.
    fn backtrack(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.chosen + 1 < last.n {
                last.chosen += 1;
                return true;
            }
            self.path.pop();
        }
        false
    }

    /// Hash of everything that determines future behavior under the
    /// determinism contract.
    fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.statuses.hash(&mut h);
        self.writes.hash(&mut h);
        self.views.hash(&mut h);
        self.locks.hash(&mut h);
        self.op_counts.hash(&mut h);
        self.preemptions.hash(&mut h);
        self.last_tid.hash(&mut h);
        h.finish()
    }

    fn fail(&mut self, message: String) {
        if self.failure.is_none() {
            self.failure = Some(message);
        }
        self.aborting = true;
    }

    fn schedule_of(&self) -> Vec<usize> {
        self.path[..self.cursor.min(self.path.len())]
            .iter()
            .map(|s| s.chosen)
            .collect()
    }

    // -- memory operations, applied while a thread owns its step --------

    fn alloc_loc(&mut self, initial: u64) -> usize {
        self.writes.push(vec![Write {
            val: initial,
            msg: None,
        }]);
        self.writes.len() - 1
    }

    fn alloc_lock(&mut self) -> usize {
        self.locks.push(LockSt::default());
        self.locks.len() - 1
    }

    fn atomic_load(&mut self, tid: usize, loc: usize, order: Ordering) -> u64 {
        let min = view_get(&self.views[tid], loc);
        let n = self.writes[loc].len() - min;
        let pick = min + self.decide(n, false);
        let (val, msg) = {
            let w = &self.writes[loc][pick];
            (w.val, w.msg.clone())
        };
        view_set(&mut self.views[tid], loc, pick);
        if acquire_class(order) {
            if let Some(mv) = msg {
                join(&mut self.views[tid], &mv);
            }
        }
        val
    }

    fn atomic_store(&mut self, tid: usize, loc: usize, val: u64, order: Ordering) {
        let idx = self.writes[loc].len();
        view_set(&mut self.views[tid], loc, idx);
        let msg = release_class(order).then(|| self.views[tid].clone());
        self.writes[loc].push(Write { val, msg });
    }

    fn atomic_rmw(
        &mut self,
        tid: usize,
        loc: usize,
        order: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let last = self.writes[loc].len() - 1;
        let (old, inherited) = {
            let w = &self.writes[loc][last];
            (w.val, w.msg.clone())
        };
        view_set(&mut self.views[tid], loc, last);
        if acquire_class(order) {
            if let Some(mv) = &inherited {
                join(&mut self.views[tid], mv);
            }
        }
        view_set(&mut self.views[tid], loc, last + 1);
        let msg = match (inherited, release_class(order)) {
            (Some(mut p), true) => {
                join(&mut p, &self.views[tid]);
                Some(p)
            }
            // A relaxed RMW continues the release sequence it read from.
            (Some(p), false) => Some(p),
            (None, true) => Some(self.views[tid].clone()),
            (None, false) => None,
        };
        self.writes[loc].push(Write { val: f(old), msg });
        old
    }
}

/// Outcome of one step closure.
enum StepResult<R> {
    Done(R),
    /// The step cannot proceed until this mutex is released.
    Block(usize),
}

/// State shared between the scheduler and the model threads of one
/// [`explore`] call.
struct RunShared {
    state: StdMutex<SchedState>,
    cv: Condvar,
    opts: Options,
}

impl RunShared {
    fn recover(&self) -> StdGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Parks at a yield point, waits for the grant, then applies `op`
    /// atomically. `op` may block on a mutex, in which case the thread
    /// waits for a re-grant and retries.
    fn step<R>(&self, tid: usize, mut op: impl FnMut(&mut SchedState) -> StepResult<R>) -> R {
        let mut st = self.recover();
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            st.statuses[tid] = Status::AtYield;
            self.cv.notify_all();
            while st.statuses[tid] != Status::Granted {
                if st.aborting {
                    drop(st);
                    abort_unwind();
                }
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            match op(&mut st) {
                StepResult::Done(r) => {
                    st.statuses[tid] = Status::Running;
                    st.ops += 1;
                    st.op_counts[tid] += 1;
                    if st.ops > self.opts.max_ops {
                        st.fail(format!(
                            "op budget exceeded ({} steps) — livelock, or raise Options::max_ops",
                            self.opts.max_ops
                        ));
                        self.cv.notify_all();
                        drop(st);
                        abort_unwind();
                    }
                    self.cv.notify_all();
                    return r;
                }
                StepResult::Block(lid) => {
                    st.statuses[tid] = Status::Blocked(lid);
                    self.cv.notify_all();
                    while st.statuses[tid] != Status::Granted {
                        if st.aborting {
                            drop(st);
                            abort_unwind();
                        }
                        st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }

    /// Drives one schedule to completion. Returns `true` when the run
    /// finished cleanly, `false` on failure (state carries the message).
    fn schedule_run(&self) -> bool {
        let mut st = self.recover();
        loop {
            while st
                .statuses
                .iter()
                .any(|s| matches!(s, Status::Running | Status::Granted))
            {
                st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if st.failure.is_some() {
                st.aborting = true;
                self.cv.notify_all();
                return false;
            }
            let runnable: Vec<usize> = st
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::AtYield)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                if st.statuses.iter().all(|s| *s == Status::Finished) {
                    return true;
                }
                let held: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| match s {
                        Status::Blocked(l) => Some(format!("thread {i} waits on mutex {l}")),
                        _ => None,
                    })
                    .collect();
                st.fail(format!("deadlock: {}", held.join("; ")));
                self.cv.notify_all();
                return false;
            }
            // Continuation-first ordering, so `chosen == 0` keeps the
            // current thread running and alternatives are the preemptions.
            let mut options = Vec::with_capacity(runnable.len());
            let cont = st.last_tid.filter(|t| runnable.contains(t));
            if let Some(c) = cont {
                options.push(c);
            }
            options.extend(runnable.iter().copied().filter(|&t| Some(t) != cont));
            let budget_spent = self
                .opts
                .preemption_bound
                .is_some_and(|b| st.preemptions >= b);
            if cont.is_some() && budget_spent {
                options.truncate(1);
            }
            let frontier = st.cursor >= st.path.len();
            let hash = st.state_hash();
            let prune =
                self.opts.state_pruning && frontier && options.len() > 1 && !st.seen.insert(hash);
            if prune {
                st.pruned += 1;
            }
            let tid = options[st.decide(options.len(), prune)];
            if cont.is_some_and(|c| c != tid) {
                st.preemptions += 1;
            }
            st.last_tid = Some(tid);
            st.statuses[tid] = Status::Granted;
            self.cv.notify_all();
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<(Arc<RunShared>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<RunShared>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// RAII registration of the current OS thread as model thread `tid`.
struct CtxGuard;

impl CtxGuard {
    fn set(shared: Arc<RunShared>, tid: usize) -> CtxGuard {
        CTX.with(|c| *c.borrow_mut() = Some((shared, tid)));
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
    }
}

fn abort_unwind() -> ! {
    // Unwinds this model thread out of the user body on abort; caught by
    // the catch_unwind in thread_main, so it never escapes explore().
    // treesim-lint: allow(panic-surface)
    panic!("{ABORT}")
}

fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<&str>().is_some_and(|s| *s == ABORT)
        || payload.downcast_ref::<String>().is_some_and(|s| s == ABORT)
}

fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Model assertion: inside a run, a failure records the message plus the
/// failing schedule and aborts the exploration; outside a run it is a
/// plain `assert!`.
pub fn verify(cond: bool, msg: &str) {
    if cond {
        return;
    }
    if let Some((shared, tid)) = ctx() {
        {
            let mut st = shared.recover();
            let sched = st.schedule_of();
            st.fail(format!(
                "model assertion failed on thread {tid}: {msg} (schedule {sched:?})"
            ));
            shared.cv.notify_all();
        }
        abort_unwind();
    }
    assert!(cond, "model assertion failed outside a run: {msg}");
}

/// Exhaustively explores `threads` bodies over a fresh `setup()` state
/// per schedule, within `opts` bounds. `body(i, &state)` runs as model
/// thread `i`; `check(&state)` runs after each clean schedule for
/// final-state invariants. Returns the failing schedule on any assertion
/// failure, panic, deadlock, or blown budget.
pub fn explore<S, F, B, C>(
    opts: &Options,
    threads: usize,
    setup: F,
    body: B,
    check: C,
) -> Result<Stats, Failure>
where
    S: Sync,
    F: Fn() -> S,
    B: Fn(usize, &S) + Sync,
    C: Fn(&S) -> Result<(), String>,
{
    let shared = Arc::new(RunShared {
        state: StdMutex::new(SchedState::new(threads)),
        cv: Condvar::new(),
        opts: opts.clone(),
    });
    let mut schedules: u64 = 0;
    loop {
        if schedules >= opts.max_schedules {
            let schedule = shared.recover().schedule_of();
            return Err(Failure {
                message: format!(
                    "exploration not exhaustive: schedule budget ({}) exhausted — tighten the \
                     protocol or raise Options::max_schedules",
                    opts.max_schedules
                ),
                schedule,
                schedules_run: schedules,
            });
        }
        schedules += 1;
        shared.recover().reset(threads);
        let state = setup();
        let clean = std::thread::scope(|scope| {
            for i in 0..threads {
                let shared = Arc::clone(&shared);
                let state = &state;
                let body = &body;
                scope.spawn(move || thread_main(shared, i, state, body));
            }
            shared.schedule_run()
        });
        let (failure, sched, pruned) = {
            let st = shared.recover();
            (st.failure.clone(), st.schedule_of(), st.pruned)
        };
        if let Some(message) = failure {
            record_metrics(schedules, pruned, true);
            return Err(Failure {
                message,
                schedule: sched,
                schedules_run: schedules,
            });
        }
        debug_assert!(clean);
        if let Err(message) = check(&state) {
            record_metrics(schedules, pruned, true);
            return Err(Failure {
                message: format!("final-state check failed: {message} (schedule {sched:?})"),
                schedule: sched,
                schedules_run: schedules,
            });
        }
        if !shared.recover().backtrack() {
            record_metrics(schedules, pruned, false);
            return Ok(Stats { schedules, pruned });
        }
    }
}

/// Counters for CI visibility; names are covered by the obs naming
/// grammar test.
fn record_metrics(schedules: u64, pruned: u64, failed: bool) {
    crate::metrics::counter("model.schedules").add(schedules);
    crate::metrics::counter("model.states.pruned").add(pruned);
    if failed {
        crate::metrics::counter("model.failures").inc();
    }
}

fn thread_main<S: Sync>(
    shared: Arc<RunShared>,
    tid: usize,
    state: &S,
    body: &(impl Fn(usize, &S) + Sync),
) {
    let guard = CtxGuard::set(Arc::clone(&shared), tid);
    let result = catch_unwind(AssertUnwindSafe(|| body(tid, state)));
    drop(guard);
    let mut st = shared.recover();
    st.statuses[tid] = Status::Finished;
    if let Err(p) = result {
        if !is_abort(p.as_ref()) {
            st.fail(format!(
                "thread {tid} panicked: {}",
                payload_str(p.as_ref())
            ));
        }
    }
    shared.cv.notify_all();
}

// ---------------------------------------------------------------------
// Shim types. Outside a run they delegate to the real std primitives, so
// code routed through `crate::sync` behaves identically when a model
// build runs ordinary tests.
// ---------------------------------------------------------------------

/// Model-checked stand-in for `std::sync::atomic::AtomicU64`.
#[derive(Debug, Default)]
pub struct AtomicU64 {
    inner: StdU64,
    loc: OnceLock<usize>,
}

impl AtomicU64 {
    /// A new cell holding `v`.
    pub const fn new(v: u64) -> AtomicU64 {
        AtomicU64 {
            inner: StdU64::new(v),
            loc: OnceLock::new(),
        }
    }

    /// Registers the cell with the active run on first modeled access;
    /// the initial value is whatever standalone accesses left behind.
    fn loc(&self, shared: &RunShared) -> usize {
        *self.loc.get_or_init(|| {
            let initial = self.inner.load(Ordering::Relaxed);
            shared.recover().alloc_loc(initial)
        })
    }

    /// Atomic load; in a run, branches over every readable write.
    pub fn load(&self, order: Ordering) -> u64 {
        match ctx() {
            Some((shared, tid)) => {
                let loc = self.loc(&shared);
                shared.step(tid, |st| StepResult::Done(st.atomic_load(tid, loc, order)))
            }
            None => self.inner.load(order),
        }
    }

    /// Atomic store.
    pub fn store(&self, val: u64, order: Ordering) {
        match ctx() {
            Some((shared, tid)) => {
                let loc = self.loc(&shared);
                shared.step(tid, |st| {
                    st.atomic_store(tid, loc, val, order);
                    StepResult::Done(())
                });
                // Keep the real cell on the modification-order tail so
                // standalone reads after the run (final checks) see it.
                self.inner.store(val, Ordering::Relaxed);
            }
            None => self.inner.store(val, order),
        }
    }

    /// Atomic fetch-add, wrapping.
    pub fn fetch_add(&self, val: u64, order: Ordering) -> u64 {
        match ctx() {
            Some((shared, tid)) => {
                let loc = self.loc(&shared);
                let old = shared.step(tid, |st| {
                    StepResult::Done(st.atomic_rmw(tid, loc, order, |v| v.wrapping_add(val)))
                });
                self.inner.store(old.wrapping_add(val), Ordering::Relaxed);
                old
            }
            None => self.inner.fetch_add(val, order),
        }
    }
}

/// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    cell: AtomicU64,
}

impl AtomicBool {
    /// A new flag holding `v`.
    pub const fn new(v: bool) -> AtomicBool {
        AtomicBool {
            cell: AtomicU64::new(v as u64),
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> bool {
        self.cell.load(order) != 0
    }

    /// Atomic store.
    pub fn store(&self, val: bool, order: Ordering) {
        self.cell.store(val as u64, order);
    }
}

/// Model-checked stand-in for `std::sync::Mutex`. Data lives in a real
/// mutex (the model serializes access, so it never contends); blocking
/// and the unlock→lock happens-before edge are modeled.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    lid: OnceLock<usize>,
}

/// Guard returned by [`Mutex::lock`]; releases the model lock on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    data: StdGuard<'a, T>,
    lid: Option<usize>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `v`.
    pub const fn new(v: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(v),
            lid: OnceLock::new(),
        }
    }

    fn lid(&self, shared: &RunShared) -> usize {
        *self.lid.get_or_init(|| shared.recover().alloc_lock())
    }

    /// Locks the mutex. In a run, the calling model thread blocks (and
    /// the scheduler explores around it) until the holder unlocks; the
    /// result is always `Ok` (model runs recover poison like production
    /// code does).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        match ctx() {
            Some((shared, tid)) => {
                let lid = self.lid(&shared);
                shared.step(tid, |st| {
                    if st.locks[lid].held_by.is_some() {
                        return StepResult::Block(lid);
                    }
                    st.locks[lid].held_by = Some(tid);
                    let lock_view = st.locks[lid].view.clone();
                    join(&mut st.views[tid], &lock_view);
                    StepResult::Done(())
                });
                let data = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    data,
                    lid: Some(lid),
                })
            }
            None => match self.inner.lock() {
                Ok(data) => Ok(MutexGuard { data, lid: None }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    data: e.into_inner(),
                    lid: None,
                })),
            },
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.data
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.data
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let Some(lid) = self.lid else {
            return;
        };
        let Some((shared, tid)) = ctx() else {
            return;
        };
        if std::thread::panicking() || shared.recover().aborting {
            // Bookkeeping only — never reschedule while unwinding.
            let mut st = shared.recover();
            st.locks[lid].held_by = None;
            for s in st.statuses.iter_mut() {
                if *s == Status::Blocked(lid) {
                    *s = Status::AtYield;
                }
            }
            shared.cv.notify_all();
            return;
        }
        shared.step(tid, |st| {
            st.locks[lid].held_by = None;
            let view = st.views[tid].clone();
            join(&mut st.locks[lid].view, &view);
            for s in st.statuses.iter_mut() {
                if *s == Status::Blocked(lid) {
                    *s = Status::AtYield;
                }
            }
            StepResult::Done(())
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        Options {
            preemption_bound: Some(3),
            max_schedules: 100_000,
            max_ops: 2_000,
            state_pruning: true,
        }
    }

    #[test]
    fn relaxed_message_passing_is_caught() {
        // The textbook bug (and the pre-PR-3 SINK_ACTIVE shape): data is
        // published with a Relaxed flag, so the reader can observe the
        // flag without the data.
        let err = explore(
            &opts(),
            2,
            || (AtomicU64::new(0), AtomicBool::new(false)),
            |i, s| match i {
                0 => {
                    s.0.store(1, Ordering::Relaxed);
                    s.1.store(true, Ordering::Relaxed);
                }
                _ => {
                    if s.1.load(Ordering::Relaxed) {
                        verify(s.0.load(Ordering::Relaxed) == 1, "flag without data");
                    }
                }
            },
            |_| Ok(()),
        );
        let failure = err.expect_err("relaxed publication must be caught");
        assert!(failure.message.contains("flag without data"), "{failure:?}");
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn release_acquire_message_passing_passes() {
        let stats = explore(
            &opts(),
            2,
            || (AtomicU64::new(0), AtomicBool::new(false)),
            |i, s| match i {
                0 => {
                    s.0.store(1, Ordering::Relaxed);
                    s.1.store(true, Ordering::Release);
                }
                _ => {
                    if s.1.load(Ordering::Acquire) {
                        verify(s.0.load(Ordering::Relaxed) == 1, "flag without data");
                    }
                }
            },
            |_| Ok(()),
        )
        .expect("release/acquire publication is sound");
        assert!(stats.schedules > 1, "{stats:?}");
    }

    #[test]
    fn mutex_mutual_exclusion_and_happens_before() {
        // Non-atomic data guarded by the shim mutex: increments never
        // lose updates, and the final value is visible to the main
        // thread through the unlock.
        let stats = explore(
            &opts(),
            2,
            || Mutex::new(0u64),
            |_, m| {
                let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                *g += 1;
            },
            |m| {
                let g = m.lock().unwrap_or_else(PoisonError::into_inner);
                if *g == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: {}", *g))
                }
            },
        )
        .expect("mutex increments are sound");
        assert!(stats.schedules >= 2, "{stats:?}");
    }

    #[test]
    fn rmw_ids_are_unique_even_relaxed() {
        let stats = explore(
            &opts(),
            2,
            || (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)),
            |i, s| {
                let old = s.0.fetch_add(1, Ordering::Relaxed);
                match i {
                    0 => s.1.store(old + 1, Ordering::Relaxed),
                    _ => s.2.store(old + 1, Ordering::Relaxed),
                }
            },
            |s| {
                let (a, b) = (s.1.load(Ordering::Relaxed), s.2.load(Ordering::Relaxed));
                if a != b && a + b == 3 {
                    Ok(())
                } else {
                    Err(format!("ids not unique/monotone: {a} vs {b}"))
                }
            },
        )
        .expect("relaxed fetch_add ids are unique");
        assert!(stats.schedules >= 2);
    }

    #[test]
    fn lock_order_deadlock_is_detected() {
        let failure = explore(
            &opts(),
            2,
            || (Mutex::new(()), Mutex::new(())),
            |i, s| {
                let (first, second) = if i == 0 { (&s.0, &s.1) } else { (&s.1, &s.0) };
                let _a = first.lock().unwrap_or_else(PoisonError::into_inner);
                let _b = second.lock().unwrap_or_else(PoisonError::into_inner);
            },
            |_| Ok(()),
        )
        .expect_err("opposite lock orders must deadlock under some schedule");
        assert!(failure.message.contains("deadlock"), "{failure:?}");
    }

    #[test]
    fn thread_panics_are_reported_not_propagated() {
        let failure = explore(&opts(), 1, || (), |_, _| panic!("boom"), |_| Ok(()))
            .expect_err("panics fail the exploration");
        assert!(failure.message.contains("boom"), "{failure:?}");
    }

    #[test]
    fn shims_work_standalone() {
        let a = AtomicU64::new(7);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 7);
        assert_eq!(a.load(Ordering::Relaxed), 10);
        a.store(1, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 1);
        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));
        let m = Mutex::new(5u32);
        *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 6);
    }

    #[test]
    fn schedule_budget_overrun_is_a_failure() {
        let tight = Options {
            max_schedules: 1,
            ..opts()
        };
        let failure = explore(
            &tight,
            2,
            || AtomicU64::new(0),
            |_, a| {
                a.fetch_add(1, Ordering::Relaxed);
            },
            |_| Ok(()),
        )
        .expect_err("budget must not silently truncate the exploration");
        assert!(failure.message.contains("not exhaustive"), "{failure:?}");
    }

    #[test]
    fn metric_names_parse_under_the_grammar() {
        for name in ["model.schedules", "model.states.pruned", "model.failures"] {
            crate::naming::validate_metric_name(name, false)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
