//! The metric/span naming contract: one machine-checkable grammar shared
//! by the runtime (integration tests drain the registry and validate every
//! emitted name), the `xtask analyze` metric-name lint (which extracts
//! name literals statically), and the documentation tables in README /
//! DESIGN §9.
//!
//! Grammar (see the crate-level *Naming scheme* section):
//!
//! ```text
//! name     := segment ("." segment)+        // at least two segments
//! segment  := [a-z][a-z0-9_]*
//! name[0]  ∈ KNOWN_PREFIXES ∪ { "test" }    // "test" only in test code
//! ```
//!
//! Cascade funnel names additionally pin their second segment:
//! `cascade.<stage>.*` requires `<stage>` ∈ [`CASCADE_STAGES`], which must
//! stay in lockstep with every `Filter::stage_name` implementation — the
//! `xtask` lint checks that statically and
//! `crates/search/tests/metric_names.rs` checks it at runtime.

/// Top-level name prefixes with a defined meaning. Adding a subsystem
/// means adding its prefix here *and* documenting it in the README
/// Observability table — the analyzer rejects unknown prefixes.
pub const KNOWN_PREFIXES: &[&str] = &[
    "cascade", "refine", "engine", "batch", "dynamic", "recorder", "server", "shard", "join",
    "cluster", "classify", "trace", "model", "analyze", "slo", "window", "arena",
];

/// The namespace reserved for metrics created inside `#[cfg(test)]` code
/// and test binaries. Production code must never emit names under it.
pub const TEST_PREFIX: &str = "test";

/// Every cascade stage name any [`Filter::stage_name`] implementation may
/// return. `cascade.<stage>.*` metric names are only valid for these
/// stages: the cheap `size` screen, the paper's `bdist`/`propt` binary
/// branch bounds, the `histo` baseline, the `scan` pseudo-stage of the
/// sequential-scan (no-filter) baseline, and the `postings` inverted-list
/// candidate generator (stage −1 of the default cascade).
///
/// [`Filter::stage_name`]: https://docs.rs/treesim-search
pub const CASCADE_STAGES: &[&str] = &["size", "bdist", "propt", "histo", "scan", "postings"];

/// Reserved `cascade.<segment>.*` second segments that are *not* stage
/// names (and must never appear as a [`Filter::stage_name`]): mechanism
/// counters that cut across stages, like the batched-sweep instrumentation
/// `cascade.batch.evaluated`. Kept separate from [`CASCADE_STAGES`] so the
/// stage-table lockstep checks (runtime and `xtask`) stay exact.
///
/// [`Filter::stage_name`]: https://docs.rs/treesim-search
pub const CASCADE_EXTRAS: &[&str] = &["batch"];

/// Why a name failed [`validate_metric_name`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// Fewer than two dot-separated segments.
    TooFewSegments,
    /// A segment is empty or contains a character outside `[a-z0-9_]`, or
    /// starts with a non-letter.
    BadSegment(String),
    /// The first segment is not in [`KNOWN_PREFIXES`] (or [`TEST_PREFIX`]
    /// when test names are allowed).
    UnknownPrefix(String),
    /// A `cascade.<stage>.*` name whose stage is not in [`CASCADE_STAGES`].
    UnknownStage(String),
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::TooFewSegments => {
                write!(f, "metric names need at least two dotted segments")
            }
            NameError::BadSegment(s) => {
                write!(f, "segment {s:?} is not of the form [a-z][a-z0-9_]*")
            }
            NameError::UnknownPrefix(s) => write!(
                f,
                "unknown prefix {s:?} (known: {})",
                KNOWN_PREFIXES.join("|")
            ),
            NameError::UnknownStage(s) => write!(
                f,
                "unknown cascade stage {s:?} (known: {})",
                CASCADE_STAGES.join("|")
            ),
        }
    }
}

/// Whether `name` lives in the reserved test namespace (`test.*`).
pub fn is_test_name(name: &str) -> bool {
    name.split('.').next() == Some(TEST_PREFIX)
}

fn valid_segment(segment: &str) -> bool {
    let mut chars = segment.chars();
    matches!(chars.next(), Some('a'..='z'))
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Validates a concrete (fully-expanded) metric or span name against the
/// grammar. Test names (`test.*`) are accepted when `allow_test` is set —
/// integration tests drain registries that other tests may have touched.
pub fn validate_metric_name(name: &str, allow_test: bool) -> Result<(), NameError> {
    let mut head = name.split('.');
    let (Some(prefix), Some(second)) = (head.next(), head.next()) else {
        return Err(NameError::TooFewSegments);
    };
    for segment in name.split('.') {
        if !valid_segment(segment) {
            return Err(NameError::BadSegment(segment.to_owned()));
        }
    }
    let known = KNOWN_PREFIXES.contains(&prefix) || (allow_test && prefix == TEST_PREFIX);
    if !known {
        return Err(NameError::UnknownPrefix(prefix.to_owned()));
    }
    if prefix == "cascade" && !CASCADE_STAGES.contains(&second) && !CASCADE_EXTRAS.contains(&second)
    {
        return Err(NameError::UnknownStage(second.to_owned()));
    }
    Ok(())
}

/// The Prometheus exposition form of a registry name: dots become
/// underscores (the exposition grammar allows `[a-zA-Z_:][a-zA-Z0-9_:]*`
/// and dots are illegal). Because registry segments are `[a-z][a-z0-9_]*`
/// the result is always a valid exposition name; the mapping is not
/// injective in general (`a.b_c` and `a_b.c` collide) but the underscore
/// convention in our registry names (`.us` suffixes, `workers_active`
/// style) never produces a collision — the `xtask` metric-name lint
/// checks sanitized uniqueness over every literal.
pub fn prometheus_name(name: &str) -> String {
    name.replace('.', "_")
}

/// Validates a name *template* as it appears in source: `{…}` format
/// placeholders (e.g. `"{prefix}.filter.us"`, `"cascade.{}.evaluated"`)
/// act as wildcard segments that match any valid expansion. A placeholder
/// embedded in a segment (`"cascade.{}.us"`) wildcards that segment only.
pub fn validate_metric_template(template: &str) -> Result<(), NameError> {
    let mut head = template.split('.');
    let (Some(prefix), Some(stage)) = (head.next(), head.next()) else {
        return Err(NameError::TooFewSegments);
    };
    let is_wild = |s: &str| s.contains('{') && s.contains('}');
    for segment in template.split('.') {
        if !is_wild(segment) && !valid_segment(segment) {
            return Err(NameError::BadSegment(segment.to_owned()));
        }
    }
    if !is_wild(prefix) {
        if !KNOWN_PREFIXES.contains(&prefix) {
            return Err(NameError::UnknownPrefix(prefix.to_owned()));
        }
        if prefix == "cascade"
            && !is_wild(stage)
            && !CASCADE_STAGES.contains(&stage)
            && !CASCADE_EXTRAS.contains(&stage)
        {
            return Err(NameError::UnknownStage(stage.to_owned()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_every_documented_name_shape() {
        for name in [
            "engine.knn.queries",
            "engine.knn.filter.us",
            "engine.batch.workers.active",
            "cascade.size.evaluated",
            "cascade.propt.iters",
            "cascade.postings.evaluated",
            "cascade.batch.evaluated",
            "arena.trees",
            "arena.entries",
            "shard.knn.queries",
            "shard.workers.active",
            "refine.zs.nodes",
            "refine.bounded.cutoffs",
            "refine.bounded.bands_skipped",
            "join.pairs.considered",
            "join.pairs.refined",
            "join.pairs.joined",
            "join.pairs.cutoffs",
            "join.cells_skipped",
            "join.queries",
            "dynamic.push",
            "batch.pending",
            "recorder.recorded",
            "recorder.overwritten",
            "recorder.dropped.knn",
            "recorder.dropped.sharded_range",
            "server.requests",
            "cluster.queries",
            "cluster.clusters",
            "classify.queries",
            "trace.captured",
            "trace.retained",
            "trace.evicted",
            "trace.spans.dropped",
            "trace.ring.capacity",
            "model.schedules",
            "model.states.pruned",
            "model.failures",
            "analyze.findings.happens_before",
            "analyze.findings.lock_order",
            "slo.burn_rate.engine_knn",
            "slo.budget_remaining.engine_knn",
            "window.rotations",
            "window.sealed_through",
        ] {
            assert_eq!(validate_metric_name(name, false), Ok(()), "{name}");
        }
    }

    #[test]
    fn test_namespace_is_opt_in() {
        assert!(validate_metric_name("test.stats.queries", true).is_ok());
        assert_eq!(
            validate_metric_name("test.stats.queries", false),
            Err(NameError::UnknownPrefix("test".to_owned()))
        );
        assert!(is_test_name("test.stats.queries"));
        assert!(!is_test_name("engine.knn.queries"));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert_eq!(
            validate_metric_name("engine", false),
            Err(NameError::TooFewSegments)
        );
        assert_eq!(
            validate_metric_name("Engine.knn", false),
            Err(NameError::BadSegment("Engine".to_owned()))
        );
        assert_eq!(
            validate_metric_name("engine..us", false),
            Err(NameError::BadSegment(String::new()))
        );
        assert_eq!(
            validate_metric_name("engine.2fast", false),
            Err(NameError::BadSegment("2fast".to_owned()))
        );
        assert_eq!(
            validate_metric_name("widget.count", false),
            Err(NameError::UnknownPrefix("widget".to_owned()))
        );
        assert_eq!(
            validate_metric_name("cascade.warp.evaluated", false),
            Err(NameError::UnknownStage("warp".to_owned()))
        );
        // Errors render with context.
        let message = NameError::UnknownStage("warp".to_owned()).to_string();
        assert!(message.contains("warp") && message.contains("size|bdist|propt|histo"));
    }

    #[test]
    fn prometheus_names_are_exposition_legal() {
        assert_eq!(
            prometheus_name("engine.knn.filter.us"),
            "engine_knn_filter_us"
        );
        assert_eq!(prometheus_name("recorder.recorded"), "recorder_recorded");
        // Any valid registry name sanitizes to the exposition grammar
        // [a-zA-Z_:][a-zA-Z0-9_:]*.
        for name in ["cascade.size.evaluated", "engine.batch.workers.active"] {
            let p = prometheus_name(name);
            let mut chars = p.chars();
            assert!(matches!(chars.next(), Some('a'..='z' | '_')));
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn templates_treat_placeholders_as_wildcards() {
        for template in [
            "{prefix}.queries",
            "{prefix}.filter.us",
            "cascade.{}.evaluated",
            "cascade.{stage}.us",
            "engine.knn.queries",
        ] {
            assert_eq!(validate_metric_template(template), Ok(()), "{template}");
        }
        assert!(validate_metric_template("widget.{}.count").is_err());
        assert!(validate_metric_template("cascade.warp.{}").is_err());
        assert!(validate_metric_template("{prefix}").is_err());
        assert!(validate_metric_template("cascade.{}.Bad").is_err());
    }
}
