//! Prometheus text exposition (format version 0.0.4) rendering of a
//! [`MetricsSnapshot`].
//!
//! Hand-rolled like the rest of the crate — the format is line-oriented
//! and simple: a `# TYPE` header per family, then one sample line per
//! series. Registry names are sanitized with [`prometheus_name`] (dots →
//! underscores). Histograms render as the cumulative
//! `_bucket{le="…"}` series Prometheus expects — our log₂ bucket `i`
//! covers `[2^(i−1), 2^i)`, so its inclusive upper edge
//! ([`crate::bucket_upper_edge`]) is exactly an exposition `le` bound —
//! plus `_sum` / `_count`, and the estimated p50/p90/p99 as `#` comment
//! lines (native quantile series belong to summaries, not histograms).
//! Buckets with a recorded exemplar (the last trace id that landed there,
//! see [`crate::trace`]) add one more `#` comment line mapping each
//! bucket's upper edge to the trace id — the breadcrumb from a `/metrics`
//! latency tail to the matching span tree in `/trace.json`. Comment lines
//! keep the document inside the 0.0.4 grammar (scrapers skip them; the
//! richer OpenMetrics `# {trace_id=…}` exemplar syntax is not valid
//! 0.0.4).

use crate::metrics::{bucket_upper_edge, MetricsSnapshot};
use crate::naming::prometheus_name;

/// The `Content-Type` a 0.0.4 exposition body should be served with.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Renders the whole snapshot as an exposition document.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let name = prometheus_name(&c.name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.value));
    }
    for g in &snapshot.gauges {
        let name = prometheus_name(&g.name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.value));
    }
    for h in &snapshot.histograms {
        let name = prometheus_name(&h.name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for &(i, n) in &h.buckets {
            cumulative += n;
            let le = bucket_upper_edge(usize::from(i));
            if le == u64::MAX {
                // The overflow bucket's edge is +Inf in exposition terms;
                // the explicit +Inf line below carries its count.
                continue;
            }
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{name}_sum {}\n", h.sum));
        out.push_str(&format!("{name}_count {}\n", h.count));
        out.push_str(&format!(
            "# {name} quantiles (log2-bucket estimates): p50={} p90={} p99={}\n",
            h.p50(),
            h.p90(),
            h.p99()
        ));
        if !h.exemplars.is_empty() {
            let pairs: Vec<String> = h
                .exemplars
                .iter()
                .map(|&(i, id)| {
                    let le = bucket_upper_edge(usize::from(i));
                    if le == u64::MAX {
                        format!("le=\"+Inf\" trace={id}")
                    } else {
                        format!("le=\"{le}\" trace={id}")
                    }
                })
                .collect();
            out.push_str(&format!("# {name} exemplars: {}\n", pairs.join(" ")));
        }
    }
    out
}

/// Renders windowed quantile series for every histogram with traffic in
/// the given `(window length in seconds, windowed delta)` pairs:
/// `window_<name>_{p50,p90,p99,count}{window="300s"}` gauge families.
/// Derived moving aggregates are gauges, not counters — they can fall —
/// and the `window` label keeps the fast and slow series apart. Appended
/// after [`render`] on `/metrics`; families repeat per window, which the
/// 0.0.4 grammar tolerates (comment lines and repeated TYPE headers are
/// skipped/merged by scrapers).
pub fn render_windows(windows: &[(u64, &MetricsSnapshot)]) -> String {
    let mut out = String::new();
    for &(secs, snapshot) in windows {
        for h in &snapshot.histograms {
            if h.count == 0 {
                continue;
            }
            let name = prometheus_name(&h.name);
            for (stat, value) in [
                ("p50", h.p50()),
                ("p90", h.p90()),
                ("p99", h.p99()),
                ("count", h.count),
            ] {
                out.push_str(&format!(
                    "# TYPE window_{name}_{stat} gauge\nwindow_{name}_{stat}{{window=\"{secs}s\"}} {value}\n"
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "cascade.size.pruned".to_owned(),
                value: 42,
            }],
            gauges: vec![GaugeSnapshot {
                name: "engine.batch.pending".to_owned(),
                value: -3,
            }],
            histograms: vec![HistogramSnapshot {
                name: "engine.knn.filter.us".to_owned(),
                count: 4,
                sum: 110,
                max: 100,
                // One zero, one in [2,4), two in [64,128).
                buckets: vec![(0, 1), (2, 1), (7, 2)],
                exemplars: vec![(7, 42)],
            }],
        }
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_buckets() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE cascade_size_pruned counter\ncascade_size_pruned 42\n"));
        assert!(text.contains("# TYPE engine_batch_pending gauge\nengine_batch_pending -3\n"));
        assert!(text.contains("# TYPE engine_knn_filter_us histogram\n"));
        // Buckets are cumulative over the non-empty log₂ buckets.
        assert!(text.contains("engine_knn_filter_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("engine_knn_filter_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("engine_knn_filter_us_bucket{le=\"127\"} 4\n"));
        assert!(text.contains("engine_knn_filter_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("engine_knn_filter_us_sum 110\n"));
        assert!(text.contains("engine_knn_filter_us_count 4\n"));
        assert!(text.contains("p50="));
        // The exemplar renders as a comment mapping bucket edge → trace.
        assert!(text.contains("# engine_knn_filter_us exemplars: le=\"127\" trace=42\n"));
    }

    #[test]
    fn histograms_without_exemplars_render_no_exemplar_line() {
        let mut snap = sample_snapshot();
        snap.histograms[0].exemplars.clear();
        assert!(!render(&snap).contains("exemplars"));
    }

    #[test]
    fn overflow_bucket_folds_into_inf() {
        let mut snap = sample_snapshot();
        snap.histograms[0].buckets.push((63, 1));
        snap.histograms[0].count += 1;
        let text = render(&snap);
        // No line carries the u64::MAX edge; +Inf carries the total.
        assert!(!text.contains(&u64::MAX.to_string()));
        assert!(text.contains("engine_knn_filter_us_bucket{le=\"+Inf\"} 5\n"));
    }

    #[test]
    fn windowed_series_render_labeled_gauges_per_window() {
        let snap = sample_snapshot();
        let empty = MetricsSnapshot::default();
        let text = render_windows(&[(300, &snap), (3600, &empty)]);
        assert!(text.contains("# TYPE window_engine_knn_filter_us_p99 gauge\n"));
        assert!(text.contains("window_engine_knn_filter_us_p99{window=\"300s\"} 100\n"));
        assert!(text.contains("window_engine_knn_filter_us_count{window=\"300s\"} 4\n"));
        assert!(text.contains("window_engine_knn_filter_us_p50{window=\"300s\"}"));
        // The idle window contributes no series at all.
        assert!(!text.contains("window=\"3600s\""));
    }

    #[test]
    fn every_line_parses_under_the_exposition_grammar() {
        let mut text = render(&sample_snapshot());
        text.push_str(&render_windows(&[(300, &sample_snapshot())]));
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let name = series.split('{').next().unwrap();
            let mut chars = name.chars();
            assert!(matches!(chars.next(), Some('a'..='z' | 'A'..='Z' | '_')));
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name in {line:?}"
            );
        }
    }
}
