//! The query flight recorder: a fixed-capacity, always-on ring buffer of
//! structured per-query [`QueryRecord`]s.
//!
//! Aggregate counters answer "how is the system doing"; the recorder
//! answers "why was *this* query slow". Every engine / batch / dynamic
//! query path deposits one [`QueryRecord`] — kind, parameter, per-stage
//! funnel counts, propt binary-search iterations, refine count and
//! Zhang–Shasha node total, wall time, result summary — into the global
//! ring. Memory is O(capacity) forever: the ring is sharded across
//! mutexes, every shard's slot vector is preallocated at construction,
//! and [`QueryRecord`] is `Copy`, so recording a query after warm-up is a
//! shard-mutex lock plus a slot overwrite — no allocation on the hot
//! path. When the ring is full the oldest records are overwritten
//! (`recorder.overwritten` counts the evictions overall,
//! `recorder.dropped.<kind>` breaks them down by the evicted record's
//! kind — both in `/metrics` and in the `/recorder.json` `dropped`
//! object).
//!
//! Two thread-locals thread per-query context through code that never
//! sees the record being assembled: a propt-iteration accumulator (the
//! binary search in the propt bound runs deep inside the filter) and a
//! batch-context depth (so records emitted by `knn_batch` worker threads
//! are tagged as batch work).
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: sequence = counter — id source: `fetch_add` is an atomic
//! RMW, so ids are unique and monotone under Relaxed; the record itself
//! travels through the shard mutex, not the counter
//!
//! atomic-role: dropped = counter — per-kind eviction tallies, read
//! best-effort by `/recorder.json`

use std::cell::Cell;
use std::sync::OnceLock;

use crate::sync::{AtomicU64, Mutex, MutexGuard, Ordering};

use crate::json::Json;

/// Capacity of the global recorder ring ([`global`]).
pub const DEFAULT_CAPACITY: usize = 1024;

/// Number of mutex shards; records are spread by id so concurrent batch
/// workers rarely contend on the same lock.
const SHARDS: usize = 8;

/// Maximum number of cascade stages a record can carry (the deepest
/// filter cascade today is postings → size → histo → bdist → propt, plus
/// one spare).
pub const MAX_STAGES: usize = 6;

/// Which query path produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `SearchEngine::knn` (or a `knn_batch` worker).
    Knn,
    /// `SearchEngine::range`.
    Range,
    /// `DynamicIndex::knn`.
    DynamicKnn,
    /// `DynamicIndex::range`.
    DynamicRange,
    /// `ShardedEngine::knn` (one record for the merged query).
    ShardedKnn,
    /// `ShardedEngine::range` (one record for the merged query).
    ShardedRange,
}

impl QueryKind {
    /// Every kind, in [`QueryKind::index`] order.
    pub const ALL: [QueryKind; 6] = [
        QueryKind::Knn,
        QueryKind::Range,
        QueryKind::DynamicKnn,
        QueryKind::DynamicRange,
        QueryKind::ShardedKnn,
        QueryKind::ShardedRange,
    ];

    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Knn => "knn",
            QueryKind::Range => "range",
            QueryKind::DynamicKnn => "dynamic_knn",
            QueryKind::DynamicRange => "dynamic_range",
            QueryKind::ShardedKnn => "sharded_knn",
            QueryKind::ShardedRange => "sharded_range",
        }
    }

    /// Dense index into per-kind count arrays (matches [`QueryKind::ALL`]).
    pub fn index(self) -> usize {
        match self {
            QueryKind::Knn => 0,
            QueryKind::Range => 1,
            QueryKind::DynamicKnn => 2,
            QueryKind::DynamicRange => 3,
            QueryKind::ShardedKnn => 4,
            QueryKind::ShardedRange => 5,
        }
    }
}

/// Funnel counts for one cascade stage of one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name (a `naming::CASCADE_STAGES` member).
    pub name: &'static str,
    /// Candidates whose bound this stage computed.
    pub evaluated: u64,
    /// Candidates this stage eliminated.
    pub pruned: u64,
}

/// One query's flight record. `Copy` with a fixed-size stage array so ring
/// slots can be overwritten without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryRecord {
    /// Monotone sequence id assigned by the recorder (0 until recorded).
    pub id: u64,
    /// Which query path ran.
    pub kind: QueryKind,
    /// True when the query ran inside a batch driver worker.
    pub batch: bool,
    /// `k` for knn queries, `τ` for range queries.
    pub param: u64,
    /// Trees in the searched dataset.
    pub dataset: u64,
    /// Per-stage funnel counts; only the first `stage_count` are valid.
    pub stages: [StageRecord; MAX_STAGES],
    /// Number of valid entries in `stages`.
    pub stage_count: u8,
    /// Binary-search iterations spent in propt bounds for this query.
    pub propt_iters: u64,
    /// Candidates that reached exact Zhang–Shasha refinement.
    pub refined: u64,
    /// Of `refined`, how many the bounded DP cut off at the live budget
    /// (distance proven beyond τ / the k-th heap distance, not computed).
    pub refine_cutoffs: u64,
    /// DP cells the bounded refinement's band / subproblem pruning skipped
    /// across this query's refinements.
    pub bands_skipped: u64,
    /// Effective tree nodes touched by refinement (sum over refined pairs,
    /// scaled by the fraction of DP cells the bounded DP evaluated).
    pub zs_nodes: u64,
    /// Result-set size.
    pub results: u64,
    /// Best (smallest) result distance, if any result was returned.
    pub best: Option<u64>,
    /// Worst (largest) result distance, if any result was returned.
    pub worst: Option<u64>,
    /// Wall-clock time of the whole query in microseconds.
    pub wall_us: u64,
    /// Id of the trace captured for this query (see [`crate::trace`]);
    /// 0 when the query ran without a live capture. Whether the trace is
    /// still pullable from the trace ring depends on the sampler's
    /// retention decision and subsequent evictions.
    pub trace_id: u64,
}

impl QueryRecord {
    /// A blank record for `kind`; the caller fills in what it measured.
    pub fn new(kind: QueryKind) -> QueryRecord {
        QueryRecord {
            id: 0,
            kind,
            batch: false,
            param: 0,
            dataset: 0,
            stages: [StageRecord::default(); MAX_STAGES],
            stage_count: 0,
            propt_iters: 0,
            refined: 0,
            refine_cutoffs: 0,
            bands_skipped: 0,
            zs_nodes: 0,
            results: 0,
            best: None,
            worst: None,
            wall_us: 0,
            trace_id: 0,
        }
    }

    /// Appends a stage's funnel counts (ignored beyond [`MAX_STAGES`]).
    pub fn push_stage(&mut self, name: &'static str, evaluated: u64, pruned: u64) {
        let i = usize::from(self.stage_count);
        if let Some(slot) = self.stages.get_mut(i) {
            *slot = StageRecord {
                name,
                evaluated,
                pruned,
            };
            self.stage_count += 1;
        }
    }

    /// The valid prefix of the stage array.
    pub fn stages(&self) -> &[StageRecord] {
        let n = usize::from(self.stage_count).min(MAX_STAGES);
        self.stages.get(..n).unwrap_or(&[])
    }

    /// Serializes one record to a JSON object.
    pub fn to_json(&self) -> Json {
        let stages = self
            .stages()
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::Str(s.name.to_owned())),
                    ("evaluated", Json::U64(s.evaluated)),
                    ("pruned", Json::U64(s.pruned)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("id", Json::U64(self.id)),
            ("kind", Json::Str(self.kind.label().to_owned())),
            ("batch", Json::Bool(self.batch)),
            ("param", Json::U64(self.param)),
            ("dataset", Json::U64(self.dataset)),
            ("stages", Json::Arr(stages)),
            ("propt_iters", Json::U64(self.propt_iters)),
            ("refined", Json::U64(self.refined)),
            ("refine_cutoffs", Json::U64(self.refine_cutoffs)),
            ("bands_skipped", Json::U64(self.bands_skipped)),
            ("zs_nodes", Json::U64(self.zs_nodes)),
            ("results", Json::U64(self.results)),
        ];
        if let Some(best) = self.best {
            fields.push(("best", Json::U64(best)));
        }
        if let Some(worst) = self.worst {
            fields.push(("worst", Json::U64(worst)));
        }
        fields.push(("wall_us", Json::U64(self.wall_us)));
        if self.trace_id != 0 {
            fields.push(("trace_id", Json::U64(self.trace_id)));
        }
        Json::obj(fields)
    }
}

/// One mutex shard: a preallocated slot vector used as an overwrite ring.
#[derive(Debug)]
struct Shard {
    slots: Vec<Option<QueryRecord>>,
    /// Next slot to (over)write.
    next: usize,
}

/// A bounded, sharded flight recorder. See the module docs for the
/// memory/locking contract; [`global`] is the always-on instance every
/// query path records into.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    sequence: AtomicU64,
    /// Records overwritten before anyone read them, by the *evicted*
    /// record's kind (index = [`QueryKind::index`]) — tells which query
    /// populations the bounded ring is losing.
    dropped: [AtomicU64; QueryKind::ALL.len()],
}

/// Mutex poisoning only means another thread panicked mid-record; the
/// slot data is plain `Copy` state, so recover the guard rather than
/// propagating the panic into an unrelated query.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` records (rounded up to a
    /// multiple of the shard count, minimum one slot per shard).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| {
                Mutex::new(Shard {
                    slots: vec![None; per_shard],
                    next: 0,
                })
            })
            .collect();
        FlightRecorder {
            shards,
            capacity: per_shard * SHARDS,
            sequence: AtomicU64::new(0),
            dropped: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Total record slots across all shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| recover(s).slots.iter().filter(|r| r.is_some()).count())
            .sum()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits `record`, assigning and returning its sequence id. The
    /// oldest record in the target shard is overwritten when full.
    pub fn record(&self, mut record: QueryRecord) -> u64 {
        // Relaxed is enough: fetch_add is an atomic RMW, so ids are unique
        // and monotone; no other memory is published through the counter.
        let id = self.sequence.fetch_add(1, Ordering::Relaxed) + 1;
        record.id = id;
        let shard_index = (id as usize) % self.shards.len();
        let mut evicted = None;
        if let Some(shard) = self.shards.get(shard_index) {
            let mut guard = recover(shard);
            let next = guard.next;
            if let Some(slot) = guard.slots.get_mut(next) {
                evicted = slot.map(|old| old.kind);
                *slot = Some(record);
            }
            guard.next = (next + 1) % guard.slots.len().max(1);
        }
        crate::metrics::counter("recorder.recorded").inc();
        if let Some(kind) = evicted {
            if let Some(per_kind) = self.dropped.get(kind.index()) {
                per_kind.fetch_add(1, Ordering::Relaxed);
            }
            crate::metrics::counter("recorder.overwritten").inc();
            dropped_counter(kind).inc();
        }
        id
    }

    /// Records overwritten before being read, by evicted-record kind.
    pub fn dropped_by_kind(&self) -> Vec<(QueryKind, u64)> {
        QueryKind::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, &kind)| {
                let n = self.dropped.get(i)?.load(Ordering::Relaxed);
                (n > 0).then_some((kind, n))
            })
            .collect()
    }

    /// Copies out every held record, sorted by id (oldest first). The
    /// ring keeps its contents — this is what `/recorder.json` serves.
    pub fn records(&self) -> Vec<QueryRecord> {
        let mut out: Vec<QueryRecord> = self
            .shards
            .iter()
            .flat_map(|s| {
                recover(s)
                    .slots
                    .iter()
                    .flatten()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    /// Removes and returns every held record, sorted by id.
    pub fn drain(&self) -> Vec<QueryRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = recover(shard);
            for slot in &mut guard.slots {
                if let Some(record) = slot.take() {
                    out.push(record);
                }
            }
            guard.next = 0;
        }
        out.sort_by_key(|r| r.id);
        out
    }

    /// The held records with ids strictly greater than `since`, sorted by
    /// id — the `/recorder.json?since=<seq>` cursor. Ids are the Relaxed
    /// deposit sequence (they start at 1 and never repeat), so a poller
    /// passing the largest id it has seen gets exactly the new tail.
    pub fn records_since(&self, since: u64) -> Vec<QueryRecord> {
        let mut out = self.records();
        out.retain(|r| r.id > since);
        out
    }

    /// Total records ever deposited (including overwritten ones).
    pub fn recorded_total(&self) -> u64 {
        self.sequence.load(Ordering::Relaxed)
    }

    /// Serializes the held records to the `/recorder.json` document.
    pub fn to_json(&self) -> Json {
        self.to_json_since(0)
    }

    /// [`FlightRecorder::to_json`] restricted to records with ids after
    /// `since` (0 = everything); `held` counts only the returned records
    /// and the echoed `since` lets pollers confirm their cursor.
    pub fn to_json_since(&self, since: u64) -> Json {
        let records = self.records_since(since);
        Json::obj(vec![
            ("schema", Json::Str("treesim-recorder/v1".to_owned())),
            ("capacity", Json::U64(self.capacity as u64)),
            ("recorded_total", Json::U64(self.recorded_total())),
            ("since", Json::U64(since)),
            ("held", Json::U64(records.len() as u64)),
            (
                "dropped",
                Json::obj(
                    self.dropped_by_kind()
                        .into_iter()
                        .map(|(kind, n)| (kind.label(), Json::U64(n)))
                        .collect(),
                ),
            ),
            (
                "records",
                Json::Arr(records.iter().map(QueryRecord::to_json).collect()),
            ),
        ])
    }
}

/// The global `recorder.dropped.<kind>` counter for `kind` (cached: the
/// registry lookup happens once per kind, not once per eviction).
fn dropped_counter(kind: QueryKind) -> &'static crate::metrics::Counter {
    match kind {
        QueryKind::Knn => crate::counter!("recorder.dropped.knn"),
        QueryKind::Range => crate::counter!("recorder.dropped.range"),
        QueryKind::DynamicKnn => crate::counter!("recorder.dropped.dynamic_knn"),
        QueryKind::DynamicRange => crate::counter!("recorder.dropped.dynamic_range"),
        QueryKind::ShardedKnn => crate::counter!("recorder.dropped.sharded_knn"),
        QueryKind::ShardedRange => crate::counter!("recorder.dropped.sharded_range"),
    }
}

/// The always-on global recorder ([`DEFAULT_CAPACITY`] slots).
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        crate::metrics::gauge("recorder.capacity").set(DEFAULT_CAPACITY as i64);
        // Pre-register the per-kind drop counters so the Prometheus
        // export shows them (at 0) before the first eviction.
        for kind in QueryKind::ALL {
            dropped_counter(kind);
        }
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    })
}

/// Deposits `record` into the global recorder, stamping the batch flag
/// from the thread's batch context and the live trace id (if the caller
/// didn't already). Returns the assigned id.
pub fn record_query(mut record: QueryRecord) -> u64 {
    record.batch = in_batch();
    if record.trace_id == 0 {
        record.trace_id = crate::trace::current_trace_id();
    }
    global().record(record)
}

thread_local! {
    /// Propt binary-search iterations accumulated since the last `take`.
    static PROPT_ITERS: Cell<u64> = const { Cell::new(0) };
    /// Nesting depth of batch drivers on this thread.
    static BATCH_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Adds `n` propt binary-search iterations to this thread's per-query
/// accumulator (called from deep inside the filter bound).
pub fn propt_iters_add(n: u64) {
    PROPT_ITERS.with(|c| c.set(c.get().saturating_add(n)));
}

/// Reads and resets this thread's propt-iteration accumulator. Query
/// paths call it once at query start (to discard stale state) and once at
/// the end (to stamp the record).
pub fn propt_iters_take() -> u64 {
    PROPT_ITERS.with(|c| c.replace(0))
}

/// Whether this thread is currently inside a batch driver.
pub fn in_batch() -> bool {
    BATCH_DEPTH.with(|c| c.get() > 0)
}

/// RAII marker a batch driver holds for the duration of its workers'
/// query loop; queries recorded while one is live are tagged `batch`.
#[derive(Debug)]
pub struct BatchContext(());

impl BatchContext {
    /// Enters batch context on this thread.
    pub fn enter() -> BatchContext {
        BATCH_DEPTH.with(|c| c.set(c.get().saturating_add(1)));
        BatchContext(())
    }
}

impl Drop for BatchContext {
    fn drop(&mut self) {
        BATCH_DEPTH.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: QueryKind, param: u64) -> QueryRecord {
        let mut r = QueryRecord::new(kind);
        r.param = param;
        r.dataset = 100;
        r.push_stage("size", 100, 40);
        r.push_stage("propt", 60, 50);
        r.refined = 10;
        r.results = 3;
        r.best = Some(2);
        r.worst = Some(7);
        r.wall_us = 123;
        r
    }

    #[test]
    fn records_are_held_and_sorted() {
        let rec = FlightRecorder::with_capacity(64);
        for i in 0..10 {
            rec.record(sample(QueryKind::Knn, i));
        }
        assert_eq!(rec.len(), 10);
        let held = rec.records();
        assert_eq!(held.len(), 10);
        assert!(held.windows(2).all(|w| w[0].id < w[1].id));
        assert_eq!(rec.recorded_total(), 10);
        // records() does not consume…
        assert_eq!(rec.len(), 10);
        // …drain() does.
        assert_eq!(rec.drain().len(), 10);
        assert!(rec.is_empty());
    }

    #[test]
    fn capacity_bounds_hold_under_overflow() {
        let rec = FlightRecorder::with_capacity(16);
        assert_eq!(rec.capacity(), 16);
        for i in 0..100 {
            rec.record(sample(QueryKind::Range, i));
        }
        assert_eq!(rec.len(), 16);
        let held = rec.records();
        // The survivors are the newest 16 ids (ring semantics per shard).
        assert!(held.iter().all(|r| r.id > 100 - 16));
        assert_eq!(rec.recorded_total(), 100);
        // 84 evictions, all of them range records, and the per-kind
        // breakdown lands in the JSON document.
        assert_eq!(rec.dropped_by_kind(), vec![(QueryKind::Range, 84)]);
        let doc = rec.to_json();
        assert_eq!(
            doc.get("dropped")
                .and_then(|d| d.get("range"))
                .and_then(Json::as_u64),
            Some(84)
        );
        assert_eq!(doc.get("dropped").and_then(|d| d.get("knn")), None);
    }

    #[test]
    fn stage_array_is_bounded() {
        let mut r = QueryRecord::new(QueryKind::Knn);
        for _ in 0..10 {
            r.push_stage("size", 1, 1);
        }
        assert_eq!(r.stages().len(), MAX_STAGES);
    }

    #[test]
    fn json_shape_is_stable() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(sample(QueryKind::DynamicKnn, 5));
        let doc = rec.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("treesim-recorder/v1")
        );
        assert_eq!(doc.get("held").and_then(Json::as_u64), Some(1));
        let records = doc.get("records").and_then(Json::as_array).unwrap();
        let r = &records[0];
        assert_eq!(r.get("kind").and_then(Json::as_str), Some("dynamic_knn"));
        assert_eq!(r.get("best").and_then(Json::as_u64), Some(2));
        let stages = r.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].get("name").and_then(Json::as_str), Some("size"));
    }

    #[test]
    fn since_cursor_returns_only_the_new_tail() {
        let rec = FlightRecorder::with_capacity(64);
        for i in 0..10 {
            rec.record(sample(QueryKind::Knn, i));
        }
        // Ids are 1..=10; a poller that saw through id 7 gets 8, 9, 10.
        let tail = rec.records_since(7);
        assert_eq!(
            tail.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![8, 9, 10]
        );
        assert_eq!(rec.records_since(0).len(), 10, "0 means everything");
        assert!(rec.records_since(10).is_empty());
        let doc = rec.to_json_since(7);
        assert_eq!(doc.get("since").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("held").and_then(Json::as_u64), Some(3));
        assert_eq!(
            doc.get("recorded_total").and_then(Json::as_u64),
            Some(10),
            "totals describe the ring, not the cursor slice"
        );
        let records = doc.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(records.len(), 3);
        // The cursor does not consume: a second poll repeats the tail.
        assert_eq!(rec.records_since(7).len(), 3);
    }

    #[test]
    fn propt_accumulator_and_batch_context() {
        assert_eq!(propt_iters_take(), 0);
        propt_iters_add(3);
        propt_iters_add(4);
        assert_eq!(propt_iters_take(), 7);
        assert_eq!(propt_iters_take(), 0);

        assert!(!in_batch());
        {
            let _outer = BatchContext::enter();
            assert!(in_batch());
            {
                let _inner = BatchContext::enter();
                assert!(in_batch());
            }
            assert!(in_batch());
        }
        assert!(!in_batch());
    }

    #[test]
    fn global_recorder_tags_batch_records() {
        let before = global().recorded_total();
        let _ctx = BatchContext::enter();
        let id = record_query(sample(QueryKind::Knn, 2));
        assert!(id > before);
        let held = global().records();
        let mine = held.iter().find(|r| r.id == id).unwrap();
        assert!(mine.batch);
    }
}
