//! A tiny std-only metrics HTTP server — the first brick of the
//! ROADMAP's service front-end.
//!
//! One [`std::net::TcpListener`], one handler thread, six routes:
//!
//! * `GET /metrics` — the registry in Prometheus text exposition format
//!   ([`crate::prometheus::render`]), followed by the windowed series and
//!   `slo_*` gauges (the SLO engine is evaluated on every scrape).
//! * `GET /snapshot.json` — [`crate::metrics::snapshot`] as JSON.
//! * `GET /recorder.json` — the global flight recorder's held records;
//!   `?since=<seq>` returns only records newer than that sequence id
//!   (malformed cursors get a 400).
//! * `GET /trace.json` — the retained per-query span trees in Chrome
//!   trace-event format ([`crate::trace::chrome_trace_json`]); save it
//!   and load it in `chrome://tracing` or Perfetto.
//! * `GET /slo.json` — the SLO report ([`crate::slo::evaluate`], schema
//!   `treesim-slo/v1`): per-target fast/slow burn rates, error budgets
//!   and windowed observed quantiles.
//! * `GET /health` — `200 ok` while every SLO target holds, `503` with
//!   the worst burn rate once the multi-window breach rule fires.
//!
//! HTTP support is deliberately minimal (HTTP/1.0-style: read the request
//! line, answer, close) — scrapers and `curl` are the only intended
//! clients. Connections are handled sequentially on the server thread
//! with short socket timeouts so a stalled client cannot wedge the
//! endpoint for long.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::prometheus;
use crate::recorder;

/// Per-connection socket timeout (read and write).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound-but-not-yet-serving metrics server.
#[derive(Debug)]
pub struct MetricsServer {
    listener: TcpListener,
}

impl MetricsServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks an
    /// ephemeral port — read it back with [`MetricsServer::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections on the calling thread until the process exits
    /// (the CLI's `serve-metrics` foreground mode).
    pub fn serve_forever(self) -> std::io::Result<()> {
        for stream in self.listener.incoming().flatten() {
            handle_connection(stream);
        }
        Ok(())
    }

    /// Serves connections on a background thread; the returned handle
    /// stops the server when shut down or dropped.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(Mutex::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let join = std::thread::Builder::new()
            .name("obs-metrics-server".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.lock().map(|g| *g).unwrap_or(true) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle_connection(stream);
                    }
                }
            })?;
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a background server; dropping it stops the server thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<Mutex<bool>>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Ok(mut guard) = self.stop.lock() {
            *guard = true;
        }
        // The accept loop is blocked in `incoming()`; poke it with a
        // throwaway connection so it observes the stop flag.
        drop(TcpStream::connect(self.addr));
        if let Some(join) = self.join.take() {
            drop(join.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Routes one connection; I/O errors only fail that connection.
fn handle_connection(stream: TcpStream) {
    drop(stream.set_read_timeout(Some(SOCKET_TIMEOUT)));
    drop(stream.set_write_timeout(Some(SOCKET_TIMEOUT)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    crate::metrics::counter("server.requests").inc();
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = respond(path);
    let mut stream = reader.into_inner();
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if stream.write_all(header.as_bytes()).is_ok() {
        drop(stream.write_all(body.as_bytes()));
    }
    drop(stream.flush());
}

/// Body for `path`: `(status line, content type, body)`. The query
/// string is split off before routing; only `/recorder.json` reads it.
fn respond(path: &str) -> (&'static str, &'static str, String) {
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, Some(query)),
        None => (path, None),
    };
    match route {
        "/metrics" => {
            // Evaluate first so the slo.* gauges land in this scrape,
            // then append the windowed quantile series.
            crate::slo::evaluate();
            let mut body = prometheus::render(&crate::metrics::snapshot());
            let ring = crate::window::global();
            let fast = ring.window(crate::window::FAST_WINDOW_INTERVALS);
            let slow = ring.window(crate::window::SLOW_WINDOW_INTERVALS);
            let fast_secs = crate::window::FAST_WINDOW_INTERVALS as u64
                * (ring.interval_us() / 1_000_000).max(1);
            let slow_secs = crate::window::SLOW_WINDOW_INTERVALS as u64
                * (ring.interval_us() / 1_000_000).max(1);
            body.push_str(&prometheus::render_windows(&[
                (fast_secs, &fast),
                (slow_secs, &slow),
            ]));
            ("200 OK", prometheus::CONTENT_TYPE, body)
        }
        "/snapshot.json" => (
            "200 OK",
            "application/json",
            crate::metrics::snapshot().to_json_string(),
        ),
        "/recorder.json" => {
            let since = match parse_since(query) {
                Ok(since) => since,
                Err(bad) => {
                    return (
                        "400 Bad Request",
                        "text/plain",
                        format!("400: bad query {bad:?} (expected since=<sequence id>)\n"),
                    )
                }
            };
            (
                "200 OK",
                "application/json",
                recorder::global().to_json_since(since).to_string_pretty(),
            )
        }
        "/trace.json" => (
            "200 OK",
            "application/json",
            crate::trace::chrome_trace_json().to_string_pretty(),
        ),
        "/slo.json" => (
            "200 OK",
            "application/json",
            crate::slo::evaluate().to_json().to_string_pretty(),
        ),
        "/health" => {
            let report = crate::slo::evaluate();
            if report.degraded() {
                (
                    "503 Service Unavailable",
                    "text/plain",
                    format!("degraded: worst burn rate {:.2}\n", report.worst_burn()),
                )
            } else {
                (
                    "200 OK",
                    "text/plain",
                    format!("ok: worst burn rate {:.2}\n", report.worst_burn()),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain",
            "404: try /metrics, /snapshot.json, /recorder.json[?since=N], /trace.json, \
             /slo.json or /health\n"
                .to_owned(),
        ),
    }
}

/// The `since=<u64>` cursor from a `/recorder.json` query string. No
/// query at all means 0 (everything); anything else must parse.
fn parse_since(query: Option<&str>) -> Result<u64, String> {
    let Some(query) = query else { return Ok(0) };
    match query.split_once('=') {
        Some(("since", value)) => value.parse().map_err(|_| query.to_owned()),
        _ => Err(query.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn routes_serve_metrics_snapshot_and_recorder() {
        crate::metrics::counter("test.server.hits").add(7);
        let handle = MetricsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("test_server_hits"), "{body}");

        let (_, body) = get(addr, "/snapshot.json");
        let snap = crate::MetricsSnapshot::from_json_str(&body).unwrap();
        assert!(snap.counter("test.server.hits").unwrap() >= 7);

        let (_, body) = get(addr, "/recorder.json");
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(crate::Json::as_str),
            Some("treesim-recorder/v1")
        );

        // Create one guaranteed-retained trace, then pull it back out of
        // the endpoint as Chrome trace-event JSON. The sampler knob is
        // global state shared with the trace tests — serialize.
        let _trace_lock = crate::trace::test_lock();
        crate::trace::set_sample_every(1);
        let trace_id = {
            let trace = crate::trace::start_trace();
            let _span = crate::span!("test.server.traced");
            trace.id()
        };
        let (head, body) = get(addr, "/trace.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let doc = crate::json::parse(&body).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(crate::Json::as_array)
            .expect("traceEvents array");
        let mine = events
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("trace"))
                    .and_then(crate::Json::as_u64)
                    == Some(trace_id)
            })
            .expect("the retained trace is served");
        assert_eq!(mine.get("ph").and_then(crate::Json::as_str), Some("X"));

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        assert!(body.contains("/trace.json"), "{body}");
        assert!(
            body.contains("/slo.json") && body.contains("/health"),
            "{body}"
        );

        handle.shutdown();
        // The listener is gone (connect may briefly succeed on some
        // platforms' backlog, but a fresh bind to the port must work).
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }

    #[test]
    fn slo_and_health_routes_serve_the_live_verdict() {
        // /metrics and /health run the SLO engine, whose degradation
        // latch is shared global state — serialize with other tests that
        // publish through it.
        let _trace_lock = crate::trace::test_lock();
        let handle = MetricsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/slo.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(crate::Json::as_str),
            Some(crate::slo::SCHEMA)
        );
        let targets = doc.get("targets").and_then(crate::Json::as_array).unwrap();
        assert!(targets
            .iter()
            .any(|t| t.get("op").and_then(crate::Json::as_str) == Some("engine.knn")));

        // A fresh process has no sustained burn: /health answers 200.
        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}: {body}");
        assert!(body.starts_with("ok"), "{body}");

        // The scrape carries the SLO gauges and windowed series.
        let (_, body) = get(addr, "/metrics");
        assert!(body.contains("slo_burn_rate_engine_knn"), "{body}");
        assert!(body.contains("slo_budget_remaining_engine_knn"), "{body}");

        handle.shutdown();
    }

    #[test]
    fn recorder_cursor_filters_and_rejects_garbage() {
        let handle = MetricsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/recorder.json?since=18446744073709551615");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(doc.get("held").and_then(crate::Json::as_u64), Some(0));
        assert_eq!(
            doc.get("since").and_then(crate::Json::as_u64),
            Some(u64::MAX)
        );

        for bad in ["/recorder.json?since=abc", "/recorder.json?cursor=3"] {
            let (head, body) = get(addr, bad);
            assert!(head.starts_with("HTTP/1.0 400"), "{bad}: {head}");
            assert!(body.contains("since=<sequence id>"), "{body}");
        }

        // Query strings on other routes are ignored, not 404s.
        let (head, _) = get(addr, "/snapshot.json?since=1");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");

        handle.shutdown();
    }
}
