//! A tiny std-only metrics HTTP server — the first brick of the
//! ROADMAP's service front-end.
//!
//! One [`std::net::TcpListener`], one handler thread, four routes:
//!
//! * `GET /metrics` — the registry in Prometheus text exposition format
//!   ([`crate::prometheus::render`]).
//! * `GET /snapshot.json` — [`crate::metrics::snapshot`] as JSON.
//! * `GET /recorder.json` — the global flight recorder's held records.
//! * `GET /trace.json` — the retained per-query span trees in Chrome
//!   trace-event format ([`crate::trace::chrome_trace_json`]); save it
//!   and load it in `chrome://tracing` or Perfetto.
//!
//! HTTP support is deliberately minimal (HTTP/1.0-style: read the request
//! line, answer, close) — scrapers and `curl` are the only intended
//! clients. Connections are handled sequentially on the server thread
//! with short socket timeouts so a stalled client cannot wedge the
//! endpoint for long.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::prometheus;
use crate::recorder;

/// Per-connection socket timeout (read and write).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound-but-not-yet-serving metrics server.
#[derive(Debug)]
pub struct MetricsServer {
    listener: TcpListener,
}

impl MetricsServer {
    /// Binds to `addr` (e.g. `"127.0.0.1:9464"`; port 0 picks an
    /// ephemeral port — read it back with [`MetricsServer::local_addr`]).
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections on the calling thread until the process exits
    /// (the CLI's `serve-metrics` foreground mode).
    pub fn serve_forever(self) -> std::io::Result<()> {
        for stream in self.listener.incoming().flatten() {
            handle_connection(stream);
        }
        Ok(())
    }

    /// Serves connections on a background thread; the returned handle
    /// stops the server when shut down or dropped.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(Mutex::new(false));
        let stop_flag = Arc::clone(&stop);
        let listener = self.listener;
        let join = std::thread::Builder::new()
            .name("obs-metrics-server".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.lock().map(|g| *g).unwrap_or(true) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        handle_connection(stream);
                    }
                }
            })?;
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a background server; dropping it stops the server thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<Mutex<bool>>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Ok(mut guard) = self.stop.lock() {
            *guard = true;
        }
        // The accept loop is blocked in `incoming()`; poke it with a
        // throwaway connection so it observes the stop flag.
        drop(TcpStream::connect(self.addr));
        if let Some(join) = self.join.take() {
            drop(join.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Routes one connection; I/O errors only fail that connection.
fn handle_connection(stream: TcpStream) {
    drop(stream.set_read_timeout(Some(SOCKET_TIMEOUT)));
    drop(stream.set_write_timeout(Some(SOCKET_TIMEOUT)));
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    crate::metrics::counter("server.requests").inc();
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = respond(path);
    let mut stream = reader.into_inner();
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if stream.write_all(header.as_bytes()).is_ok() {
        drop(stream.write_all(body.as_bytes()));
    }
    drop(stream.flush());
}

/// Body for `path`: `(status line, content type, body)`.
fn respond(path: &str) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => (
            "200 OK",
            prometheus::CONTENT_TYPE,
            prometheus::render(&crate::metrics::snapshot()),
        ),
        "/snapshot.json" => (
            "200 OK",
            "application/json",
            crate::metrics::snapshot().to_json_string(),
        ),
        "/recorder.json" => (
            "200 OK",
            "application/json",
            recorder::global().to_json().to_string_pretty(),
        ),
        "/trace.json" => (
            "200 OK",
            "application/json",
            crate::trace::chrome_trace_json().to_string_pretty(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            "404: try /metrics, /snapshot.json, /recorder.json or /trace.json\n".to_owned(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn routes_serve_metrics_snapshot_and_recorder() {
        crate::metrics::counter("test.server.hits").add(7);
        let handle = MetricsServer::bind("127.0.0.1:0").unwrap().spawn().unwrap();
        let addr = handle.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("version=0.0.4"), "{head}");
        assert!(body.contains("test_server_hits"), "{body}");

        let (_, body) = get(addr, "/snapshot.json");
        let snap = crate::MetricsSnapshot::from_json_str(&body).unwrap();
        assert!(snap.counter("test.server.hits").unwrap() >= 7);

        let (_, body) = get(addr, "/recorder.json");
        let doc = crate::json::parse(&body).unwrap();
        assert_eq!(
            doc.get("schema").and_then(crate::Json::as_str),
            Some("treesim-recorder/v1")
        );

        // Create one guaranteed-retained trace, then pull it back out of
        // the endpoint as Chrome trace-event JSON. The sampler knob is
        // global state shared with the trace tests — serialize.
        let _trace_lock = crate::trace::test_lock();
        crate::trace::set_sample_every(1);
        let trace_id = {
            let trace = crate::trace::start_trace();
            let _span = crate::span!("test.server.traced");
            trace.id()
        };
        let (head, body) = get(addr, "/trace.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        let doc = crate::json::parse(&body).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(crate::Json::as_array)
            .expect("traceEvents array");
        let mine = events
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("trace"))
                    .and_then(crate::Json::as_u64)
                    == Some(trace_id)
            })
            .expect("the retained trace is served");
        assert_eq!(mine.get("ph").and_then(crate::Json::as_str), Some("X"));

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
        assert!(body.contains("/trace.json"), "{body}");

        handle.shutdown();
        // The listener is gone (connect may briefly succeed on some
        // platforms' backlog, but a fresh bind to the port must work).
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
