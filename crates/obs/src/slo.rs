//! Declarative SLO targets, multi-window burn rates and the error-budget
//! accountant behind `/health`, `/slo.json` and the `slo_*` gauges.
//!
//! An objective says what "good" means for one operation: either a
//! latency quantile (p99 of `<op>.us` under a bound) or an error rate
//! (`<op>.errors` under a fraction of traffic). Evaluation reads two
//! trailing windows off the [`crate::window`] ring — fast
//! ([`crate::window::FAST_WINDOW_INTERVALS`], 5 min by default) and slow
//! ([`crate::window::SLOW_WINDOW_INTERVALS`], 1 h) — and computes the
//! *burn rate* for each: the observed bad fraction divided by the
//! fraction the objective tolerates (`ε`). Burn 1.0 means the error
//! budget is being consumed exactly at the sustainable pace; burn 2.0
//! means twice that.
//!
//! A target is **breached** only when *both* windows burn at or above
//! [`DEFAULT_BURN_THRESHOLD`] — the multi-window rule from the SRE
//! workbook: the slow window proves the problem is material, the fast
//! window proves it is still happening, and requiring both suppresses
//! one-burst false alarms and stale alerts alike. With no traffic in a
//! window the burn is 0 (an idle service is a healthy one).
//!
//! The budget accountant reports, per target, the fraction of the slow
//! window's error budget still unspent: `(ε·total − bad) / (ε·total)`,
//! clamped to `[0, 1]` so a blown budget reads 0, never a negative
//! number.
//!
//! [`evaluate`] publishes each target's verdict as milli-unit gauges
//! (`slo.burn_rate.<op>`, `slo.budget_remaining.<op>`) and refreshes the
//! degradation latch that [`check_degraded`] polls — CLI batch drivers
//! log it; a future admission controller would shed load on it.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: DEGRADED = cell — latest evaluation's breach verdict
//! (0/1), written by [`evaluate`] and polled best-effort; a stale read
//! is at worst one evaluation old and carries no other state
//!
//! atomic-role: WORST_BURN_MILLI = cell — worst min(fast, slow) burn
//! rate of the latest evaluation in milli-units; same freshness contract
//! as DEGRADED, published together and read independently

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::window::{FAST_WINDOW_INTERVALS, SLOW_WINDOW_INTERVALS};

/// Schema tag in `/slo.json` output.
pub const SCHEMA: &str = "treesim-slo/v1";

/// Both windows must burn at or above this for a target to breach.
pub const DEFAULT_BURN_THRESHOLD: f64 = 2.0;

static DEGRADED: AtomicU64 = AtomicU64::new(0);
static WORST_BURN_MILLI: AtomicU64 = AtomicU64::new(0);

/// What "good" means for one operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// The `q`-quantile of `<op>.us` must stay at or under `max_us`.
    LatencyQuantile {
        /// Quantile in `[0, 1]` (0.99 for p99).
        q: f64,
        /// Inclusive latency bound in microseconds.
        max_us: u64,
    },
    /// `<op>.errors` per `<op>.us` sample must stay under `max_ratio`.
    ErrorRate {
        /// Tolerated error fraction in `(0, 1]`.
        max_ratio: f64,
    },
}

impl Objective {
    /// The tolerated bad fraction `ε`: the error budget as a rate.
    pub fn epsilon(&self) -> f64 {
        match *self {
            Objective::LatencyQuantile { q, .. } => (1.0 - q).max(f64::EPSILON),
            Objective::ErrorRate { max_ratio } => max_ratio.max(f64::EPSILON),
        }
    }

    /// Short machine-readable kind tag (`latency_p99`, `error_rate`).
    pub fn kind(&self) -> String {
        match *self {
            Objective::LatencyQuantile { q, .. } => {
                format!("latency_p{:02}", (q * 100.0).round() as u64)
            }
            Objective::ErrorRate { .. } => "error_rate".to_owned(),
        }
    }
}

/// One declarative target: an operation plus its objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTarget {
    /// Operation label; `<op>.us` is its latency histogram and
    /// `<op>.errors` its failure counter.
    pub op: &'static str,
    /// What this target promises.
    pub objective: Objective,
}

const MS: u64 = 1_000;

/// The shipped target table: p99 latency plus a 1% error-rate objective
/// for every cataloged operation. Interactive lookups (knn/range on the
/// static and dynamic engines, classification) promise 250 ms; corpus
/// sweeps (self-join, clustering) get 2 s per invocation.
pub const DEFAULT_TARGETS: &[SloTarget] = &[
    SloTarget {
        op: "engine.knn",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 250 * MS,
        },
    },
    SloTarget {
        op: "engine.range",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 250 * MS,
        },
    },
    SloTarget {
        op: "dynamic.knn",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 250 * MS,
        },
    },
    SloTarget {
        op: "dynamic.range",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 250 * MS,
        },
    },
    SloTarget {
        op: "classify.knn",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 250 * MS,
        },
    },
    SloTarget {
        op: "join.self",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 2_000 * MS,
        },
    },
    SloTarget {
        op: "cluster.run",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 2_000 * MS,
        },
    },
    SloTarget {
        op: "engine.knn",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "engine.range",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "dynamic.knn",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "dynamic.range",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "classify.knn",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "join.self",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
    SloTarget {
        op: "cluster.run",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    },
];

/// One window's contribution to a verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBurn {
    /// Samples the objective judged (histogram count).
    pub total: u64,
    /// Samples that violated it (over-bound or errored).
    pub bad: u64,
    /// `(bad/total)/ε`; 0 with no traffic.
    pub burn: f64,
}

impl WindowBurn {
    fn compute(total: u64, bad: u64, epsilon: f64) -> WindowBurn {
        let burn = if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / epsilon
        };
        WindowBurn { total, bad, burn }
    }
}

/// A target's evaluated state across both windows.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetVerdict {
    /// The target this verdict judges.
    pub target: SloTarget,
    /// Fast-window (5 min) burn.
    pub fast: WindowBurn,
    /// Slow-window (1 h) burn.
    pub slow: WindowBurn,
    /// Unspent fraction of the slow window's error budget, in `[0, 1]`.
    pub budget_remaining: f64,
    /// Whether both windows burn at or above the threshold.
    pub breached: bool,
    /// For latency objectives: the windowed quantile actually observed
    /// over the fast window (microseconds), when it saw traffic.
    pub observed_us: Option<u64>,
}

impl TargetVerdict {
    /// The breach-relevant burn: the smaller of the two windows'.
    pub fn effective_burn(&self) -> f64 {
        self.fast.burn.min(self.slow.burn)
    }
}

/// A full evaluation: every target's verdict plus the overall verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Clock reading the evaluation used (microseconds).
    pub now_us: u64,
    /// Burn threshold the breach rule applied.
    pub burn_threshold: f64,
    /// Per-target verdicts, in target-table order.
    pub verdicts: Vec<TargetVerdict>,
}

impl SloReport {
    /// Whether any target is breached.
    pub fn degraded(&self) -> bool {
        self.verdicts.iter().any(|v| v.breached)
    }

    /// The worst effective burn across targets (0 when idle).
    pub fn worst_burn(&self) -> f64 {
        self.verdicts
            .iter()
            .map(TargetVerdict::effective_burn)
            .fold(0.0, f64::max)
    }

    /// The `/slo.json` document (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Json {
        let targets = self
            .verdicts
            .iter()
            .map(|v| {
                let mut pairs = vec![
                    ("op".to_owned(), Json::Str(v.target.op.to_owned())),
                    ("kind".to_owned(), Json::Str(v.target.objective.kind())),
                ];
                match v.target.objective {
                    Objective::LatencyQuantile { max_us, .. } => {
                        pairs.push(("target_us".to_owned(), Json::U64(max_us)));
                        if let Some(observed) = v.observed_us {
                            pairs.push(("observed_us".to_owned(), Json::U64(observed)));
                        }
                    }
                    Objective::ErrorRate { max_ratio } => {
                        pairs.push(("max_ratio".to_owned(), Json::F64(max_ratio)));
                    }
                }
                pairs.extend([
                    ("fast_total".to_owned(), Json::U64(v.fast.total)),
                    ("fast_bad".to_owned(), Json::U64(v.fast.bad)),
                    ("fast_burn".to_owned(), Json::F64(v.fast.burn)),
                    ("slow_total".to_owned(), Json::U64(v.slow.total)),
                    ("slow_bad".to_owned(), Json::U64(v.slow.bad)),
                    ("slow_burn".to_owned(), Json::F64(v.slow.burn)),
                    ("budget_remaining".to_owned(), Json::F64(v.budget_remaining)),
                    ("breached".to_owned(), Json::Bool(v.breached)),
                ]);
                Json::Obj(pairs)
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_owned())),
            ("now_us", Json::U64(self.now_us)),
            ("burn_threshold", Json::F64(self.burn_threshold)),
            (
                "fast_window_intervals",
                Json::U64(FAST_WINDOW_INTERVALS as u64),
            ),
            (
                "slow_window_intervals",
                Json::U64(SLOW_WINDOW_INTERVALS as u64),
            ),
            (
                "interval_us",
                Json::U64(crate::window::global().interval_us()),
            ),
            ("degraded", Json::Bool(self.degraded())),
            ("worst_burn", Json::F64(self.worst_burn())),
            ("targets", Json::Arr(targets)),
        ])
    }

    /// A fixed-width text table for the `treesim slo` subcommand.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:<12} {:>12} {:>10} {:>10} {:>8} {:>9}\n",
            "op", "objective", "target", "fast burn", "slow burn", "budget", "breached"
        ));
        for v in &self.verdicts {
            let target = match v.target.objective {
                Objective::LatencyQuantile { max_us, .. } => format!("{max_us} us"),
                Objective::ErrorRate { max_ratio } => format!("{:.2}%", max_ratio * 100.0),
            };
            out.push_str(&format!(
                "{:<14} {:<12} {:>12} {:>10.2} {:>10.2} {:>7.0}% {:>9}\n",
                v.target.op,
                v.target.objective.kind(),
                target,
                v.fast.burn,
                v.slow.burn,
                v.budget_remaining * 100.0,
                if v.breached { "BREACH" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "\nworst burn {:.2} (threshold {:.1}) — {}\n",
            self.worst_burn(),
            self.burn_threshold,
            if self.degraded() {
                "DEGRADED"
            } else {
                "healthy"
            }
        ));
        out
    }
}

fn judge(target: &SloTarget, window: &MetricsSnapshot) -> (u64, u64) {
    let hist = window.histogram(&format!("{}.us", target.op));
    let total = hist.map_or(0, |h| h.count);
    let bad = match target.objective {
        Objective::LatencyQuantile { max_us, .. } => hist.map_or(0, |h| h.count_over(max_us)),
        Objective::ErrorRate { .. } => window
            .counter(&format!("{}.errors", target.op))
            .unwrap_or(0)
            .min(total),
    };
    (total, bad)
}

/// Pure evaluation core: judges `targets` against two already-windowed
/// delta snapshots. Deterministic — same inputs, same report.
pub fn evaluate_against(
    targets: &[SloTarget],
    fast: &MetricsSnapshot,
    slow: &MetricsSnapshot,
    burn_threshold: f64,
    now_us: u64,
) -> SloReport {
    let verdicts = targets
        .iter()
        .map(|target| {
            let epsilon = target.objective.epsilon();
            let observed_us = match target.objective {
                Objective::LatencyQuantile { q, .. } => fast
                    .histogram(&format!("{}.us", target.op))
                    .filter(|h| h.count > 0)
                    .map(|h| h.quantile(q)),
                Objective::ErrorRate { .. } => None,
            };
            let (fast_total, fast_bad) = judge(target, fast);
            let (slow_total, slow_bad) = judge(target, slow);
            let fast = WindowBurn::compute(fast_total, fast_bad, epsilon);
            let slow = WindowBurn::compute(slow_total, slow_bad, epsilon);
            let allowance = epsilon * slow.total as f64;
            let budget_remaining = if slow.total == 0 {
                1.0
            } else {
                ((allowance - slow.bad as f64) / allowance).clamp(0.0, 1.0)
            };
            let breached = fast.burn >= burn_threshold && slow.burn >= burn_threshold;
            TargetVerdict {
                target: *target,
                fast,
                slow,
                budget_remaining,
                breached,
                observed_us,
            }
        })
        .collect();
    SloReport {
        now_us,
        burn_threshold,
        verdicts,
    }
}

/// Evaluates [`DEFAULT_TARGETS`] against the global window ring and
/// registry, publishes the `slo.*` gauges and refreshes the degradation
/// latch. This is what `/slo.json`, `/health` and `/metrics` call.
pub fn evaluate() -> SloReport {
    let ring = crate::window::global();
    ring.tick();
    let now_us = crate::clock::now_us();
    let current = crate::metrics::snapshot();
    let fast = ring.window_with(now_us, &current, FAST_WINDOW_INTERVALS);
    let slow = ring.window_with(now_us, &current, SLOW_WINDOW_INTERVALS);
    let report = evaluate_against(
        DEFAULT_TARGETS,
        &fast,
        &slow,
        DEFAULT_BURN_THRESHOLD,
        now_us,
    );
    publish(&report);
    report
}

fn publish(report: &SloReport) {
    for v in &report.verdicts {
        // Only latency targets get gauges — one pair per op, and the
        // latency row is the canonical one for its op.
        if matches!(v.target.objective, Objective::ErrorRate { .. }) {
            continue;
        }
        let op = v.target.op.replace('.', "_");
        let burn_milli = (v.effective_burn() * 1000.0).min(i64::MAX as f64) as i64;
        crate::metrics::gauge(&format!("slo.burn_rate.{op}")).set(burn_milli);
        let budget_milli = (v.budget_remaining * 1000.0) as i64;
        crate::metrics::gauge(&format!("slo.budget_remaining.{op}")).set(budget_milli);
    }
    let worst_milli = (report.worst_burn() * 1000.0).min(u64::MAX as f64) as u64;
    WORST_BURN_MILLI.store(worst_milli, Ordering::Relaxed);
    DEGRADED.store(u64::from(report.degraded()), Ordering::Relaxed);
}

/// The degradation hook: `Some(worst burn rate)` when the latest
/// [`evaluate`] found a breach, `None` while healthy. Poll-only; nothing
/// blocks on it.
pub fn check_degraded() -> Option<f64> {
    if DEGRADED.load(Ordering::Relaxed) == 0 {
        None
    } else {
        Some(WORST_BURN_MILLI.load(Ordering::Relaxed) as f64 / 1000.0)
    }
}

/// Feeds the strictest latency target into the trace sampler's SLO knob
/// ([`crate::trace::set_slo_us`]) so trace retention and SLO targets
/// cannot drift apart. Returns the value applied.
pub fn sync_trace_slo() -> u64 {
    let strictest = DEFAULT_TARGETS
        .iter()
        .filter_map(|t| match t.objective {
            Objective::LatencyQuantile { max_us, .. } => Some(max_us),
            Objective::ErrorRate { .. } => None,
        })
        .min()
        .unwrap_or(10_000);
    crate::trace::set_slo_us(strictest);
    strictest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, HistogramSnapshot};

    /// A windowed delta snapshot with `op.us` samples and an error count.
    fn window(op: &str, samples: &[u64], errors: u64) -> MetricsSnapshot {
        let mut buckets: Vec<(u8, u64)> = Vec::new();
        let mut sum = 0;
        let mut max = 0;
        for &v in samples {
            let i = crate::metrics::bucket_index(v) as u8;
            match buckets.iter_mut().find(|(b, _)| *b == i) {
                Some((_, n)) => *n += 1,
                None => buckets.push((i, 1)),
            }
            sum += v;
            max = max.max(v);
        }
        buckets.sort_unstable();
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: format!("{op}.errors"),
                value: errors,
            }],
            gauges: Vec::new(),
            histograms: vec![HistogramSnapshot {
                name: format!("{op}.us"),
                count: samples.len() as u64,
                sum,
                max,
                buckets,
                exemplars: Vec::new(),
            }],
        }
    }

    const LATENCY: &[SloTarget] = &[SloTarget {
        op: "engine.knn",
        objective: Objective::LatencyQuantile {
            q: 0.99,
            max_us: 1_000,
        },
    }];

    const ERRORS: &[SloTarget] = &[SloTarget {
        op: "engine.knn",
        objective: Objective::ErrorRate { max_ratio: 0.01 },
    }];

    #[test]
    fn idle_service_is_healthy_with_full_budget() {
        let empty = MetricsSnapshot::default();
        let report = evaluate_against(DEFAULT_TARGETS, &empty, &empty, 2.0, 0);
        assert!(!report.degraded());
        assert_eq!(report.worst_burn(), 0.0);
        for v in &report.verdicts {
            assert_eq!(v.budget_remaining, 1.0);
            assert!(!v.breached);
        }
    }

    #[test]
    fn breach_requires_both_windows_to_burn() {
        // 100 samples, half over the 1 ms bound: burn = 0.5/0.01 = 50.
        let hot =
            window("engine.knn", &[2_000; 50], 0).merged_with(&window("engine.knn", &[10; 50], 0));
        let cold = window("engine.knn", &[10; 100], 0);
        // Hot fast + cold slow: a fresh burst, not yet material.
        let r = evaluate_against(LATENCY, &hot, &cold, 2.0, 0);
        assert!(!r.verdicts[0].breached);
        assert!(r.verdicts[0].fast.burn > 2.0);
        assert_eq!(r.verdicts[0].slow.burn, 0.0);
        // Hot fast + hot slow: sustained — breach.
        let r = evaluate_against(LATENCY, &hot, &hot, 2.0, 0);
        assert!(r.verdicts[0].breached);
        assert!(r.degraded());
        assert!(r.worst_burn() >= 2.0);
        // Cold fast + hot slow: recovered — stale alert suppressed.
        let r = evaluate_against(LATENCY, &cold, &hot, 2.0, 0);
        assert!(!r.verdicts[0].breached);
    }

    #[test]
    fn error_rate_burn_and_budget_account_errors() {
        // 200 samples, 4 errors: rate 2%, ε 1% → burn 2.0; budget
        // allowance 2 errors → 0 remaining (clamped, never negative).
        let w = window("engine.knn", &[10; 200], 4);
        let r = evaluate_against(ERRORS, &w, &w, 2.0, 0);
        let v = &r.verdicts[0];
        assert!((v.fast.burn - 2.0).abs() < 1e-9);
        assert_eq!(v.fast.bad, 4);
        assert_eq!(v.budget_remaining, 0.0);
        assert!(v.breached);
        // 1 error in 200: half the budget spent.
        let w = window("engine.knn", &[10; 200], 1);
        let r = evaluate_against(ERRORS, &w, &w, 2.0, 0);
        assert!((r.verdicts[0].budget_remaining - 0.5).abs() < 1e-9);
        assert!(!r.verdicts[0].breached);
    }

    #[test]
    fn latency_verdicts_carry_the_windowed_quantile() {
        let w = window("engine.knn", &[100, 100, 100, 5_000], 0);
        let r = evaluate_against(LATENCY, &w, &w, 2.0, 7);
        let v = &r.verdicts[0];
        assert_eq!(v.observed_us, Some(5_000), "p99 clamps to the max sample");
        assert_eq!(r.now_us, 7);
        // And the report serializes them under the versioned schema.
        let json = r.to_json();
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let targets = json
            .get("targets")
            .and_then(Json::as_array)
            .expect("targets");
        assert_eq!(
            targets[0].get("observed_us").and_then(Json::as_u64),
            Some(5_000)
        );
        assert_eq!(
            targets[0].get("op").and_then(Json::as_str),
            Some("engine.knn")
        );
    }

    #[test]
    fn table_renders_every_target_and_the_overall_verdict() {
        let empty = MetricsSnapshot::default();
        let table = evaluate_against(DEFAULT_TARGETS, &empty, &empty, 2.0, 0).render_table();
        for target in DEFAULT_TARGETS {
            assert!(
                table.contains(target.op),
                "missing {} in:\n{table}",
                target.op
            );
        }
        assert!(table.contains("healthy"));
    }

    #[test]
    fn publish_updates_gauges_and_degradation_latch() {
        // The latch is global and the server routes also publish through
        // it — serialize with the server tests.
        let _lock = crate::trace::test_lock();
        let hot = window("engine.knn", &[2_000_000; 100], 0);
        let report = evaluate_against(DEFAULT_TARGETS, &hot, &hot, 2.0, 0);
        publish(&report);
        assert!(check_degraded().is_some_and(|burn| burn >= 2.0));
        let snap = crate::metrics::snapshot();
        assert!(snap
            .gauge("slo.burn_rate.engine_knn")
            .is_some_and(|g| g >= 2_000));
        assert_eq!(snap.gauge("slo.budget_remaining.engine_knn"), Some(0));
        // A healthy evaluation clears the latch.
        let empty = MetricsSnapshot::default();
        publish(&evaluate_against(DEFAULT_TARGETS, &empty, &empty, 2.0, 0));
        assert_eq!(check_degraded(), None);
    }

    #[test]
    fn sync_trace_slo_applies_the_strictest_latency_target() {
        let _lock = crate::trace::test_lock();
        let applied = sync_trace_slo();
        assert_eq!(applied, 250 * MS);
        assert_eq!(crate::trace::slo_us(), 250 * MS);
        crate::trace::set_slo_us(10_000);
    }

    impl MetricsSnapshot {
        fn merged_with(mut self, other: &MetricsSnapshot) -> MetricsSnapshot {
            self.merge(other);
            self
        }
    }
}
