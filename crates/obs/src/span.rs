//! Lightweight span tracing: a thread-local span stack with RAII guards,
//! point events, and a pluggable [`Sink`].
//!
//! Every span records its wall-clock duration into the histogram named
//! `<span name>.us` — that always happens and costs two `Instant` reads
//! plus a few relaxed atomic adds. Everything else (field formatting,
//! enter/exit events) happens **only when a sink is installed**: the guard
//! checks one `Acquire` atomic bool, so an uninstrumented run pays near
//! nothing beyond the histogram.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: SINK_ACTIVE = publish — guards the sink slot: the
//! `Release` store in [`install_sink`] publishes the slot write, the
//! `Acquire` load in [`sink_active`] subscribes to it (see the comment
//! there and DESIGN.md §14)

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::metrics::Histogram;

/// What a sink is being told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span started.
    SpanEnter,
    /// A span finished (duration attached).
    SpanExit,
    /// A point event.
    Event,
}

/// One tracing event, borrowed from the emitting site.
#[derive(Debug)]
pub struct Event<'a> {
    /// Enter, exit, or point event.
    pub kind: EventKind,
    /// Span or event name (e.g. `engine.knn`).
    pub name: &'a str,
    /// Span-stack depth at emission (0 = top level).
    pub depth: usize,
    /// Wall-clock duration; only for [`EventKind::SpanExit`].
    pub duration: Option<Duration>,
    /// Formatted `key = value` fields.
    pub fields: &'a [(&'static str, String)],
}

/// An owned copy of an [`Event`] (what [`TestSink`] stores).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Enter, exit, or point event.
    pub kind: EventKind,
    /// Span or event name.
    pub name: String,
    /// Span-stack depth at emission.
    pub depth: usize,
    /// Wall-clock duration for span exits.
    pub duration: Option<Duration>,
    /// Formatted `key = value` fields.
    pub fields: Vec<(String, String)>,
}

impl Event<'_> {
    fn to_owned_event(&self) -> OwnedEvent {
        OwnedEvent {
            kind: self.kind,
            name: self.name.to_owned(),
            depth: self.depth,
            duration: self.duration,
            fields: self
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        }
    }
}

/// Receives tracing events. Implementations must be cheap and re-entrant:
/// they are called from hot query paths on many threads.
pub trait Sink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event<'_>);
}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Installs the global sink (replacing any previous one).
pub fn install_sink(sink: Arc<dyn Sink>) {
    *sink_slot().write().expect("sink lock poisoned") = Some(sink);
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Removes the global sink; spans keep recording their histograms.
pub fn clear_sink() {
    SINK_ACTIVE.store(false, Ordering::Release);
    *sink_slot().write().expect("sink lock poisoned") = None;
}

/// Whether a sink is installed (one `Acquire` atomic load — the hot-path
/// guard that keeps uninstrumented runs near-free).
#[inline]
pub fn sink_active() -> bool {
    // Happens-before edge: this `Acquire` load pairs with the `Release`
    // stores in `install_sink`/`clear_sink`, so a thread that observes
    // `true` also observes the sink written into the slot before the flag
    // was raised. The slot's `RwLock` independently synchronizes the
    // subsequent read, so `Relaxed` would not be *unsound* here — the
    // worst case is emitting against a stale slot state — but the
    // `Acquire`/`Release` pairing makes the flag self-contained instead of
    // leaning on the lock, at no measurable cost on x86 (plain load) or
    // AArch64 (`ldar`). See DESIGN.md §9 for the interleaving argument;
    // the `xtask analyze` atomics-audit lint pins this pairing.
    SINK_ACTIVE.load(Ordering::Acquire)
}

fn emit(event: &Event<'_>) {
    if let Some(sink) = sink_slot().read().expect("sink lock poisoned").as_ref() {
        sink.emit(event);
    }
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Current span-stack depth on this thread.
pub fn current_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

/// Names of the spans currently open on this thread, outermost first.
pub fn current_spans() -> Vec<&'static str> {
    SPAN_STACK.with(|stack| stack.borrow().clone())
}

/// An RAII span: created by [`crate::span!`], records `<name>.us` on drop
/// and notifies the sink (if any) on enter and exit. When a trace capture
/// is live on this thread (see [`crate::trace`]), the span additionally
/// deposits a [`crate::trace::TraceSpan`] into the query's span tree.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    name: &'static str,
    histogram: &'static Histogram,
    start: Instant,
    fields: Vec<(&'static str, String)>,
    /// Whether this span opened a trace capture frame. Remembered at
    /// enter so a trace that starts mid-span never pops a frame this
    /// guard did not push.
    traced: bool,
}

impl SpanGuard {
    /// Opens a span. Prefer the [`crate::span!`] macro, which caches the
    /// histogram handle per call-site.
    pub fn enter(
        name: &'static str,
        histogram: &'static Histogram,
        fields: Vec<(&'static str, String)>,
    ) -> SpanGuard {
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.len() - 1
        });
        let traced = crate::trace::on_span_enter(name);
        if sink_active() {
            emit(&Event {
                kind: EventKind::SpanEnter,
                name,
                depth,
                duration: None,
                fields: &fields,
            });
        }
        SpanGuard {
            name,
            histogram,
            start: Instant::now(),
            fields,
            traced,
        }
    }

    /// Attaches a field discovered after enter (a result count, a
    /// verdict). The value closure only runs when someone will see the
    /// field — a sink is installed or the span is being traced.
    pub fn push_field(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if self.traced || sink_active() {
            self.fields.push((key, value()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.histogram.record_duration(elapsed);
        let depth = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.pop();
            stack.len()
        });
        if self.traced {
            crate::trace::on_span_exit(self.name, &self.fields);
        }
        if sink_active() {
            emit(&Event {
                kind: EventKind::SpanExit,
                name: self.name,
                depth,
                duration: Some(elapsed),
                fields: &self.fields,
            });
        }
    }
}

/// Emits a point event to the sink (no-op without one). Prefer the
/// [`crate::event!`] macro, which skips field formatting when inactive.
pub fn emit_event(name: &str, fields: &[(&'static str, String)]) {
    if sink_active() {
        emit(&Event {
            kind: EventKind::Event,
            name,
            depth: current_depth(),
            duration: None,
            fields,
        });
    }
}

/// Pretty-printing stderr sink: indented `→ name` / `← name (12.3µs)`.
#[derive(Debug, Default)]
pub struct PrettySink;

impl Sink for PrettySink {
    fn emit(&self, event: &Event<'_>) {
        let indent = "  ".repeat(event.depth);
        let fields = format_fields(event.fields);
        let line = match event.kind {
            EventKind::SpanEnter => format!("[trace] {indent}→ {}{fields}", event.name),
            EventKind::SpanExit => format!(
                "[trace] {indent}← {} ({:.1?}){fields}",
                event.name,
                event.duration.unwrap_or_default()
            ),
            EventKind::Event => format!("[trace] {indent}• {}{fields}", event.name),
        };
        eprintln!("{line}");
    }
}

fn format_fields(fields: &[(&'static str, String)]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" {{{}}}", body.join(", "))
}

/// JSON-lines sink: one compact JSON object per event, written through a
/// shared `Write` (stderr or a file).
pub struct JsonLinesSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }

    /// Writes events to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }

    /// Writes events to (or over) the file at `path`.
    pub fn file(path: &str) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl std::fmt::Debug for JsonLinesSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl Sink for JsonLinesSink {
    fn emit(&self, event: &Event<'_>) {
        let mut pairs = vec![
            (
                "ev",
                Json::Str(
                    match event.kind {
                        EventKind::SpanEnter => "enter",
                        EventKind::SpanExit => "exit",
                        EventKind::Event => "event",
                    }
                    .to_owned(),
                ),
            ),
            ("name", Json::Str(event.name.to_owned())),
            ("depth", Json::U64(event.depth as u64)),
        ];
        if let Some(duration) = event.duration {
            pairs.push((
                "us",
                Json::U64(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX)),
            ));
        }
        for (key, value) in event.fields {
            pairs.push((key, Json::Str(value.clone())));
        }
        let line = Json::obj(pairs).to_string_compact();
        let mut writer = self.writer.lock().expect("sink writer poisoned");
        let _ = writeln!(writer, "{line}");
    }
}

/// In-memory sink for assertions in tests.
#[derive(Debug, Default)]
pub struct TestSink {
    events: Mutex<Vec<OwnedEvent>>,
}

impl TestSink {
    /// An empty test sink.
    pub fn new() -> Arc<TestSink> {
        Arc::new(TestSink::default())
    }

    /// A copy of every event seen so far.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events.lock().expect("test sink poisoned").clone()
    }

    /// Number of events of `kind` whose name equals `name`.
    pub fn count(&self, kind: EventKind, name: &str) -> usize {
        self.events
            .lock()
            .expect("test sink poisoned")
            .iter()
            .filter(|e| e.kind == kind && e.name == name)
            .count()
    }

    /// Drops all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("test sink poisoned").clear();
    }
}

impl Sink for TestSink {
    fn emit(&self, event: &Event<'_>) {
        self.events
            .lock()
            .expect("test sink poisoned")
            .push(event.to_owned_event());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::histogram;

    // Sink installation is global: serialize the tests that touch it.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn spans_record_histograms_without_a_sink() {
        let _guard = sink_lock();
        clear_sink();
        let h = histogram("test.span.no_sink.us");
        let before = h.count();
        {
            let _span = crate::span!("test.span.no_sink");
            assert_eq!(current_spans().last(), Some(&"test.span.no_sink"));
        }
        assert_eq!(h.count(), before + 1);
        assert_eq!(current_depth(), 0);
    }

    #[test]
    fn test_sink_sees_nested_spans_and_events() {
        let _guard = sink_lock();
        let sink = TestSink::new();
        install_sink(sink.clone());
        {
            let _outer = crate::span!("test.span.outer");
            {
                let _inner = crate::span!("test.span.inner", size = 3);
                crate::event!("test.span.point", detail = "x");
            }
        }
        clear_sink();
        crate::event!("test.span.after_clear"); // swallowed

        assert_eq!(sink.count(EventKind::SpanEnter, "test.span.outer"), 1);
        assert_eq!(sink.count(EventKind::SpanExit, "test.span.inner"), 1);
        assert_eq!(sink.count(EventKind::Event, "test.span.point"), 1);
        assert_eq!(sink.count(EventKind::Event, "test.span.after_clear"), 0);

        let events = sink.events();
        let inner_enter = events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnter && e.name == "test.span.inner")
            .expect("inner enter seen");
        assert_eq!(inner_enter.depth, 1);
        assert_eq!(
            inner_enter.fields,
            vec![("size".to_owned(), "3".to_owned())]
        );
        let point = events
            .iter()
            .find(|e| e.kind == EventKind::Event && e.name == "test.span.point")
            .expect("point event seen");
        assert_eq!(point.depth, 2);
        let outer_exit = events
            .iter()
            .find(|e| e.kind == EventKind::SpanExit && e.name == "test.span.outer")
            .expect("outer exit seen");
        assert!(outer_exit.duration.is_some());
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn json_lines_sink_writes_parseable_lines() {
        let _guard = sink_lock();
        let path = std::env::temp_dir().join("treesim-obs-jsonl-test.jsonl");
        let path_str = path.to_str().unwrap();
        install_sink(Arc::new(JsonLinesSink::file(path_str).unwrap()));
        {
            let _span = crate::span!("test.span.jsonl", k = 7);
        }
        clear_sink();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2, "enter + exit");
        let exit = crate::json::parse(lines[1]).unwrap();
        assert_eq!(exit.get("ev").and_then(Json::as_str), Some("exit"));
        assert_eq!(
            exit.get("name").and_then(Json::as_str),
            Some("test.span.jsonl")
        );
        assert_eq!(exit.get("k").and_then(Json::as_str), Some("7"));
        assert!(exit.get("us").and_then(Json::as_u64).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pretty_sink_formats_without_panicking() {
        // Exercise the formatting paths directly (output goes to stderr).
        let sink = PrettySink;
        for kind in [EventKind::SpanEnter, EventKind::SpanExit, EventKind::Event] {
            sink.emit(&Event {
                kind,
                name: "test.span.pretty",
                depth: 1,
                duration: (kind == EventKind::SpanExit).then(|| Duration::from_micros(12)),
                fields: &[("k", "v".to_owned())],
            });
        }
    }
}
