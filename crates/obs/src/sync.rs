//! Synchronization facade: `std::sync` in production, [`crate::model`]
//! shims under `--cfg treesim_model`.
//!
//! Modules that hand-roll lock-free protocols import their atomics and
//! mutexes from here instead of `std::sync` directly. A normal build
//! re-exports the std types unchanged (zero cost, identical API); a
//! `RUSTFLAGS="--cfg treesim_model"` build swaps in the model checker's
//! instrumented types, so the *production* protocol code — not a
//! hand-written mirror — runs under the exhaustive interleaving scheduler
//! in `crates/obs/tests/model.rs`.
//!
//! The recorder (its push/drain protocol) and the window ring (its
//! rotate/seal publish watermark) route through the facade and are
//! checked end-to-end; span/trace statics cannot be swapped
//! per-run (`static` + `OnceLock` + `thread_local!` lifetimes), so their
//! protocols are mirrored in the model tests instead — see DESIGN.md §14
//! for what that does and doesn't prove.

#[cfg(not(treesim_model))]
pub use std::sync::atomic::AtomicU64;
#[cfg(not(treesim_model))]
pub use std::sync::{Mutex, MutexGuard};

#[cfg(treesim_model)]
pub use crate::model::{AtomicU64, Mutex, MutexGuard};

pub use std::sync::atomic::Ordering;
