//! Per-query trace assembly: spans from every thread a query touches are
//! reassembled into one tree, held in a bounded ring next to the flight
//! recorder, and exported as Chrome trace-event JSON (`/trace.json`), an
//! indented CLI tree, and histogram exemplars.
//!
//! The flight recorder answers "which query was slow"; a trace answers
//! "where inside *that* query the wall-time went". Every query entry
//! point calls [`start_trace`], which installs a thread-local capture
//! context and hands back an RAII guard. While the context is live, every
//! [`crate::span!`] guard (and every lighter [`span`] trace-only guard)
//! deposits one [`TraceSpan`] carrying its parent span id, so the flat
//! deposit order reassembles into the query's call tree. Worker threads
//! join the same trace through a [`TraceHandle`] captured before spawn
//! and installed with the worker's `pid` (shard) / `tid` (worker) — the
//! same propagation idiom as [`crate::recorder::BatchContext`].
//!
//! # Sampling: capture always, retain selectively
//!
//! Capture is always on and deliberately cheap: a span deposit is a
//! thread-local stack push on enter and a `Vec` push (under the trace's
//! own mutex) on exit — no formatting beyond what the span already does,
//! no global locks. Whether the finished trace is *retained* in the ring
//! is decided once, at [`TraceGuard`] drop:
//!
//! * the trace is interesting: `spans × max_depth` reached the weight
//!   budget ([`set_weight_budget`], default 64), or
//! * it lost the 1-in-N lottery ([`set_sample_every`], default 16; `1`
//!   retains everything, `0` disables the lottery), or
//! * it was slow: wall time reached the SLO threshold ([`set_slo_us`],
//!   default 10 000 µs).
//!
//! Everything else is dropped on the floor (`trace.captured` vs
//! `trace.retained` counters measure the ratio). Because the three
//! conditions are only knowable when the query finishes, the sampler
//! cannot decide at query start — which is exactly why capture must stay
//! cheap enough to leave on.
//!
//! # Exemplars
//!
//! While a capture context is live, [`current_trace_id`] is nonzero and
//! every histogram bucket update remembers it (see
//! [`crate::Histogram`]) — so the `p99` bucket of a latency histogram in
//! `/metrics` names the trace id of the last query that landed there,
//! and the flight-recorder record carrying the same `trace_id` links the
//! two views.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: next_span = counter — per-trace span-id source;
//! `fetch_add` is unique and monotone under Relaxed, the span payload
//! travels through the trace mutex
//!
//! atomic-role: NEXT_TRACE_ID = counter — global trace-id source, same
//! contract
//!
//! atomic-role: WEIGHT_BUDGET = cell — retention tuning knob; readers
//! tolerate a stale value for one decision
//!
//! atomic-role: SAMPLE_EVERY = cell — retention lottery knob, same
//! contract
//!
//! atomic-role: SLO_US = cell — slow-query threshold knob, same contract

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Retained traces kept in the global ring (oldest evicted first).
pub const RING_CAPACITY: usize = 32;

/// Maximum spans captured per trace; beyond this, spans are counted in
/// `trace.spans.dropped` instead of captured (a batch driver tracing
/// thousands of sub-queries would otherwise grow without bound).
pub const MAX_TRACE_SPANS: u64 = 2048;

/// One completed span inside a trace: an interval with a parent pointer,
/// placed on the worker that ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Span id, 1-based and unique within the trace (deposit order of
    /// span *entries*, not exits).
    pub id: u64,
    /// Parent span id; 0 for the trace's root span.
    pub parent: u64,
    /// Span name (same contract as metric names).
    pub name: &'static str,
    /// Start offset in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Shard index of the thread that ran the span (0 = unsharded).
    pub pid: u32,
    /// Worker index of the thread that ran the span (0 = coordinator).
    pub tid: u32,
    /// Formatted `key = value` fields attached to the span.
    pub fields: Vec<(&'static str, String)>,
}

impl TraceSpan {
    /// End offset (µs since the trace epoch).
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// One reassembled per-query span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Globally unique trace id (nonzero; also stamped into flight
    /// records and histogram exemplars produced during the query).
    pub id: u64,
    /// Wall-clock of the whole traced scope in microseconds.
    pub wall_us: u64,
    /// Completed spans, in completion order. Reassemble with the
    /// `parent` pointers; [`Trace::render_tree`] does.
    pub spans: Vec<TraceSpan>,
}

impl Trace {
    /// The root span's name (the first span entered), or `"(empty)"`.
    pub fn root(&self) -> &'static str {
        self.spans
            .iter()
            .min_by_key(|s| s.id)
            .map_or("(empty)", |s| s.name)
    }

    /// The span with id `id`, if present.
    pub fn span(&self, id: u64) -> Option<&TraceSpan> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Maximum nesting depth over all spans (a root span has depth 1).
    pub fn max_depth(&self) -> usize {
        self.spans
            .iter()
            .map(|s| {
                let mut depth = 1usize;
                let mut parent = s.parent;
                // Parent chains are acyclic by construction (a span's
                // parent is always an earlier id); the bound is belt and
                // braces against a malformed trace.
                while parent != 0 && depth <= self.spans.len() {
                    depth += 1;
                    parent = self.span(parent).map_or(0, |p| p.parent);
                }
                depth
            })
            .max()
            .unwrap_or(0)
    }

    /// The sampler's interest weight: `spans × max_depth`.
    pub fn weight(&self) -> u64 {
        self.spans.len() as u64 * self.max_depth() as u64
    }

    /// Chrome trace-event objects (`ph:"X"` complete events) for every
    /// span, ready to be placed in a `traceEvents` array.
    pub fn chrome_events(&self) -> Vec<Json> {
        self.spans
            .iter()
            .map(|s| {
                let mut args = vec![
                    ("trace", Json::U64(self.id)),
                    ("span", Json::U64(s.id)),
                    ("parent", Json::U64(s.parent)),
                ];
                for (key, value) in &s.fields {
                    args.push((key, Json::Str(value.clone())));
                }
                Json::obj(vec![
                    ("name", Json::Str(s.name.to_owned())),
                    ("cat", Json::Str("treesim".to_owned())),
                    ("ph", Json::Str("X".to_owned())),
                    ("ts", Json::U64(s.start_us)),
                    ("dur", Json::U64(s.dur_us)),
                    ("pid", Json::U64(u64::from(s.pid))),
                    ("tid", Json::U64(u64::from(s.tid))),
                    ("args", Json::obj(args)),
                ])
            })
            .collect()
    }

    /// Renders the span tree as an indented text table: one line per
    /// span with total and self time (total minus direct children),
    /// worker placement, and fields.
    pub fn render_tree(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {}: {} — wall {}µs, {} spans, depth {}",
            self.id,
            self.root(),
            self.wall_us,
            self.spans.len(),
            self.max_depth()
        );
        // Children grouped by parent, ordered by start (ties: id).
        let mut order: Vec<&TraceSpan> = self.spans.iter().collect();
        order.sort_by_key(|s| (s.start_us, s.id));
        let children = |parent: u64| -> Vec<&TraceSpan> {
            order
                .iter()
                .copied()
                .filter(|s| {
                    s.parent == parent
                        // Orphans (parent span lost to the span cap)
                        // render at the root level rather than vanishing.
                        || (parent == 0 && s.parent != 0 && self.span(s.parent).is_none())
                })
                .collect()
        };
        let mut stack: Vec<(&TraceSpan, usize)> =
            children(0).into_iter().rev().map(|s| (s, 0usize)).collect();
        while let Some((span, depth)) = stack.pop() {
            let kids = children(span.id);
            let child_total: u64 = kids.iter().map(|c| c.dur_us).sum();
            let self_us = span.dur_us.saturating_sub(child_total);
            let indent = "  ".repeat(depth);
            let label = format!("{indent}{}", span.name);
            let _ = write!(
                out,
                "  {label:<40} total {:>8}µs  self {:>8}µs",
                span.dur_us, self_us
            );
            if span.pid != 0 || span.tid != 0 {
                let _ = write!(out, "  [shard {} worker {}]", span.pid, span.tid);
            }
            if !span.fields.is_empty() {
                let fields: Vec<String> = span
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let _ = write!(out, "  {{{}}}", fields.join(", "));
            }
            let _ = writeln!(out);
            for kid in kids.into_iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
        out
    }
}

/// Per-trace shared state: worker threads holding a [`TraceHandle`]
/// deposit into the same span vector as the coordinator.
#[derive(Debug)]
struct TraceShared {
    id: u64,
    next_span: AtomicU64,
    spans: Mutex<Vec<TraceSpan>>,
}

/// Mutex poisoning only means another thread panicked mid-deposit; the
/// spans already pushed are intact, so recover rather than propagate.
fn recover<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An open (not yet exited) span on this thread's capture stack.
#[derive(Debug)]
struct Frame {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
}

/// The thread-local capture context.
#[derive(Debug)]
struct TraceCtx {
    shared: Arc<TraceShared>,
    /// Open spans on this thread, innermost last.
    stack: Vec<Frame>,
    /// Parent id for this thread's outermost spans (the handle's capture
    /// point on worker threads; 0 on the coordinator).
    base_parent: u64,
    pid: u32,
    tid: u32,
}

thread_local! {
    static TRACE_CTX: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
    /// Mirror of the installed context's trace id, for the hot-path
    /// [`current_trace_id`] check (a `Cell` read, no `RefCell` borrow).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// Trace ids are globally unique and never 0.
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(0);

/// Sampler knob: retain traces whose `spans × max_depth` reaches this.
static WEIGHT_BUDGET: AtomicU64 = AtomicU64::new(64);
/// Sampler knob: retain every N-th trace (1 = all, 0 = never by lottery).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(16);
/// Sampler knob: retain traces at least this slow (µs).
static SLO_US: AtomicU64 = AtomicU64::new(10_000);

/// Sets the interest-weight retention budget (`spans × max_depth`).
pub fn set_weight_budget(weight: u64) {
    WEIGHT_BUDGET.store(weight, Ordering::Relaxed);
}

/// Sets the 1-in-N retention lottery period (`1` retains every trace,
/// `0` disables the lottery entirely).
pub fn set_sample_every(every: u64) {
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
}

/// Sets the slow-query retention threshold in microseconds.
pub fn set_slo_us(slo_us: u64) {
    SLO_US.store(slo_us, Ordering::Relaxed);
}

/// The current interest-weight retention budget.
pub fn weight_budget() -> u64 {
    WEIGHT_BUDGET.load(Ordering::Relaxed)
}

/// The current 1-in-N retention lottery period.
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// The current slow-query retention threshold in microseconds.
pub fn slo_us() -> u64 {
    SLO_US.load(Ordering::Relaxed)
}

/// The process trace epoch: all `start_us` offsets count from here, so
/// spans from different traces and threads share one Chrome timeline.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch() -> u64 {
    u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The trace id active on this thread, or 0 when no capture is live.
/// Cheap enough for per-sample call sites (one thread-local `Cell` read).
#[inline]
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// Whether a trace capture is live on this thread.
#[inline]
pub fn trace_active() -> bool {
    current_trace_id() != 0
}

/// RAII guard for one query's trace capture. Returned by [`start_trace`];
/// finalizes the trace (sampler decision + ring deposit) on drop. Inert
/// when a capture was already live — nested query paths (a clustering
/// run calling `engine.range`, a batch worker running `knn`) join the
/// enclosing trace instead of fragmenting it.
#[must_use = "a trace guard captures until it is dropped"]
#[derive(Debug)]
pub struct TraceGuard {
    state: Option<(Arc<TraceShared>, Instant)>,
}

impl TraceGuard {
    /// The captured trace's id (the enclosing trace's id when this guard
    /// is inert; never 0 inside a capture).
    pub fn id(&self) -> u64 {
        current_trace_id()
    }
}

/// Starts (or joins) a trace capture on this thread. The first span
/// entered under the returned guard becomes the trace's root.
pub fn start_trace() -> TraceGuard {
    if trace_active() {
        return TraceGuard { state: None };
    }
    let id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed) + 1;
    let shared = Arc::new(TraceShared {
        id,
        next_span: AtomicU64::new(0),
        spans: Mutex::new(Vec::new()),
    });
    TRACE_CTX.with(|ctx| {
        *ctx.borrow_mut() = Some(TraceCtx {
            shared: Arc::clone(&shared),
            stack: Vec::new(),
            base_parent: 0,
            pid: 0,
            tid: 0,
        });
    });
    CURRENT_TRACE.with(|c| c.set(id));
    crate::counter!("trace.captured").inc();
    TraceGuard {
        state: Some((shared, Instant::now())),
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        let Some((shared, start)) = self.state.take() else {
            return;
        };
        TRACE_CTX.with(|ctx| ctx.borrow_mut().take());
        CURRENT_TRACE.with(|c| c.set(0));
        let wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let spans = std::mem::take(&mut *recover(&shared.spans));
        finalize(Trace {
            id: shared.id,
            wall_us,
            spans,
        });
    }
}

/// The sampler: retain a finished trace iff it is interesting (weight),
/// lottery-selected (1-in-N), or slow (SLO). See the module docs.
fn finalize(trace: Trace) {
    if trace.spans.is_empty() {
        return;
    }
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    let keep = trace.weight() >= WEIGHT_BUDGET.load(Ordering::Relaxed)
        || (every > 0 && trace.id % every == 0)
        || trace.wall_us >= SLO_US.load(Ordering::Relaxed);
    if !keep {
        return;
    }
    crate::counter!("trace.retained").inc();
    let mut ring = recover(ring());
    while ring.len() >= RING_CAPACITY {
        ring.pop_front();
        crate::counter!("trace.evicted").inc();
    }
    ring.push_back(trace);
}

fn ring() -> &'static Mutex<VecDeque<Trace>> {
    static RING: OnceLock<Mutex<VecDeque<Trace>>> = OnceLock::new();
    RING.get_or_init(|| {
        crate::metrics::gauge("trace.ring.capacity").set(RING_CAPACITY as i64);
        Mutex::new(VecDeque::with_capacity(RING_CAPACITY))
    })
}

/// Copies out every retained trace, oldest first.
pub fn retained() -> Vec<Trace> {
    recover(ring()).iter().cloned().collect()
}

/// The retained trace with id `id`, if still in the ring.
pub fn find(id: u64) -> Option<Trace> {
    recover(ring()).iter().find(|t| t.id == id).cloned()
}

/// The most recently retained trace, if any.
pub fn latest() -> Option<Trace> {
    recover(ring()).back().cloned()
}

/// Empties the ring (tests and benchmarks isolating their own traffic).
pub fn clear() {
    recover(ring()).clear();
}

/// The `/trace.json` document: every retained trace's spans as Chrome
/// trace-event format, loadable in `chrome://tracing` / Perfetto.
pub fn chrome_trace_json() -> Json {
    let traces = retained();
    let events: Vec<Json> = traces.iter().flat_map(Trace::chrome_events).collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".to_owned())),
        (
            "otherData",
            Json::obj(vec![
                ("schema", Json::Str("treesim-trace/v1".to_owned())),
                ("traces", Json::U64(traces.len() as u64)),
                ("ring_capacity", Json::U64(RING_CAPACITY as u64)),
            ]),
        ),
    ])
}

/// A capture point handed to worker threads: carries the trace and the
/// span under which the worker's spans should hang. Capture with
/// [`current_handle`] *before* spawning, install inside the worker.
#[derive(Debug, Clone)]
pub struct TraceHandle {
    shared: Arc<TraceShared>,
    parent: u64,
}

/// Captures this thread's live trace and innermost span as a
/// [`TraceHandle`], or `None` when no capture is live.
pub fn current_handle() -> Option<TraceHandle> {
    TRACE_CTX.with(|ctx| {
        let borrow = ctx.borrow();
        let ctx = borrow.as_ref()?;
        Some(TraceHandle {
            shared: Arc::clone(&ctx.shared),
            parent: ctx.stack.last().map_or(ctx.base_parent, |f| f.id),
        })
    })
}

impl TraceHandle {
    /// Joins the trace on the current (worker) thread: spans entered
    /// until the returned guard drops are deposited under the handle's
    /// capture point, stamped with `pid` (shard) and `tid` (worker).
    pub fn install(&self, pid: u32, tid: u32) -> WorkerTraceGuard {
        let prev = TRACE_CTX.with(|ctx| {
            ctx.borrow_mut().replace(TraceCtx {
                shared: Arc::clone(&self.shared),
                stack: Vec::new(),
                base_parent: self.parent,
                pid,
                tid,
            })
        });
        let prev_id = current_trace_id();
        CURRENT_TRACE.with(|c| c.set(self.shared.id));
        WorkerTraceGuard { prev, prev_id }
    }
}

/// RAII guard for a worker thread's membership in a trace; restores the
/// thread's previous capture state on drop.
#[derive(Debug)]
#[must_use = "a worker trace guard keeps the thread in the trace until dropped"]
pub struct WorkerTraceGuard {
    prev: Option<TraceCtx>,
    prev_id: u64,
}

impl Drop for WorkerTraceGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        TRACE_CTX.with(|ctx| *ctx.borrow_mut() = prev);
        CURRENT_TRACE.with(|c| c.set(self.prev_id));
    }
}

/// Hook for [`crate::SpanGuard::enter`]: opens a capture frame for the
/// span if a trace is live. Returns whether the span is being traced
/// (the guard passes it back to [`on_span_exit`] so a trace started
/// mid-span never pops a frame it did not push).
pub(crate) fn on_span_enter(name: &'static str) -> bool {
    TRACE_CTX.with(|ctx| {
        let mut borrow = ctx.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return false;
        };
        let id = ctx.shared.next_span.fetch_add(1, Ordering::Relaxed) + 1;
        if id > MAX_TRACE_SPANS {
            crate::counter!("trace.spans.dropped").inc();
            return false;
        }
        let parent = ctx.stack.last().map_or(ctx.base_parent, |f| f.id);
        ctx.stack.push(Frame {
            id,
            parent,
            name,
            start: Instant::now(),
            start_us: micros_since_epoch(),
        });
        true
    })
}

/// Hook for [`crate::SpanGuard`]'s drop: completes the innermost capture
/// frame and deposits the finished [`TraceSpan`].
pub(crate) fn on_span_exit(name: &'static str, fields: &[(&'static str, String)]) {
    TRACE_CTX.with(|ctx| {
        let mut borrow = ctx.borrow_mut();
        let Some(ctx) = borrow.as_mut() else {
            return;
        };
        let Some(frame) = ctx.stack.pop() else {
            return;
        };
        debug_assert_eq!(frame.name, name, "trace frame stack out of order");
        let span = TraceSpan {
            id: frame.id,
            parent: frame.parent,
            name: frame.name,
            start_us: frame.start_us,
            dur_us: u64::try_from(frame.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            pid: ctx.pid,
            tid: ctx.tid,
            fields: fields.to_vec(),
        };
        recover(&ctx.shared.spans).push(span);
    });
}

/// A trace-only span guard: participates in trace capture exactly like
/// [`crate::SpanGuard`] but records no histogram and emits no sink
/// events — for spans on hot inner paths (per-candidate refinement,
/// per-stage funnel sweeps) whose timing histograms already exist under
/// other names, where a full span would double-count them. Free when no
/// trace is live.
#[must_use = "a trace span measures until it is dropped"]
#[derive(Debug)]
pub struct TraceSpanGuard {
    name: &'static str,
    traced: bool,
    fields: Vec<(&'static str, String)>,
}

impl TraceSpanGuard {
    /// Attaches a field; the value closure only runs when the span is
    /// actually being traced.
    pub fn push_field(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if self.traced {
            self.fields.push((key, value()));
        }
    }
}

impl Drop for TraceSpanGuard {
    fn drop(&mut self) {
        if self.traced {
            on_span_exit(self.name, &std::mem::take(&mut self.fields));
        }
    }
}

/// Opens a trace-only span (see [`TraceSpanGuard`]). The name obeys the
/// same [`crate::naming`] contract as metric names.
pub fn span(name: &'static str) -> TraceSpanGuard {
    TraceSpanGuard {
        name,
        traced: on_span_enter(name),
        fields: Vec::new(),
    }
}

/// Capture contexts are thread-local but the ring and sampler knobs are
/// global: tests (anywhere in the crate) that depend on them serialize
/// through this lock.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    use super::test_lock as trace_lock;

    fn retain_all() {
        set_sample_every(1);
        set_weight_budget(64);
        set_slo_us(10_000);
    }

    #[test]
    fn spans_assemble_into_a_tree() {
        let _lock = trace_lock();
        retain_all();
        clear();
        let id = {
            let trace = start_trace();
            let id = trace.id();
            assert_ne!(id, 0);
            assert_eq!(current_trace_id(), id);
            {
                let _root = crate::span!("engine.knn", k = 3);
                {
                    let mut refine = span("refine.call");
                    refine.push_field("verdict", || "hit".to_owned());
                }
                let _other = span("cascade.size");
            }
            id
        };
        assert_eq!(current_trace_id(), 0);
        let trace = find(id).expect("retained with sample_every=1");
        assert_eq!(trace.root(), "engine.knn");
        assert_eq!(trace.spans.len(), 3);
        let root = trace.span(1).unwrap();
        assert_eq!(root.parent, 0);
        let refine = trace
            .spans
            .iter()
            .find(|s| s.name == "refine.call")
            .unwrap();
        assert_eq!(refine.parent, root.id);
        assert_eq!(refine.fields, vec![("verdict", "hit".to_owned())]);
        assert!(trace.max_depth() >= 2);
        // Children telescope inside the root interval.
        assert!(refine.start_us >= root.start_us);
        assert!(refine.end_us() <= root.end_us() + 2);
        let rendered = trace.render_tree();
        assert!(rendered.contains("engine.knn"), "{rendered}");
        assert!(rendered.contains("verdict=hit"), "{rendered}");
    }

    #[test]
    fn nested_start_is_inert_and_joins_the_outer_trace() {
        let _lock = trace_lock();
        retain_all();
        clear();
        let outer_id = {
            let outer = start_trace();
            let outer_id = outer.id();
            let _root = crate::span!("engine.knn");
            {
                let inner = start_trace();
                assert_eq!(inner.id(), outer_id, "inner guard joins the outer trace");
                let _span = span("refine.call");
            }
            // Dropping the inert inner guard must not end the capture.
            assert_eq!(current_trace_id(), outer_id);
            outer_id
        };
        let trace = find(outer_id).expect("one merged trace");
        assert_eq!(trace.spans.len(), 2);
    }

    #[test]
    fn handle_propagates_to_worker_threads_with_pid_tid() {
        let _lock = trace_lock();
        retain_all();
        clear();
        let id = {
            let trace = start_trace();
            let _root = crate::span!("shard.knn");
            let handle = current_handle().expect("capture live");
            std::thread::scope(|scope| {
                for shard in 1..=2u32 {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        let _worker = handle.install(shard, shard);
                        let _span = span("shard.worker");
                    });
                }
            });
            trace.id()
        };
        let trace = find(id).expect("retained");
        assert_eq!(trace.spans.len(), 3);
        let root = trace.spans.iter().find(|s| s.name == "shard.knn").unwrap();
        let workers: Vec<&TraceSpan> = trace
            .spans
            .iter()
            .filter(|s| s.name == "shard.worker")
            .collect();
        assert_eq!(workers.len(), 2);
        for worker in workers {
            assert_eq!(worker.parent, root.id);
            assert!(worker.pid == 1 || worker.pid == 2);
            assert_eq!(worker.pid, worker.tid);
        }
        assert_eq!(current_handle().map(|_| ()), None);
    }

    #[test]
    fn sampler_retains_by_weight_lottery_and_slo() {
        let _lock = trace_lock();
        clear();
        // Lottery off, huge budget, huge SLO: a small trace is dropped.
        set_sample_every(0);
        set_weight_budget(u64::MAX);
        set_slo_us(u64::MAX);
        let dropped = {
            let trace = start_trace();
            let _span = span("engine.knn");
            trace.id()
        };
        assert!(
            find(dropped).is_none(),
            "sampler must drop the boring trace"
        );

        // Weight path: budget 2 retains a 2-deep, 2-span trace (weight 4).
        set_weight_budget(2);
        let kept = {
            let trace = start_trace();
            let _root = span("engine.knn");
            let _child = span("refine.call");
            trace.id()
        };
        assert!(find(kept).is_some(), "weight budget must retain");

        // SLO path: everything else off, a 0µs threshold keeps any trace.
        set_weight_budget(u64::MAX);
        set_slo_us(0);
        let slow = {
            let trace = start_trace();
            let _span = span("engine.knn");
            trace.id()
        };
        assert!(find(slow).is_some(), "SLO threshold must retain");
        retain_all();
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let _lock = trace_lock();
        retain_all();
        clear();
        let mut ids = Vec::new();
        for _ in 0..(RING_CAPACITY + 5) {
            let trace = start_trace();
            let _span = span("engine.knn");
            ids.push(trace.id());
        }
        let held = retained();
        assert_eq!(held.len(), RING_CAPACITY);
        // The oldest five were evicted; the newest are all present.
        for id in &ids[..5] {
            assert!(find(*id).is_none());
        }
        for id in &ids[5..] {
            assert!(find(*id).is_some());
        }
        assert_eq!(latest().map(|t| t.id), ids.last().copied());
    }

    #[test]
    fn chrome_export_has_complete_events() {
        let _lock = trace_lock();
        retain_all();
        clear();
        {
            let _trace = start_trace();
            let _root = crate::span!("engine.range", tau = 2);
            let _child = span("cascade.propt");
        }
        let doc = chrome_trace_json();
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for event in events {
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            for key in ["ts", "dur", "pid", "tid"] {
                assert!(event.get(key).and_then(Json::as_u64).is_some(), "{key}");
            }
            assert!(event.get("name").and_then(Json::as_str).is_some());
            assert!(event
                .get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_u64)
                .is_some());
        }
        // The document round-trips through our own parser.
        let text = doc.to_string_pretty();
        assert!(crate::json::parse(&text).is_ok());
    }

    #[test]
    fn span_cap_drops_excess_spans() {
        let _lock = trace_lock();
        retain_all();
        clear();
        let id = {
            let trace = start_trace();
            let _root = span("engine.knn");
            for _ in 0..MAX_TRACE_SPANS + 10 {
                let _s = span("refine.call");
            }
            trace.id()
        };
        let trace = find(id).expect("retained");
        assert_eq!(trace.spans.len() as u64, MAX_TRACE_SPANS);
    }
}
