//! Windowed aggregation: a rotating ring of per-interval delta snapshots
//! over the cumulative registry, so "the last 5 minutes" is answerable
//! from the same counters and log₂ histograms that otherwise only report
//! lifetime totals.
//!
//! Every metric the registry holds is cumulative since process start.
//! The ring fixes that by sealing, once per interval, the *difference*
//! between the current registry snapshot and the one sealed before it
//! ([`MetricsSnapshot::delta_since`]): counters become per-interval
//! flows, histograms become per-interval bucket deltas (windowed
//! p50/p90/p99 fall out of the ordinary quantile walk over the summed
//! deltas), gauges stay levels. A trailing window is then the merge of
//! the newest `n` sealed deltas plus the live, partially-elapsed
//! interval — so a window reflects traffic the instant it happens, not
//! one rotation later.
//!
//! Rotation is *lazy*: there is no ticker thread. Every read path calls
//! [`WindowRing::tick`] (or the internal rotation inside
//! [`WindowRing::window`]) first, which seals however many intervals have
//! elapsed since the last look — idle processes pay nothing. Time comes
//! from [`crate::clock`], so tests inject a manual clock and rotation
//! becomes fully deterministic.
//!
//! Concurrency: the hot path (metric recording) is untouched — the ring
//! only ever *reads* the registry. Rotation and window reads serialize on
//! one mutex around the ring state (cold path, scrape-rate). The sealed
//! watermark is additionally published lock-free so cheap staleness
//! checks ([`WindowRing::sealed_through`]) need no lock; that pair is the
//! protocol the model checker drives (`crates/obs/tests/model.rs`) and
//! the happens-before lint verifies statically. The ring routes its
//! mutex and atomic through [`crate::sync`], so the *production* rotation
//! code — not a mirror — runs under the model scheduler.
//!
//! # Memory-model contracts (checked by `xtask analyze` happens-before)
//!
//! atomic-role: epoch = publish — the sealed-through watermark: stored
//! with Release while the ring lock is held, *after* the sealed deltas
//! are written into the ring state, and loaded with Acquire by lock-free
//! readers — a reader that observes epoch ≥ e is guaranteed the seal for
//! every interval before `e` happened-before its load (lock-taking
//! readers get the same edge from the mutex)

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::metrics::MetricsSnapshot;
use crate::sync::{AtomicU64, Mutex, Ordering};

/// Default interval width: 60 s slices, so the fast SRE window is 5
/// slots and the slow one 60.
pub const DEFAULT_INTERVAL_US: u64 = 60 * 1_000_000;

/// Sealed intervals making up the fast burn-rate window (5 minutes at
/// the default interval).
pub const FAST_WINDOW_INTERVALS: usize = 5;

/// Sealed intervals making up the slow burn-rate window (1 hour at the
/// default interval).
pub const SLOW_WINDOW_INTERVALS: usize = 60;

/// Default ring capacity: the slow window plus one slot of slack so a
/// read racing a rotation still sees a full hour.
pub const DEFAULT_CAPACITY: usize = SLOW_WINDOW_INTERVALS + 1;

/// One sealed interval: the registry delta for epoch `epoch` (the
/// half-open wall-time slice `[epoch·I, (epoch+1)·I)`).
#[derive(Debug, Clone)]
pub struct SealedInterval {
    /// Which interval this delta covers.
    pub epoch: u64,
    /// Registry activity within the interval.
    pub delta: MetricsSnapshot,
}

/// Ring-interior state, guarded by the ring mutex.
#[derive(Debug, Default)]
struct RingState {
    /// Cumulative snapshot at the last seal (`None` until the first
    /// rotation establishes the baseline).
    last: Option<MetricsSnapshot>,
    /// First epoch not yet sealed.
    next_epoch: u64,
    /// Sealed deltas, oldest first, at most `capacity` of them.
    sealed: VecDeque<SealedInterval>,
}

/// The rotating ring of per-interval registry deltas. See the module
/// docs for the rotation and windowing semantics.
#[derive(Debug)]
pub struct WindowRing {
    interval_us: u64,
    capacity: usize,
    state: Mutex<RingState>,
    epoch: AtomicU64,
}

impl WindowRing {
    /// A ring sealing `interval_us`-wide deltas, keeping at most
    /// `capacity` of them (both clamped to at least 1).
    pub fn new(interval_us: u64, capacity: usize) -> WindowRing {
        WindowRing {
            interval_us: interval_us.max(1),
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Interval width in microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Maximum sealed intervals held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The first unsealed epoch, loaded lock-free with Acquire: every
    /// interval before it has been sealed and its delta is visible to
    /// this thread. 0 until the first rotation actually seals something.
    pub fn sealed_through(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Seals every completed interval using the global clock and
    /// registry; returns how many intervals were sealed. Call this (or
    /// any window read, which rotates internally) from scrape paths —
    /// there is no background ticker.
    pub fn tick(&self) -> usize {
        let sealed = self.rotate_with(crate::clock::now_us(), &crate::metrics::snapshot());
        if sealed > 0 {
            crate::metrics::counter("window.rotations").add(sealed as u64);
            let through = i64::try_from(self.sealed_through()).unwrap_or(i64::MAX);
            crate::metrics::gauge("window.sealed_through").set(through);
        }
        sealed
    }

    /// Deterministic rotation core: seals every interval completed as of
    /// `now_us`, treating `current` as the cumulative registry snapshot.
    /// The first call only establishes the baseline. When more than one
    /// interval elapsed since the last look, the whole accumulated delta
    /// is attributed to the most recent completed interval and the gap is
    /// back-filled with empty deltas (nobody was looking, so finer
    /// attribution is unknowable); gaps longer than the ring are skipped.
    pub fn rotate_with(&self, now_us: u64, current: &MetricsSnapshot) -> usize {
        let target = now_us / self.interval_us;
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(last) = state.last.as_ref() else {
            state.last = Some(current.clone());
            state.next_epoch = target;
            return 0;
        };
        if target <= state.next_epoch {
            return 0;
        }
        let delta = current.delta_since(last);
        // Backfill at most a ring's worth of idle intervals.
        let first_kept = (target - 1).saturating_sub(self.capacity as u64 - 1);
        let mut sealed = 0usize;
        for epoch in state.next_epoch.max(first_kept)..target - 1 {
            state.sealed.push_back(SealedInterval {
                epoch,
                delta: MetricsSnapshot::default(),
            });
            sealed += 1;
        }
        state.sealed.push_back(SealedInterval {
            epoch: target - 1,
            delta,
        });
        sealed += 1;
        while state.sealed.len() > self.capacity {
            state.sealed.pop_front();
        }
        state.last = Some(current.clone());
        state.next_epoch = target;
        // Publish the watermark last, after the sealed deltas are in
        // place — the Release half of the `epoch` protocol.
        self.epoch.store(target, Ordering::Release);
        sealed
    }

    /// The trailing window of the last `intervals` intervals as one
    /// merged delta snapshot, including the live partially-elapsed
    /// interval (rotating first, so the view is current as of `now_us`).
    pub fn window_with(
        &self,
        now_us: u64,
        current: &MetricsSnapshot,
        intervals: usize,
    ) -> MetricsSnapshot {
        self.rotate_with(now_us, current);
        let target = now_us / self.interval_us;
        let oldest = target.saturating_sub(intervals as u64);
        let state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = MetricsSnapshot::default();
        for interval in state.sealed.iter().filter(|s| s.epoch >= oldest) {
            out.merge(&interval.delta);
        }
        if let Some(last) = state.last.as_ref() {
            out.merge(&current.delta_since(last));
        }
        out
    }

    /// [`WindowRing::window_with`] against the global clock and registry.
    pub fn window(&self, intervals: usize) -> MetricsSnapshot {
        self.window_with(
            crate::clock::now_us(),
            &crate::metrics::snapshot(),
            intervals,
        )
    }

    /// Copies out the sealed intervals, oldest first (tests/debugging).
    pub fn sealed_intervals(&self) -> Vec<SealedInterval> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .sealed
            .iter()
            .cloned()
            .collect()
    }
}

/// The global ring behind `/slo.json`, `/health` and the windowed
/// Prometheus series: [`DEFAULT_INTERVAL_US`] slices,
/// [`DEFAULT_CAPACITY`] slots.
pub fn global() -> &'static WindowRing {
    static GLOBAL: OnceLock<WindowRing> = OnceLock::new();
    GLOBAL.get_or_init(|| WindowRing::new(DEFAULT_INTERVAL_US, DEFAULT_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CounterSnapshot, HistogramSnapshot};

    fn snap(counter: u64, samples: &[u64]) -> MetricsSnapshot {
        let mut buckets: Vec<(u8, u64)> = Vec::new();
        let mut sum = 0;
        let mut max = 0;
        for &v in samples {
            let i = crate::metrics::bucket_index(v) as u8;
            match buckets.iter_mut().find(|(b, _)| *b == i) {
                Some((_, n)) => *n += 1,
                None => buckets.push((i, 1)),
            }
            sum += v;
            max = max.max(v);
        }
        buckets.sort_unstable();
        MetricsSnapshot {
            counters: vec![CounterSnapshot {
                name: "test.window.queries".to_owned(),
                value: counter,
            }],
            gauges: Vec::new(),
            histograms: vec![HistogramSnapshot {
                name: "test.window.us".to_owned(),
                count: samples.len() as u64,
                sum,
                max,
                buckets,
                exemplars: Vec::new(),
            }],
        }
    }

    #[test]
    fn rotation_seals_deltas_per_interval() {
        let ring = WindowRing::new(100, 4);
        assert_eq!(ring.rotate_with(0, &snap(0, &[])), 0, "baseline only");
        assert_eq!(ring.sealed_through(), 0);
        // One interval later: the delta of what happened within it.
        assert_eq!(ring.rotate_with(150, &snap(5, &[10, 10])), 1);
        assert_eq!(ring.sealed_through(), 1);
        let sealed = ring.sealed_intervals();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].epoch, 0);
        assert_eq!(sealed[0].delta.counter("test.window.queries"), Some(5));
        assert_eq!(
            sealed[0].delta.histogram("test.window.us").map(|h| h.count),
            Some(2)
        );
        // Same interval again: nothing new to seal.
        assert_eq!(ring.rotate_with(180, &snap(6, &[10, 10, 10])), 0);
        // Next interval picks up the remainder.
        assert_eq!(ring.rotate_with(210, &snap(6, &[10, 10, 10])), 1);
        assert_eq!(
            ring.sealed_intervals()[1]
                .delta
                .counter("test.window.queries"),
            Some(1)
        );
    }

    #[test]
    fn gaps_backfill_empty_and_ring_wraps() {
        let ring = WindowRing::new(100, 3);
        ring.rotate_with(0, &snap(0, &[]));
        // Jump 5 intervals with capacity 3: the oldest slots are skipped
        // entirely, the accumulated delta lands on the newest one.
        assert_eq!(ring.rotate_with(520, &snap(9, &[1])), 3);
        let sealed = ring.sealed_intervals();
        assert_eq!(sealed.len(), 3);
        assert_eq!(
            sealed.iter().map(|s| s.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(sealed[0].delta.counter("test.window.queries"), None);
        assert_eq!(sealed[2].delta.counter("test.window.queries"), Some(9));
        assert_eq!(ring.sealed_through(), 5);
        // Further rotations evict the oldest sealed interval.
        ring.rotate_with(620, &snap(10, &[1, 2]));
        let sealed = ring.sealed_intervals();
        assert_eq!(sealed.len(), 3);
        assert_eq!(
            sealed.iter().map(|s| s.epoch).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
    }

    #[test]
    fn windows_sum_sealed_plus_live_partial() {
        let ring = WindowRing::new(100, 8);
        ring.rotate_with(0, &snap(0, &[]));
        ring.rotate_with(110, &snap(3, &[5, 5]));
        ring.rotate_with(210, &snap(7, &[5, 5, 5, 1000]));
        // Live partial: two more queries, one more sample since the seal.
        let live = snap(9, &[5, 5, 5, 1000, 40]);
        let w = ring.window_with(250, &live, 2);
        assert_eq!(w.counter("test.window.queries"), Some(9));
        let h = w.histogram("test.window.us").expect("windowed histogram");
        assert_eq!(h.count, 5, "both sealed intervals plus the live sample");
        // Windowed quantiles come from the merged deltas.
        assert!(h.p99() >= 1000);
        assert_eq!(h.p50(), 7, "bucket [4,8) upper edge");
        // A 1-interval window drops the older seal but keeps the live tail.
        let w1 = ring.window_with(250, &live, 1);
        assert_eq!(w1.counter("test.window.queries"), Some(4 + 2));
        assert_eq!(
            w1.histogram("test.window.us").map(|h| h.count),
            Some(3),
            "epoch-1 seal (2 samples) plus the live sample"
        );
    }

    #[test]
    fn rotation_is_deterministic_for_a_replayed_schedule() {
        let schedule: Vec<(u64, MetricsSnapshot)> = vec![
            (0, snap(0, &[])),
            (120, snap(2, &[7])),
            (390, snap(5, &[7, 9, 2000])),
            (400, snap(9, &[7, 9, 2000, 1])),
            (650, snap(12, &[7, 9, 2000, 1, 1, 1])),
        ];
        let run = || {
            let ring = WindowRing::new(100, 16);
            for (now, s) in &schedule {
                ring.rotate_with(*now, s);
            }
            ring.sealed_intervals()
                .iter()
                .map(|s| {
                    (
                        s.epoch,
                        s.delta.counter("test.window.queries").unwrap_or(0),
                        s.delta.histogram("test.window.us").map_or(0, |h| h.count),
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn global_ring_ticks_against_the_real_registry() {
        // The global ring's baseline is whatever the registry holds now;
        // a tick with no elapsed interval seals nothing (the default
        // interval is 60 s) but must not panic or lock up.
        let before = global().sealed_through();
        global().tick();
        assert!(global().sealed_through() >= before);
        let w = global().window(FAST_WINDOW_INTERVALS);
        // The live partial window reflects registry activity at worst.
        let _ = w.counters.len();
    }
}
