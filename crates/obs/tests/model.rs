//! Model-checked protocol tests for the obs concurrency core. Built only
//! under `RUSTFLAGS="--cfg treesim_model"` (the CI `model-check` step):
//! the `treesim_obs::sync` facade then resolves to the shims in
//! `treesim_obs::model`, so the *production* flight-recorder code runs
//! under the exhaustive interleaving scheduler. The span-sink and
//! trace-ring protocols use statics/thread-locals that cannot be swapped
//! per run, so they are checked as faithful mirrors instead — see
//! DESIGN.md §14 for what each result does and does not prove.
#![cfg(treesim_model)]

use treesim_obs::model::{explore, verify, AtomicBool, AtomicU64, Failure, Mutex, Options, Stats};
use treesim_obs::sync::Ordering;
use treesim_obs::{
    CounterSnapshot, FlightRecorder, MetricsSnapshot, QueryKind, QueryRecord, WindowRing,
};

fn opts() -> Options {
    Options::default()
}

// ---------------------------------------------------------------------
// Protocol (a): flight-recorder push/drain, the real production code.
// ---------------------------------------------------------------------

/// Two writers race a drainer on the real `FlightRecorder`. Under every
/// schedule: ids are unique and nonzero, and what the drainer takes plus
/// what remains accounts for every deposit (the ring never loses a record
/// without counting it as an eviction).
#[test]
fn recorder_concurrent_push_drain_is_sound() {
    let stats = explore(
        &opts(),
        3,
        || {
            (
                FlightRecorder::with_capacity(16),
                Mutex::new(Vec::<Vec<u64>>::new()),
            )
        },
        |i, (rec, out)| match i {
            0 | 1 => {
                let a = rec.record(QueryRecord::new(QueryKind::Knn));
                let b = rec.record(QueryRecord::new(QueryKind::Range));
                out.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(vec![a, b]);
            }
            _ => {
                let drained = rec.drain();
                let mut prev = 0;
                for r in &drained {
                    verify(r.id > prev, "drain must be sorted by unique nonzero id");
                    prev = r.id;
                }
            }
        },
        |(rec, out)| {
            let out = out
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut ids: Vec<u64> = out.iter().flatten().copied().collect();
            ids.sort_unstable();
            ids.dedup();
            if ids.len() != 4 || ids.contains(&0) {
                return Err(format!("writer ids not unique/nonzero: {out:?}"));
            }
            if rec.len() > rec.capacity() {
                return Err(format!(
                    "len {} exceeds capacity {}",
                    rec.len(),
                    rec.capacity()
                ));
            }
            Ok(())
        },
    )
    .expect("recorder push/drain is sound under every bounded schedule");
    assert!(stats.schedules > 1, "{stats:?}");
}

/// Overflow semantics under the shims: deposits beyond capacity evict the
/// shard-oldest record and every eviction is tallied. One model thread
/// keeps the schedule deterministic; the point is that the production
/// overwrite path runs (and is step-instrumented) under the model build.
#[test]
fn recorder_overflow_evicts_and_counts() {
    explore(
        &opts(),
        1,
        || FlightRecorder::with_capacity(1),
        |_, rec| {
            // Capacity rounds up to one slot per shard; two full rounds of
            // ids over the shards guarantee every shard evicts once.
            let total = rec.capacity() * 2;
            for _ in 0..total {
                rec.record(QueryRecord::new(QueryKind::Knn));
            }
            verify(
                rec.len() <= rec.capacity(),
                "ring must not grow past capacity",
            );
            let evicted: u64 = rec.dropped_by_kind().iter().map(|(_, n)| n).sum();
            verify(
                evicted == rec.capacity() as u64,
                "every overwritten record must be tallied",
            );
            let drained = rec.drain();
            verify(
                drained.len() == rec.capacity(),
                "drain returns exactly the surviving records",
            );
            verify(rec.is_empty(), "drain empties the ring");
        },
        |_| Ok(()),
    )
    .expect("overflow bookkeeping is exact");
}

// ---------------------------------------------------------------------
// Protocol (b): SINK_ACTIVE install/uninstall vs concurrent emission —
// a mirror of crates/obs/src/span.rs (flag = SINK_ACTIVE, slot = the
// sink slot; 0 = empty, nonzero = a fully-written sink).
// ---------------------------------------------------------------------

/// The span-sink publication protocol, parameterized by the hot-path load
/// ordering so the historical regression stays checkable.
fn sink_protocol(load_order: Ordering) -> Result<Stats, Failure> {
    explore(
        &opts(),
        2,
        || (AtomicU64::new(0), AtomicBool::new(false)),
        move |i, (slot, flag)| match i {
            // install_sink: write the slot, then publish with Release.
            0 => {
                slot.store(1, Ordering::Relaxed);
                flag.store(true, Ordering::Release);
            }
            // Emission hot path: flag check, then the slot read.
            _ => {
                if flag.load(load_order) {
                    verify(
                        slot.load(Ordering::Relaxed) != 0,
                        "observed SINK_ACTIVE but the sink slot is empty",
                    );
                }
            }
        },
        |_| Ok(()),
    )
}

/// The shipped protocol: `Acquire` on the hot path makes the slot write
/// visible whenever the flag reads true.
#[test]
fn sink_active_acquire_load_is_sound() {
    let stats = sink_protocol(Ordering::Acquire).expect("Release/Acquire publication is sound");
    assert!(stats.schedules > 1, "{stats:?}");
}

/// Regression: the pre-fix hot path loaded `SINK_ACTIVE` with `Relaxed`,
/// so emission could observe the flag without the slot. The checker must
/// find that interleaving (the happens-before lint also flags it
/// statically — see `lints::happens_before` tests).
#[test]
fn sink_active_relaxed_load_regression_is_caught() {
    let failure = sink_protocol(Ordering::Relaxed)
        .expect_err("the model checker must catch the historical Relaxed bug");
    assert!(
        failure.message.contains("sink slot is empty"),
        "{failure:?}"
    );
    assert!(!failure.schedule.is_empty(), "{failure:?}");
}

/// Uninstall racing emission: clearing flips the flag (Release) before
/// wiping the slot, so an emitter that observed `true` still sees a
/// usable slot — the mirror of `clear_sink`'s ordering contract.
#[test]
fn sink_clear_never_exposes_a_wiped_slot() {
    explore(
        &opts(),
        3,
        || (AtomicU64::new(0), AtomicBool::new(false)),
        |i, (slot, flag)| match i {
            0 => {
                slot.store(1, Ordering::Relaxed);
                flag.store(true, Ordering::Release);
            }
            1 => {
                // clear_sink mirror: retract the flag first, then reuse
                // the slot (modelled as a second generation, not zero).
                flag.store(false, Ordering::Release);
                slot.store(2, Ordering::Relaxed);
            }
            _ => {
                if flag.load(Ordering::Acquire) {
                    verify(
                        slot.load(Ordering::Relaxed) != 0,
                        "observed SINK_ACTIVE but the sink slot is empty",
                    );
                }
            }
        },
        |_| Ok(()),
    )
    .expect("install/clear/emit interleavings are sound");
}

// ---------------------------------------------------------------------
// Protocol (c): trace-ring overwrite vs reader snapshot — a mirror of
// crates/obs/src/trace.rs (the ring is a mutex-guarded Vec; a trace is
// modelled as a (id, payload) pair that must never be observed torn).
// ---------------------------------------------------------------------

#[test]
fn trace_ring_snapshots_are_never_torn() {
    let stats = explore(
        &opts(),
        2,
        || Mutex::new(vec![(0u64, 0u64)]),
        |i, ring| match i {
            0 => {
                // Writer: overwrite the single slot, field by field, but
                // under the ring lock — the model must show no torn read.
                for k in 1..=2u64 {
                    let mut g = ring
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    g[0].0 = k;
                    g[0].1 = k;
                }
            }
            _ => {
                for _ in 0..2 {
                    let snap = {
                        let g = ring
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        g[0]
                    };
                    verify(snap.0 == snap.1, "reader snapshotted a torn trace record");
                }
            }
        },
        |ring| {
            let g = ring
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if g[0] == (2, 2) {
                Ok(())
            } else {
                Err(format!("writer updates lost: {:?}", g[0]))
            }
        },
    )
    .expect("lock-guarded overwrite admits no torn snapshot");
    assert!(stats.schedules > 1, "{stats:?}");
}

// ---------------------------------------------------------------------
// Protocol (d): window-ring rotate vs window read — the real production
// `WindowRing` (crates/obs/src/window.rs routes its mutex and `epoch`
// atomic through the `sync` facade), plus a raw mirror of the epoch
// publish pair so the Relaxed regression stays checkable.
// ---------------------------------------------------------------------

fn counters(value: u64) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: vec![CounterSnapshot {
            name: "test.model.window".to_owned(),
            value,
        }],
        gauges: Vec::new(),
        histograms: Vec::new(),
    }
}

/// A rotator races a window reader on the real `WindowRing`. Under every
/// schedule the window total is all-or-nothing (never a torn partial
/// delta), and a reader that observes the sealed watermark at 1 is
/// guaranteed the full sealed delta — the Release store in `rotate_with`
/// paired with the mutex/Acquire on the read side.
#[test]
fn window_ring_rotation_vs_read_is_sound() {
    let stats = explore(
        &opts(),
        2,
        || (WindowRing::new(10, 4), Mutex::new(Vec::<(u64, u64)>::new())),
        |i, (ring, seen)| match i {
            0 => {
                // Rotator: establish the baseline at t=0, then seal the
                // first interval at t=15 with 5 counted queries.
                ring.rotate_with(0, &counters(0));
                ring.rotate_with(15, &counters(5));
            }
            _ => {
                let total = ring
                    .window_with(15, &counters(5), 4)
                    .counter("test.model.window")
                    .unwrap_or(0);
                verify(
                    total == 0 || total == 5,
                    "window read observed a torn delta",
                );
                let through = ring.sealed_through();
                seen.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((through, total));
            }
        },
        |(ring, seen)| {
            for &(through, total) in seen
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .iter()
            {
                // The watermark can only advance via a seal that
                // happened-before the reader's rotation, so a reader that
                // saw epoch 1 must have seen the whole delta.
                if through == 1 && total != 5 {
                    return Err(format!("sealed_through=1 but windowed total={total}"));
                }
            }
            if ring.sealed_through() > 1 {
                return Err("watermark ran past the single sealed epoch".to_owned());
            }
            Ok(())
        },
    )
    .expect("window rotation vs read is sound under every bounded schedule");
    assert!(stats.schedules > 1, "{stats:?}");
}

/// The epoch publication pair in isolation, parameterized by the
/// lock-free reader's load ordering: sealed state (mirrored as one slot
/// word) is written first, then `epoch` is stored with Release;
/// `sealed_through` loads it with Acquire.
fn window_epoch_mirror(load_order: Ordering) -> Result<Stats, Failure> {
    explore(
        &opts(),
        2,
        || (AtomicU64::new(0), AtomicU64::new(0)),
        move |i, (slot, epoch)| match i {
            // rotate_with mirror: sealed delta first, watermark second.
            0 => {
                slot.store(5, Ordering::Relaxed);
                epoch.store(1, Ordering::Release);
            }
            // Lock-free staleness check mirror: watermark, then state.
            _ => {
                if epoch.load(load_order) == 1 {
                    verify(
                        slot.load(Ordering::Relaxed) == 5,
                        "observed the watermark but not the sealed delta",
                    );
                }
            }
        },
        |_| Ok(()),
    )
}

/// The shipped orderings: Release publish, Acquire read — sound.
#[test]
fn window_epoch_acquire_load_is_sound() {
    let stats = window_epoch_mirror(Ordering::Acquire).expect("Release/Acquire watermark is sound");
    assert!(stats.schedules > 1, "{stats:?}");
}

/// Downgrading the watermark load to `Relaxed` lets a reader observe the
/// epoch without the sealed delta; the checker must find it.
#[test]
fn window_epoch_relaxed_load_regression_is_caught() {
    let failure = window_epoch_mirror(Ordering::Relaxed)
        .expect_err("the model checker must catch the Relaxed watermark read");
    assert!(failure.message.contains("sealed delta"), "{failure:?}");
    assert!(!failure.schedule.is_empty(), "{failure:?}");
}
