//! End-to-end SLO pipeline under an injected clock: synthesize a
//! burn-rate breach against the real global registry, window ring and
//! HTTP server, and watch `/health` flip 200 → 503 deterministically.
//!
//! This file is its own test binary, so the global ring/registry/latch it
//! drives are not shared with any other suite; the single test keeps the
//! clock, rotation and evaluation sequence strictly ordered.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use treesim_obs::{slo, window, Json, MetricsServer};

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header split");
    (head.to_owned(), body.to_owned())
}

#[test]
fn health_flips_to_503_when_a_breach_is_synthesized() {
    // Freeze time before anything touches the ring: every rotation and
    // verdict below is a pure function of this clock.
    let clock = treesim_obs::clock::manual(0);
    let handle = MetricsServer::bind("127.0.0.1:0")
        .expect("bind")
        .spawn()
        .expect("spawn");
    let addr = handle.addr();

    // Healthy first: the scrape baselines the ring at epoch 0 with no
    // traffic, so nothing can burn.
    let (head, body) = get(addr, "/health");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}: {body}");
    assert!(body.starts_with("ok"), "{body}");
    assert_eq!(slo::check_degraded(), None);

    // Synthesize a sustained breach: 100 engine.knn queries at 10 s each,
    // forty times over the 250 ms p99 target, all inside interval 0.
    let h = treesim_obs::metrics::histogram("engine.knn.us");
    for _ in 0..100 {
        h.record(10_000_000);
    }

    // One interval later the scrape seals those samples into epoch 0,
    // burning both the 5 m and 1 h windows at (100/100)/0.01 = 100×.
    clock.advance(window::global().interval_us());
    let (head, body) = get(addr, "/health");
    assert!(head.starts_with("HTTP/1.0 503"), "{head}: {body}");
    assert!(body.starts_with("degraded"), "{body}");
    assert!(
        slo::check_degraded().is_some_and(|burn| burn >= 2.0),
        "the degradation hook must report the breach: {:?}",
        slo::check_degraded()
    );

    // /slo.json carries the same verdict with the windowed evidence.
    let (head, body) = get(addr, "/slo.json");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}");
    let doc = treesim_obs::parse_json(&body).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(slo::SCHEMA));
    assert_eq!(
        doc.get("degraded").map(|d| matches!(d, Json::Bool(true))),
        Some(true),
        "{body}"
    );
    assert!(doc.get("worst_burn").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0);
    let targets = doc
        .get("targets")
        .and_then(Json::as_array)
        .expect("targets");
    let knn = targets
        .iter()
        .find(|t| {
            t.get("op").and_then(Json::as_str) == Some("engine.knn")
                && t.get("kind").and_then(Json::as_str) == Some("latency_p99")
        })
        .expect("engine.knn latency target");
    assert_eq!(
        knn.get("breached").map(|b| matches!(b, Json::Bool(true))),
        Some(true)
    );
    let observed = knn
        .get("observed_us")
        .and_then(Json::as_u64)
        .expect("windowed p99");
    assert!(
        observed >= 10_000_000,
        "p99 covers the 10 s samples: {observed}"
    );
    assert!(knn.get("fast_burn").and_then(Json::as_f64).unwrap_or(0.0) >= 2.0);

    // The exposition carries the windowed p99 series and the SLO gauges.
    let (_, body) = get(addr, "/metrics");
    assert!(
        body.contains("window_engine_knn_us_p99{window=\"300s\"}"),
        "{body}"
    );
    assert!(body.contains("slo_burn_rate_engine_knn"), "{body}");
    let burn_line = body
        .lines()
        .find(|l| l.starts_with("slo_burn_rate_engine_knn "))
        .expect("burn gauge sample line");
    let burn_milli: i64 = burn_line
        .rsplit_once(' ')
        .and_then(|(_, v)| v.parse().ok())
        .expect("gauge value");
    assert!(burn_milli >= 2_000, "breach in milli-units: {burn_line}");

    // Recovery: an hour of clean intervals later both windows have
    // slid past the burst — the multi-window rule stops alerting once
    // the problem stops.
    clock.advance(window::global().interval_us() * window::SLOW_WINDOW_INTERVALS as u64);
    let (head, body) = get(addr, "/health");
    assert!(head.starts_with("HTTP/1.0 200"), "{head}: {body}");
    assert_eq!(slo::check_degraded(), None);

    handle.shutdown();
    drop(clock);
}
