//! Property tests for the windowed-aggregation ring and the SLO burn-rate
//! arithmetic: budget accounting stays in `[0, 1]`, verdicts are monotone
//! in the error rate, rotation is a pure function of the injected
//! `(clock, snapshot)` schedule, and histogram bucket-diffs round-trip
//! through sealing and merging even when the ring wraps.

use proptest::prelude::*;
use treesim_obs::metrics::bucket_index;
use treesim_obs::slo::{evaluate_against, Objective, SloTarget};
use treesim_obs::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot, WindowRing};

fn hist(name: &str, samples: &[u64]) -> HistogramSnapshot {
    let mut buckets: Vec<(u8, u64)> = Vec::new();
    let mut sum = 0u64;
    let mut max = 0u64;
    for &v in samples {
        let i = bucket_index(v) as u8;
        match buckets.iter_mut().find(|(b, _)| *b == i) {
            Some((_, n)) => *n += 1,
            None => buckets.push((i, 1)),
        }
        sum = sum.saturating_add(v);
        max = max.max(v);
    }
    buckets.sort_unstable();
    HistogramSnapshot {
        name: name.to_owned(),
        count: samples.len() as u64,
        sum,
        max,
        buckets,
        exemplars: Vec::new(),
    }
}

/// A cumulative registry snapshot: `counter` queries so far, `samples`
/// the full latency history so far, `errors` failures so far.
fn snap(counter: u64, samples: &[u64], errors: u64) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: vec![
            CounterSnapshot {
                name: "test.prop.queries".to_owned(),
                value: counter,
            },
            CounterSnapshot {
                name: "engine.knn.errors".to_owned(),
                value: errors,
            },
        ],
        gauges: Vec::new(),
        histograms: vec![hist("engine.knn.us", samples)],
    }
}

const ERROR_TARGET: &[SloTarget] = &[SloTarget {
    op: "engine.knn",
    objective: Objective::ErrorRate { max_ratio: 0.01 },
}];

/// An already-windowed delta with `total` samples and `errors` failures.
fn error_window(total: u64, errors: u64) -> MetricsSnapshot {
    let samples: Vec<u64> = (0..total).map(|i| 10 + i % 7).collect();
    snap(total, &samples, errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The error-budget accountant never goes negative or above 1, burns
    /// are finite and non-negative, and an idle window never breaches.
    #[test]
    fn budget_stays_within_bounds(total in 0u64..3_000, errors in 0u64..3_500) {
        let w = error_window(total, errors);
        let report = evaluate_against(ERROR_TARGET, &w, &w, 2.0, 0);
        let v = &report.verdicts[0];
        prop_assert!(v.budget_remaining >= 0.0 && v.budget_remaining <= 1.0);
        prop_assert!(v.fast.burn.is_finite() && v.fast.burn >= 0.0);
        prop_assert!(v.slow.burn.is_finite());
        prop_assert!(v.fast.bad <= v.fast.total, "errors clamp to traffic");
        if total == 0 {
            prop_assert_eq!(v.fast.burn, 0.0, "idle windows do not burn");
            prop_assert!(!v.breached);
            prop_assert_eq!(v.budget_remaining, 1.0);
        }
    }

    /// With traffic held fixed, more errors never lowers the burn, never
    /// raises the remaining budget, and never un-breaches the target.
    #[test]
    fn verdict_is_monotone_in_error_rate(
        total in 1u64..2_000,
        a in 0u64..2_000,
        b in 0u64..2_000,
    ) {
        let (lo, hi) = (a.min(b).min(total), a.max(b).min(total));
        let report_lo = {
            let w = error_window(total, lo);
            evaluate_against(ERROR_TARGET, &w, &w, 2.0, 0)
        };
        let report_hi = {
            let w = error_window(total, hi);
            evaluate_against(ERROR_TARGET, &w, &w, 2.0, 0)
        };
        let (vl, vh) = (&report_lo.verdicts[0], &report_hi.verdicts[0]);
        prop_assert!(vh.fast.burn >= vl.fast.burn);
        prop_assert!(vh.budget_remaining <= vl.budget_remaining);
        if vl.breached {
            prop_assert!(vh.breached, "breaching must be monotone in errors");
        }
    }

    /// Rotation is a pure function of the `(now, snapshot)` schedule:
    /// replaying the same schedule on a fresh ring seals identical
    /// intervals and the same watermark, whatever the gaps.
    #[test]
    fn rotation_is_deterministic_under_injected_time(
        steps in proptest::collection::vec((0u64..500, 0u64..20), 1..24),
        interval in 1u64..100,
        capacity in 1usize..8,
    ) {
        let run = || {
            let ring = WindowRing::new(interval, capacity);
            let mut now = 0u64;
            let mut count = 0u64;
            let mut samples: Vec<u64> = Vec::new();
            for &(dt, queries) in &steps {
                now += dt;
                count += queries;
                samples.extend((0..queries).map(|i| dt + i));
                ring.rotate_with(now, &snap(count, &samples, 0));
            }
            let sealed: Vec<(u64, u64, u64)> = ring
                .sealed_intervals()
                .iter()
                .map(|s| {
                    (
                        s.epoch,
                        s.delta.counter("test.prop.queries").unwrap_or(0),
                        s.delta.histogram("engine.knn.us").map_or(0, |h| h.count),
                    )
                })
                .collect();
            (sealed, ring.sealed_through())
        };
        prop_assert_eq!(run(), run());
    }

    /// Sealed bucket-diffs round-trip through the ring: after any number
    /// of single-interval rotations, merging the surviving sealed deltas
    /// reconstructs exactly the cumulative difference across the epochs
    /// the ring still covers — including after wraparound has evicted the
    /// oldest intervals.
    #[test]
    fn bucket_diffs_round_trip_across_wraparound(
        per_interval in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 0..6),
            1..12,
        ),
        capacity in 1usize..5,
    ) {
        let interval = 10u64;
        let ring = WindowRing::new(interval, capacity);
        // Cumulative history: prefix[i] = everything recorded before the
        // end of interval i−1.
        let mut history: Vec<u64> = Vec::new();
        let mut prefixes: Vec<MetricsSnapshot> = vec![snap(0, &history, 0)];
        ring.rotate_with(0, &prefixes[0]);
        for (i, batch) in per_interval.iter().enumerate() {
            history.extend(batch.iter().copied());
            let cumulative = snap(history.len() as u64, &history, 0);
            ring.rotate_with((i as u64 + 1) * interval, &cumulative);
            prefixes.push(cumulative);
        }
        let sealed = ring.sealed_intervals();
        let kept = sealed.len();
        prop_assert!(kept <= capacity);
        prop_assert_eq!(kept, per_interval.len().min(capacity));
        // Merge what the ring kept…
        let mut merged = MetricsSnapshot::default();
        for interval in &sealed {
            merged.merge(&interval.delta);
        }
        // …and diff the cumulative history across the same epoch span.
        let newest = prefixes.len() - 1;
        let oldest = newest - kept;
        let direct = prefixes[newest].delta_since(&prefixes[oldest]);
        prop_assert_eq!(
            merged.counter("test.prop.queries"),
            direct.counter("test.prop.queries")
        );
        let merged_hist = merged.histogram("engine.knn.us");
        let direct_hist = direct.histogram("engine.knn.us");
        match (merged_hist, direct_hist) {
            (None, None) => {}
            (Some(m), Some(d)) => {
                prop_assert_eq!(&m.buckets, &d.buckets, "bucket diffs must round-trip");
                prop_assert_eq!(m.count, d.count);
                prop_assert_eq!(m.sum, d.sum);
                // Same buckets and count ⇒ the same quantile walk. The
                // max clamp is held fixed: per-interval delta maxes are
                // bucket-edge approximations, coarser than the direct
                // diff's.
                let mut pinned = m.clone();
                pinned.max = d.max;
                prop_assert_eq!(pinned.quantile(0.99), d.quantile(0.99));
                prop_assert_eq!(pinned.quantile(0.5), d.quantile(0.5));
            }
            (m, d) => prop_assert!(false, "merged={m:?} direct={d:?}"),
        }
    }
}
