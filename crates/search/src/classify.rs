//! k-NN classification over tree-structured data — another §1 motivation
//! (e.g., predicting the function of an RNA molecule from structurally
//! similar molecules of known function).
//!
//! Observability: each classification emits a `classify.knn` span (one
//! per-query trace — the underlying k-NN query nests under it) and bumps
//! `classify.queries`.

use std::collections::HashMap;
use std::hash::Hash;

use treesim_tree::Tree;

use crate::engine::SearchEngine;
use crate::filter::Filter;
use crate::stats::SearchStats;

/// A k-NN classifier: each training tree carries a class label; queries are
/// classified by majority vote among their k nearest trees (ties broken by
/// total distance, then by first occurrence).
pub struct KnnClassifier<'a, F: Filter, C> {
    engine: SearchEngine<'a, F>,
    classes: Vec<C>,
}

impl<'a, F: Filter, C: Clone + Eq + Hash> KnnClassifier<'a, F, C> {
    /// Wraps an engine whose forest's trees are labeled by `classes`
    /// (indexed by tree id).
    ///
    /// # Panics
    ///
    /// Panics if `classes.len()` differs from the dataset size.
    pub fn new(engine: SearchEngine<'a, F>, classes: Vec<C>) -> Self {
        assert_eq!(
            classes.len(),
            engine.forest().len(),
            "one class per training tree"
        );
        KnnClassifier { engine, classes }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &SearchEngine<'a, F> {
        &self.engine
    }

    /// Classifies `query` by majority vote among its `k` nearest trees.
    ///
    /// Returns `None` only for `k == 0` or an empty training set.
    pub fn classify(&self, query: &Tree, k: usize) -> (Option<C>, SearchStats) {
        // Trace before span (the span must close before the trace
        // finalizes); the k-NN query below joins this trace as a child.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("classify.knn", k = k, training = self.classes.len());
        treesim_obs::counter!("classify.queries").inc();
        let (neighbors, stats) = self.engine.knn(query, k);
        if neighbors.is_empty() {
            return (None, stats);
        }
        // votes: class -> (count, total distance, first index)
        let mut votes: HashMap<&C, (usize, u64, usize)> = HashMap::new();
        for (index, neighbor) in neighbors.iter().enumerate() {
            let class = &self.classes[neighbor.tree.index()];
            let entry = votes.entry(class).or_insert((0, 0, index));
            entry.0 += 1;
            entry.1 += neighbor.distance;
        }
        let winner = votes
            .into_iter()
            .min_by(|a, b| {
                // Most votes first; then smallest total distance; then the
                // class of the nearest neighbor.
                (std::cmp::Reverse(a.1 .0), a.1 .1, a.1 .2).cmp(&(
                    std::cmp::Reverse(b.1 .0),
                    b.1 .1,
                    b.1 .2,
                ))
            })
            .map(|(class, _)| class.clone());
        (winner, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode};
    use treesim_tree::Forest;

    fn training() -> (Forest, Vec<&'static str>) {
        let mut forest = Forest::new();
        let data = [
            ("a(b(c d) e)", "wide"),
            ("a(b(c d) f)", "wide"),
            ("a(b(c e) e)", "wide"),
            ("a(b(c(d(e))))", "deep"),
            ("a(b(c(d(f))))", "deep"),
            ("a(c(b(d(e))))", "deep"),
        ];
        let mut classes = Vec::new();
        for (spec, class) in data {
            forest.parse_bracket(spec).unwrap();
            classes.push(class);
        }
        (forest, classes)
    }

    #[test]
    fn classifies_by_structure() {
        let (forest, classes) = training();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let classifier = KnnClassifier::new(engine, classes);

        let mut query_forest = forest.clone();
        let wide_query = {
            let mut interner = query_forest.interner().clone();
            let t = treesim_tree::parse::bracket::parse(&mut interner, "a(b(c d) g)").unwrap();
            *query_forest.interner_mut() = interner;
            t
        };
        let (class, stats) = classifier.classify(&wide_query, 3);
        assert_eq!(class, Some("wide"));
        assert!(stats.refined <= 6);

        let deep_query = {
            let mut interner = query_forest.interner().clone();
            let t = treesim_tree::parse::bracket::parse(&mut interner, "a(b(c(d(g))))").unwrap();
            *query_forest.interner_mut() = interner;
            t
        };
        let (class, _) = classifier.classify(&deep_query, 3);
        assert_eq!(class, Some("deep"));
    }

    #[test]
    fn k_zero_yields_none() {
        let (forest, classes) = training();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let classifier = KnnClassifier::new(engine, classes);
        let query = classifier.engine().forest().tree(treesim_tree::TreeId(0));
        assert_eq!(classifier.classify(query, 0).0, None);
    }

    #[test]
    fn tie_breaks_toward_smaller_total_distance() {
        let (forest, classes) = training();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let classifier = KnnClassifier::new(engine, classes);
        // k = 6 sees 3 of each class; the query is a training member of
        // "wide", so the wide votes carry less total distance.
        let query = forest.tree(treesim_tree::TreeId(0));
        let (class, _) = classifier.classify(query, 6);
        assert_eq!(class, Some("wide"));
    }

    #[test]
    #[should_panic(expected = "one class per training tree")]
    fn wrong_class_count_panics() {
        let (forest, _) = training();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let _ = KnnClassifier::new(engine, vec!["x"]);
    }
}
