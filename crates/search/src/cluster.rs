//! Threshold clustering: connected components of the τ-neighborhood graph
//! (single-linkage clustering cut at distance τ) — the clustering
//! application of §1, driven entirely by filtered range queries.
//!
//! Observability: each run emits a `cluster.run` span (one per-query trace
//! — the flood-fill's range queries nest under it as children), bumps
//! `cluster.queries`, and adds the component count to `cluster.clusters`.

use treesim_tree::TreeId;

use crate::engine::SearchEngine;
use crate::filter::Filter;

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Clusters as sorted tree-id lists; clusters ordered by smallest
    /// member.
    pub clusters: Vec<Vec<TreeId>>,
    /// Cluster index per tree (indexed by tree id).
    pub assignment: Vec<usize>,
    /// Total edit-distance refinements performed by the range queries.
    pub refinements: usize,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (empty dataset).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Cluster id of a tree.
    pub fn cluster_of(&self, tree: TreeId) -> usize {
        self.assignment[tree.index()]
    }
}

/// Groups the engine's dataset into connected components under
/// `EDist ≤ tau`, flood-filling with range queries.
///
/// # Examples
///
/// ```
/// use treesim_search::{threshold_clusters, BiBranchFilter, BiBranchMode, SearchEngine};
/// use treesim_tree::Forest;
///
/// let mut forest = Forest::new();
/// forest.parse_bracket("a(b c)").unwrap();
/// forest.parse_bracket("a(b d)").unwrap();
/// forest.parse_bracket("x(y(z(w)))").unwrap();
///
/// let engine = SearchEngine::new(
///     &forest,
///     BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
/// );
/// let clustering = threshold_clusters(&engine, 1);
/// assert_eq!(clustering.len(), 2); // {0, 1} and {2}
/// ```
pub fn threshold_clusters<F: Filter>(engine: &SearchEngine<'_, F>, tau: u32) -> Clustering {
    // Trace before span (the span must close before the trace finalizes):
    // the whole flood-fill is one trace, and every range query it issues
    // joins it as a child span instead of starting its own.
    let _trace = treesim_obs::trace::start_trace();
    let mut span = treesim_obs::span!("cluster.run", tau = tau, trees = engine.forest().len());
    treesim_obs::counter!("cluster.queries").inc();
    let n = engine.forest().len();
    let mut assignment = vec![usize::MAX; n];
    let mut clusters: Vec<Vec<TreeId>> = Vec::new();
    let mut refinements = 0usize;

    for start in 0..n {
        if assignment[start] != usize::MAX {
            continue;
        }
        let cluster_id = clusters.len();
        clusters.push(Vec::new());
        assignment[start] = cluster_id;
        let mut frontier = vec![TreeId(start as u32)];
        while let Some(member) = frontier.pop() {
            clusters[cluster_id].push(member);
            let (hits, stats) = engine.range(engine.forest().tree(member), tau);
            refinements += stats.refined;
            for hit in hits {
                if assignment[hit.tree.index()] == usize::MAX {
                    assignment[hit.tree.index()] = cluster_id;
                    frontier.push(hit.tree);
                }
            }
        }
        clusters[cluster_id].sort_unstable();
    }
    treesim_obs::counter!("cluster.clusters").add(clusters.len() as u64);
    span.push_field("clusters", || clusters.len().to_string());
    span.push_field("refinements", || refinements.to_string());
    Clustering {
        clusters,
        assignment,
        refinements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, NoFilter};
    use treesim_edit::edit_distance;
    use treesim_tree::Forest;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            // Family 1: near-identical wide trees.
            "a(b c d)",
            "a(b c e)",
            "a(b c d f)",
            // Family 2: deep chains, far from family 1.
            "x(y(z(w(v))))",
            "x(y(z(w(u))))",
            // A singleton.
            "q(r r r r r r r r)",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    #[test]
    fn clusters_are_connected_components() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let clustering = threshold_clusters(&engine, 2);
        assert_eq!(clustering.len(), 3);
        assert!(!clustering.is_empty());
        assert_eq!(
            clustering.clusters[0],
            vec![TreeId(0), TreeId(1), TreeId(2)]
        );
        assert_eq!(clustering.clusters[1], vec![TreeId(3), TreeId(4)]);
        assert_eq!(clustering.clusters[2], vec![TreeId(5)]);
        assert_eq!(clustering.cluster_of(TreeId(4)), 1);
    }

    #[test]
    fn filter_choice_does_not_change_clusters() {
        let forest = forest();
        let filtered = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let unfiltered = SearchEngine::new(&forest, NoFilter::build(&forest));
        let a = threshold_clusters(&filtered, 3);
        let b = threshold_clusters(&unfiltered, 3);
        assert_eq!(a.clusters, b.clusters);
        assert!(a.refinements <= b.refinements);
    }

    #[test]
    fn tau_zero_groups_exact_duplicates_only() {
        let mut forest = forest();
        forest.parse_bracket("a(b c d)").unwrap(); // duplicate of tree 0
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let clustering = threshold_clusters(&engine, 0);
        assert_eq!(clustering.len(), forest.len() - 1);
        assert_eq!(
            clustering.cluster_of(TreeId(0)),
            clustering.cluster_of(TreeId(6))
        );
    }

    #[test]
    fn huge_tau_gives_one_cluster() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let clustering = threshold_clusters(&engine, 1000);
        assert_eq!(clustering.len(), 1);
        assert_eq!(clustering.clusters[0].len(), forest.len());
    }

    #[test]
    fn components_are_genuinely_disconnected() {
        // Every cross-cluster pair must exceed τ… transitively: verify no
        // direct edge between different clusters.
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let tau = 2u32;
        let clustering = threshold_clusters(&engine, tau);
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if clustering.cluster_of(i) != clustering.cluster_of(j) {
                    assert!(edit_distance(t1, t2) > u64::from(tau));
                }
            }
        }
    }
}
