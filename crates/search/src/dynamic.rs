//! A mutable, self-contained index: trees can be appended over time and
//! queried immediately — the shape a production ingest pipeline needs,
//! complementing the immutable [`crate::SearchEngine`] (build once, query
//! many).
//!
//! Appending a tree costs one branch extraction (`O(|T|)`) plus the
//! Zhang–Shasha precomputation **plus one posting-list append per distinct
//! branch**: the index maintains the same per-branch posting lists as the
//! static [`treesim_core::InvertedFileIndex`], extended incrementally —
//! pushes append to the affected lists instead of rebuilding the index
//! (tree ids only ever grow, so every list stays a sorted run). Queries
//! are identical in results to an engine rebuilt from scratch (tested)
//! and run a three-stage cascade mirroring the static
//! [`crate::PostingsFilter`]: the stage −1 `postings` bound (k-way merge
//! of the query's posting lists), the O(1) `size` screen, then the
//! `propt` positional bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use treesim_core::{BranchVocab, PositionalVector, VectorArena};
use treesim_edit::{bounded_zhang_shasha, TreeInfo, UnitCost, ZsWorkspace};
use treesim_obs::recorder::{self, QueryKind};
use treesim_tree::{Forest, LabelInterner, Tree, TreeId};

use crate::engine::{emit_record, Neighbor};
use crate::stats::{SearchStats, StageStats};

/// Bounded refinement of one candidate, mirroring the static engine's
/// `SearchEngine::refine`: `Some(d)` is the exact distance iff `d ≤
/// budget`, `None` means the distance provably exceeds the budget. Feeds
/// the same `refine.zs.nodes` effective-volume histogram and
/// `refine.bounded.{cutoffs,bands_skipped}` counters, and the matching
/// [`SearchStats`] fields.
fn refine_bounded(
    query_info: &TreeInfo,
    data_info: &TreeInfo,
    budget: u64,
    workspace: &mut ZsWorkspace,
    zs_nodes: &mut u64,
    cutoffs: &mut usize,
    bands_skipped: &mut u64,
) -> Option<u64> {
    let (distance, bounded) =
        bounded_zhang_shasha(query_info, data_info, &UnitCost, budget, workspace);
    #[cfg(feature = "strict-checks")]
    {
        let oracle =
            treesim_edit::zhang_shasha(query_info, data_info, &UnitCost, &mut ZsWorkspace::new());
        match distance {
            Some(d) => debug_assert_eq!(d, oracle, "bounded DP disagrees with oracle"),
            None => debug_assert!(
                oracle > budget,
                "bounded DP cut off a within-budget pair: oracle {oracle} ≤ budget {budget}"
            ),
        }
    }
    let nodes = (query_info.len() + data_info.len()) as u64;
    let effective = (nodes * bounded.cells_computed)
        .checked_div(bounded.cells_full)
        .unwrap_or(0);
    treesim_obs::histogram!("refine.zs.nodes").record(effective);
    *zs_nodes += effective;
    *bands_skipped += bounded.cells_skipped;
    treesim_obs::counter!("refine.bounded.bands_skipped").add(bounded.cells_skipped);
    if distance.is_none() {
        *cutoffs += 1;
        treesim_obs::counter!("refine.bounded.cutoffs").inc();
    }
    distance
}

/// An appendable similarity index over rooted, ordered, labeled trees.
///
/// # Examples
///
/// ```
/// use treesim_search::DynamicIndex;
///
/// let mut index = DynamicIndex::new(2);
/// index.push_bracket("a(b c)").unwrap();
/// index.push_bracket("a(b d)").unwrap();
///
/// let query = index.forest().tree(treesim_tree::TreeId(0));
/// let (hits, _) = index.knn(query, 2);
/// assert_eq!(hits[0].distance, 0);
/// assert_eq!(hits[1].distance, 1);
/// ```
pub struct DynamicIndex {
    forest: Forest,
    vocab: BranchVocab,
    vectors: Vec<PositionalVector>,
    infos: Vec<TreeInfo>,
    /// Per-branch posting lists, indexed by branch raw id:
    /// `(tree raw id, branch count)`, ascending by tree id — the
    /// incrementally-maintained counterpart of
    /// [`treesim_core::InvertedFileIndex`]'s postings.
    postings: Vec<Vec<(u32, u32)>>,
    /// CSR arena over the same vectors, grown segment-wise on every push
    /// (each append is one new segment; earlier segments never move), so
    /// the cascade's size screen reads a flat lane here too.
    arena: VectorArena,
}

impl DynamicIndex {
    /// Creates an empty index with q-level binary branches.
    ///
    /// # Panics
    ///
    /// Panics if `q < 2`.
    pub fn new(q: usize) -> Self {
        DynamicIndex {
            forest: Forest::new(),
            vocab: BranchVocab::new(q),
            vectors: Vec::new(),
            infos: Vec::new(),
            postings: Vec::new(),
            arena: VectorArena::new(q),
        }
    }

    /// Bulk-loads an existing forest.
    pub fn from_forest(forest: Forest, q: usize) -> Self {
        let mut index = DynamicIndex::new(q);
        let (interner, trees) = {
            let mut trees = Vec::with_capacity(forest.len());
            for (_, tree) in forest.iter() {
                trees.push(tree.clone());
            }
            (forest.interner().clone(), trees)
        };
        *index.forest.interner_mut() = interner;
        for tree in trees {
            index.push(tree);
        }
        index
    }

    /// Number of indexed trees.
    pub fn len(&self) -> usize {
        self.forest.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.forest.is_empty()
    }

    /// The underlying dataset.
    pub fn forest(&self) -> &Forest {
        &self.forest
    }

    /// The shared label interner (intern query labels through this).
    pub fn interner_mut(&mut self) -> &mut LabelInterner {
        self.forest.interner_mut()
    }

    /// The CSR arena mirroring the pushed vectors (one segment per push).
    pub fn arena(&self) -> &VectorArena {
        &self.arena
    }

    /// Appends a tree (labels must come from this index's interner) and
    /// returns its id. The tree is immediately searchable.
    ///
    /// Observability: bumps the `dynamic.push` counter, keeps the
    /// `dynamic.trees` gauge at the index size, and records the append
    /// cost (vectorization + Zhang–Shasha tables) in `dynamic.push.us`.
    pub fn push(&mut self, tree: Tree) -> TreeId {
        let _span = treesim_obs::span!("dynamic.push", nodes = tree.len());
        treesim_obs::counter!("dynamic.push").inc();
        let vector = PositionalVector::build(&tree, &mut self.vocab);
        // Extend the postings stage in place: each of the new tree's
        // distinct branches appends one posting to its list. The new
        // tree's id is the largest so far, so every list stays sorted —
        // no rebuild, no re-sort.
        let raw = self.forest.len() as u32;
        if self.postings.len() < self.vocab.len() {
            self.postings.resize(self.vocab.len(), Vec::new());
        }
        for entry in vector.entries() {
            self.postings[entry.branch.index()].push((raw, entry.positions.len() as u32));
        }
        self.arena
            .push_tree(vector.iter_counts(), vector.tree_size());
        crate::filter::publish_arena_gauges(&self.arena);
        self.vectors.push(vector);
        self.infos.push(TreeInfo::new(&tree));
        let id = self.forest.push(tree);
        treesim_obs::gauge!("dynamic.trees").set(self.len() as i64);
        id
    }

    /// Parses and appends a bracket-notation tree.
    ///
    /// # Errors
    ///
    /// Propagates parser errors.
    pub fn push_bracket(&mut self, spec: &str) -> Result<TreeId, treesim_tree::ParseError> {
        let tree = {
            let mut interner = self.forest.interner().clone();
            let tree = treesim_tree::parse::bracket::parse(&mut interner, spec)?;
            *self.forest.interner_mut() = interner;
            tree
        };
        Ok(self.push(tree))
    }

    fn query_vector(&self, query: &Tree) -> PositionalVector {
        let mut query_vocab = treesim_core::QueryVocab::new(&self.vocab);
        PositionalVector::build_query(query, &mut query_vocab)
    }

    /// K-way merges the query's posting lists into the per-tree shared
    /// branch mass table (ascending by tree id); see
    /// [`treesim_core::merge_shared_mass`]. Out-of-vocabulary query
    /// branches have no list and are skipped — their mass stays in
    /// `|BRV(q)|`, which keeps the stage −1 bound sound.
    fn shared_mass(&self, query_vector: &PositionalVector) -> Vec<(TreeId, u64)> {
        let runs: Vec<(u32, _)> = query_vector
            .entries()
            .filter(|entry| entry.branch.index() < self.postings.len())
            .map(|entry| {
                (
                    entry.positions.len() as u32,
                    self.postings[entry.branch.index()]
                        .iter()
                        .map(|&(tree, count)| (TreeId(tree), count)),
                )
            })
            .collect();
        treesim_core::merge_shared_mass(self.len(), runs)
    }

    /// The stage −1 bound for one candidate:
    /// `⌈(|BRV(q)| + |BRV(t)| − 2·shared) / (4(q−1)+1)⌉`.
    fn postings_bound(&self, shared: &[(TreeId, u64)], total: u64, raw: u32) -> u64 {
        let mass = match shared.binary_search_by_key(&TreeId(raw), |&(tree, _)| tree) {
            Ok(found) => shared[found].1,
            Err(_) => 0,
        };
        let data_size = u64::from(self.arena.tree_size(raw));
        treesim_core::edit_lower_bound(total + data_size - 2 * mass, self.vocab.q())
    }

    fn stage_accumulators() -> Vec<StageStats> {
        vec![
            StageStats::named("postings"),
            StageStats::named("size"),
            StageStats::named("propt"),
        ]
    }

    /// k-nearest neighbors of `query` (same semantics as
    /// [`crate::SearchEngine::knn`], including smallest-id tie-breaking).
    ///
    /// Candidates escalate lazily: every tree gets the stage −1 postings
    /// bound first (one k-way posting merge for the whole query, then an
    /// O(log candidates) lookup per tree), and only the candidates whose
    /// bound is among the smallest outstanding ones pay for the O(1)
    /// size screen and then the `propt` positional bound.
    pub fn knn(&self, query: &Tree, k: usize) -> (Vec<Neighbor>, SearchStats) {
        // Trace before span (the span must close before the trace
        // finalizes); inert when an enclosing trace is already live.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("dynamic.knn", k = k, dataset = self.len());
        let wall_start = Instant::now();
        recorder::propt_iters_take(); // discard any stale accumulation
        let mut stats = SearchStats {
            dataset_size: self.len(),
            stages: Self::stage_accumulators(),
            ..Default::default()
        };
        if k == 0 || self.is_empty() {
            stats.record_metrics("dynamic.knn");
            emit_record(
                QueryKind::DynamicKnn,
                k as u64,
                &stats,
                &[],
                0,
                wall_start.elapsed(),
            );
            return (Vec::new(), stats);
        }
        let query_vector = self.query_vector(query);
        let shared = self.shared_mass(&query_vector);
        let total = u64::from(query_vector.tree_size());
        // Escalation heap keyed by (bound, next stage, id): stage 1 is
        // the size screen, stage 2 the propt positional bound, stage 3
        // means "fully bounded, refine".
        let mut escalation: BinaryHeap<Reverse<(u64, usize, u32)>> = (0..self.vectors.len())
            .map(|i| {
                let raw = i as u32;
                Reverse((self.postings_bound(&shared, total, raw), 1, raw))
            })
            .collect();
        if let Some(stage0) = stats.stages.first_mut() {
            stage0.evaluated = self.len();
        }

        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        let mut zs_nodes = 0u64;
        let mut heap: BinaryHeap<(u64, u32)> = BinaryHeap::with_capacity(k + 1);
        while let Some(&Reverse((bound, next_stage, raw))) = escalation.peek() {
            if let Some(&(worst, _)) = heap.peek().filter(|_| heap.len() == k) {
                if bound > worst {
                    break;
                }
            }
            escalation.pop();
            if next_stage == 1 {
                let sharper = query_vector.size_bound(&self.vectors[raw as usize]);
                if let Some(stage1) = stats.stages.get_mut(1) {
                    stage1.evaluated += 1;
                }
                escalation.push(Reverse((bound.max(sharper), 2, raw)));
            } else if next_stage == 2 {
                let sharper =
                    crate::filter::propt_bound(&query_vector, &self.vectors[raw as usize]);
                if let Some(stage2) = stats.stages.get_mut(2) {
                    stage2.evaluated += 1;
                }
                escalation.push(Reverse((bound.max(sharper), 3, raw)));
            } else {
                let data_info = &self.infos[raw as usize];
                // Same live budget as the static core: the current k-th
                // distance once the heap is full (equal distances still
                // need the exact value for id tie-breaking).
                let budget = match heap.peek() {
                    Some(&(worst, _)) if heap.len() == k => worst,
                    _ => u64::MAX,
                };
                let refined = refine_bounded(
                    &query_info,
                    data_info,
                    budget,
                    &mut workspace,
                    &mut zs_nodes,
                    &mut stats.refine_cutoffs,
                    &mut stats.refine_bands_skipped,
                );
                stats.refined += 1;
                if let Some(distance) = refined {
                    heap.push((distance, raw));
                    if heap.len() > k {
                        heap.pop();
                    }
                }
            }
        }
        for &Reverse((_, next_stage, _)) in escalation.iter() {
            stats.stages[next_stage - 1].pruned += 1;
        }
        let mut results: Vec<Neighbor> = heap
            .into_iter()
            .map(|(distance, raw)| Neighbor {
                tree: TreeId(raw),
                distance,
            })
            .collect();
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        stats.record_metrics("dynamic.knn");
        emit_record(
            QueryKind::DynamicKnn,
            k as u64,
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats)
    }

    /// Range query (same semantics as [`crate::SearchEngine::range`]).
    pub fn range(&self, query: &Tree, tau: u32) -> (Vec<Neighbor>, SearchStats) {
        // Trace before span, as in `knn`.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("dynamic.range", tau = tau, dataset = self.len());
        let wall_start = Instant::now();
        recorder::propt_iters_take(); // discard any stale accumulation
        let mut stats = SearchStats {
            dataset_size: self.len(),
            stages: Self::stage_accumulators(),
            ..Default::default()
        };
        let query_vector = self.query_vector(query);
        let shared = self.shared_mass(&query_vector);
        let total = u64::from(query_vector.tree_size());
        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        let mut zs_nodes = 0u64;
        let mut results = Vec::new();
        let [stage_postings, stage_size, stage_propt] = &mut stats.stages[..] else {
            unreachable!("constructed with exactly three stages above")
        };
        stage_postings.evaluated = self.len();
        for (raw, vector) in self.vectors.iter().enumerate() {
            // Stage −1 first: the postings bound needs no access to the
            // candidate's vector beyond its stored size.
            if self.postings_bound(&shared, total, raw as u32) > u64::from(tau) {
                stage_postings.pruned += 1;
                continue;
            }
            stage_size.evaluated += 1;
            // Then the O(1) size screen, skipping the positional merge
            // entirely when it already exceeds τ.
            if query_vector.size_bound(vector) > u64::from(tau) {
                stage_size.pruned += 1;
                continue;
            }
            stage_propt.evaluated += 1;
            if query_vector.exceeds_range(vector, tau) {
                stage_propt.pruned += 1;
                continue;
            }
            let data_info = &self.infos[raw];
            // τ is the refinement budget: `Some(d)` already implies a hit.
            let refined = refine_bounded(
                &query_info,
                data_info,
                u64::from(tau),
                &mut workspace,
                &mut zs_nodes,
                &mut stats.refine_cutoffs,
                &mut stats.refine_bands_skipped,
            );
            stats.refined += 1;
            if let Some(distance) = refined {
                results.push(Neighbor {
                    tree: TreeId(raw as u32),
                    distance,
                });
            }
        }
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        stats.record_metrics("dynamic.range");
        emit_record(
            QueryKind::DynamicRange,
            u64::from(tau),
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats)
    }
}

impl std::fmt::Debug for DynamicIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicIndex")
            .field("trees", &self.len())
            .field("vocab", &self.vocab.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::filter::{BiBranchFilter, BiBranchMode};

    fn specs() -> Vec<&'static str> {
        vec![
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
            "q(r(s))",
        ]
    }

    #[test]
    fn matches_static_engine_after_incremental_loads() {
        let mut dynamic = DynamicIndex::new(2);
        let mut forest = Forest::new();
        for spec in specs() {
            dynamic.push_bracket(spec).unwrap();
            forest.parse_bracket(spec).unwrap();

            // After EVERY insert, results must match a from-scratch engine.
            let engine = SearchEngine::new(
                &forest,
                BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            );
            for (_, query) in forest.iter() {
                let (a, _) = dynamic.knn(query, 3);
                let (b, _) = engine.knn(query, 3);
                let av: Vec<u64> = a.iter().map(|n| n.distance).collect();
                let bv: Vec<u64> = b.iter().map(|n| n.distance).collect();
                assert_eq!(av, bv);
                for tau in [0u32, 1, 3] {
                    let (ra, _) = dynamic.range(query, tau);
                    let (rb, _) = engine.range(query, tau);
                    assert_eq!(
                        ra.iter().map(|n| (n.tree, n.distance)).collect::<Vec<_>>(),
                        rb.iter().map(|n| (n.tree, n.distance)).collect::<Vec<_>>()
                    );
                }
            }
        }
        assert_eq!(dynamic.len(), specs().len());
        assert!(!dynamic.is_empty());
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let mut forest = Forest::new();
        for spec in specs() {
            forest.parse_bracket(spec).unwrap();
        }
        let bulk = DynamicIndex::from_forest(forest.clone(), 2);
        let mut incremental = DynamicIndex::new(2);
        for spec in specs() {
            incremental.push_bracket(spec).unwrap();
        }
        let query = forest.tree(TreeId(0));
        let a: Vec<u64> = bulk.knn(query, 4).0.iter().map(|n| n.distance).collect();
        let b: Vec<u64> = incremental
            .knn(query, 4)
            .0
            .iter()
            .map(|n| n.distance)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_index_behaves() {
        let index = DynamicIndex::new(2);
        let mut probe = DynamicIndex::new(2);
        let id = probe.push_bracket("a").unwrap();
        let query = probe.forest().tree(id);
        let (hits, stats) = index.knn(query, 3);
        assert!(hits.is_empty());
        assert_eq!(stats.dataset_size, 0);
        let (hits, _) = index.range(query, 5);
        assert!(hits.is_empty());
        assert!(format!("{index:?}").contains("DynamicIndex"));
    }

    #[test]
    fn interleaved_pushes_extend_postings_stage() {
        // The satellite contract: pushes must extend the postings stage
        // incrementally (never a rebuild), and every query in between
        // runs the full three-stage cascade with correct results and a
        // telescoping funnel.
        let mut index = DynamicIndex::new(2);
        let mut forest = Forest::new();
        for (round, spec) in specs().iter().enumerate() {
            index.push_bracket(spec).unwrap();
            forest.parse_bracket(spec).unwrap();
            let engine =
                SearchEngine::new(&forest, crate::filter::PostingsFilter::build(&forest, 2));
            for (_, query) in forest.iter() {
                let (hits, stats) = index.knn(query, 2);
                assert_eq!(
                    stats.stages.iter().map(|s| s.name).collect::<Vec<_>>(),
                    vec!["postings", "size", "propt"],
                    "round {round}"
                );
                assert_eq!(stats.stages[0].evaluated, forest.len());
                let (want, _) = engine.knn(query, 2);
                assert_eq!(
                    hits.iter().map(|n| n.distance).collect::<Vec<_>>(),
                    want.iter().map(|n| n.distance).collect::<Vec<_>>(),
                    "round {round}"
                );

                let (range_hits, range_stats) = index.range(query, 2);
                let (range_want, _) = engine.range(query, 2);
                assert_eq!(
                    range_hits
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                    range_want
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                );
                assert_eq!(range_stats.stages[0].name, "postings");
                for pair in range_stats.stages.windows(2) {
                    assert_eq!(pair[0].survivors(), pair[1].evaluated);
                }
                assert_eq!(
                    range_stats.stages.last().unwrap().survivors(),
                    range_stats.refined
                );
            }
        }
        // The posting lists are sorted runs (the merge kernel's input
        // contract) and cover exactly the pushed trees' branch masses.
        let total_mass: usize = index
            .postings
            .iter()
            .flatten()
            .map(|&(_, c)| c as usize)
            .sum();
        let node_total: usize = index.forest.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_mass, node_total);
        for list in &index.postings {
            for pair in list.windows(2) {
                assert!(pair[0].0 < pair[1].0, "posting run out of order");
            }
        }
    }

    #[test]
    fn queries_see_new_data_immediately() {
        let mut index = DynamicIndex::new(2);
        index.push_bracket("a(b c)").unwrap();
        let query = {
            let mut interner = index.forest().interner().clone();
            let t = treesim_tree::parse::bracket::parse(&mut interner, "a(b c d)").unwrap();
            *index.interner_mut() = interner;
            t
        };
        let (hits, _) = index.knn(&query, 1);
        assert_eq!(hits[0].distance, 1);
        index.push_bracket("a(b c d)").unwrap();
        let (hits, _) = index.knn(&query, 1);
        assert_eq!(hits[0].distance, 0);
    }
}
