//! The filter-and-refine similarity search engine (Algorithm 2 and §4.3).
//!
//! * **k-NN** follows the optimal multi-step strategy of Seidl & Kriegel
//!   \[13\], which the paper adopts: compute the lower bound to every tree,
//!   process candidates in ascending bound order, refine with the real
//!   Zhang–Shasha distance, and stop as soon as the next lower bound
//!   exceeds the current k-th distance — completeness is guaranteed by the
//!   lower-bound property.
//! * **Range queries** refine exactly the candidates the filter cannot
//!   prune at radius `τ`.
//!
//! Per-tree Zhang–Shasha precomputation ([`TreeInfo`]) is cached at engine
//! construction, and one scratch workspace is reused across refinements.

use std::collections::BinaryHeap;
use std::time::Instant;

use treesim_edit::{zhang_shasha, CostModel, TreeInfo, UnitCost, ZsWorkspace};
use treesim_tree::{Forest, Tree, TreeId};

use crate::filter::Filter;
use crate::stats::SearchStats;

/// One query answer: a tree and its exact edit distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The matching tree.
    pub tree: TreeId,
    /// Its unit-cost edit distance to the query.
    pub distance: u64,
}

/// A similarity search engine over a fixed dataset with a pluggable filter
/// and cost model.
///
/// Filters produce lower bounds in *operation counts*; under a non-unit
/// [`CostModel`] the engine scales them by
/// [`CostModel::min_operation_cost`] (§2.1 of the paper: the approach
/// extends to general costs given a lower bound on per-operation cost).
pub struct SearchEngine<'a, F: Filter, C: CostModel = UnitCost> {
    forest: &'a Forest,
    filter: F,
    infos: Vec<TreeInfo>,
    cost: C,
}

impl<'a, F: Filter> SearchEngine<'a, F, UnitCost> {
    /// Builds a unit-cost engine: the filter indexes the dataset and the
    /// Zhang–Shasha per-tree tables are precomputed.
    pub fn new(forest: &'a Forest, filter: F) -> Self {
        Self::with_cost(forest, filter, UnitCost)
    }
}

impl<'a, F: Filter, C: CostModel> SearchEngine<'a, F, C> {
    /// Builds an engine refining with an arbitrary cost model.
    pub fn with_cost(forest: &'a Forest, filter: F, cost: C) -> Self {
        let infos = forest.iter().map(|(_, t)| TreeInfo::new(t)).collect();
        SearchEngine {
            forest,
            filter,
            infos,
            cost,
        }
    }

    /// Lower bounds count operations; one operation costs at least this.
    #[inline]
    fn bound_scale(&self) -> u64 {
        self.cost.min_operation_cost()
    }

    /// The underlying dataset.
    pub fn forest(&self) -> &'a Forest {
        self.forest
    }

    /// The filter in use.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Exact edit distance between `query_info` and dataset tree `id`.
    fn refine(&self, query_info: &TreeInfo, id: TreeId, workspace: &mut ZsWorkspace) -> u64 {
        zhang_shasha(query_info, &self.infos[id.index()], &self.cost, workspace)
    }

    /// k-nearest-neighbor query (Algorithm 2). Returns up to `k` neighbors
    /// in ascending distance order (ties broken by tree id) and the query
    /// statistics.
    pub fn knn(&self, query: &Tree, k: usize) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            dataset_size: self.forest.len(),
            ..Default::default()
        };
        if k == 0 || self.forest.is_empty() {
            return (Vec::new(), stats);
        }

        let filter_start = Instant::now();
        let scale = self.bound_scale();
        let query_artifact = self.filter.prepare_query(query);
        let mut bounds: Vec<(u64, TreeId)> = self
            .forest
            .iter()
            .map(|(id, _)| (self.filter.lower_bound(&query_artifact, id) * scale, id))
            .collect();
        bounds.sort_unstable();
        stats.filter_time = filter_start.elapsed();

        let refine_start = Instant::now();
        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        // Max-heap of the k best (distance, tree) pairs seen so far.
        let mut heap: BinaryHeap<(u64, TreeId)> = BinaryHeap::with_capacity(k + 1);
        for &(bound, id) in &bounds {
            if heap.len() == k {
                let &(worst, _) = heap.peek().expect("heap full");
                if bound > worst {
                    break; // no remaining candidate can improve the result
                }
            }
            let distance = self.refine(&query_info, id, &mut workspace);
            stats.refined += 1;
            heap.push((distance, id));
            if heap.len() > k {
                heap.pop();
            }
        }
        stats.refine_time = refine_start.elapsed();

        let mut results: Vec<Neighbor> = heap
            .into_iter()
            .map(|(distance, tree)| Neighbor { tree, distance })
            .collect();
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        (results, stats)
    }

    /// Range query: all trees within edit distance `tau` of `query`,
    /// ascending by distance (ties by tree id).
    pub fn range(&self, query: &Tree, tau: u32) -> (Vec<Neighbor>, SearchStats) {
        let mut stats = SearchStats {
            dataset_size: self.forest.len(),
            ..Default::default()
        };
        let filter_start = Instant::now();
        let query_artifact = self.filter.prepare_query(query);
        // Filters prune in operation counts: EDist_cost ≥ ops · scale, so a
        // candidate is safe to drop when ops > ⌊tau / scale⌋.
        let ops_tau = u32::try_from(u64::from(tau) / self.bound_scale()).unwrap_or(u32::MAX);
        let candidates: Vec<TreeId> = self
            .forest
            .iter()
            .filter(|&(id, _)| !self.filter.prunes_range(&query_artifact, id, ops_tau))
            .map(|(id, _)| id)
            .collect();
        stats.filter_time = filter_start.elapsed();

        let refine_start = Instant::now();
        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        let mut results = Vec::new();
        for id in candidates {
            let distance = self.refine(&query_info, id, &mut workspace);
            stats.refined += 1;
            if distance <= u64::from(tau) {
                results.push(Neighbor { tree: id, distance });
            }
        }
        stats.refine_time = refine_start.elapsed();
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, HistogramFilter, NoFilter};
    use treesim_edit::edit_distance;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
            "a(b(c(d)) b e f)",
            "q(r(s))",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn sequential_knn(forest: &Forest, query: &Tree, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = forest
            .iter()
            .map(|(tree, t)| Neighbor {
                tree,
                distance: edit_distance(query, t),
            })
            .collect();
        all.sort_unstable_by_key(|n| (n.distance, n.tree));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_sequential_scan() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for k in 1..=forest.len() {
                let (got, stats) = engine.knn(query, k);
                let expected = sequential_knn(&forest, query, k);
                let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
                let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
                assert_eq!(got_dists, expected_dists, "k={k}");
                assert!(stats.refined <= forest.len());
                assert_eq!(stats.results, k.min(forest.len()));
            }
        }
    }

    #[test]
    fn knn_self_query_returns_self_first() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, _) = engine.knn(forest.tree(TreeId(0)), 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].distance, 0);
        assert_eq!(results[0].tree, TreeId(0));
    }

    #[test]
    fn range_matches_sequential_scan() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for tau in 0..=6u32 {
                let (got, stats) = engine.range(query, tau);
                let mut expected: Vec<Neighbor> = forest
                    .iter()
                    .map(|(tree, t)| Neighbor {
                        tree,
                        distance: edit_distance(query, t),
                    })
                    .filter(|n| n.distance <= u64::from(tau))
                    .collect();
                expected.sort_unstable_by_key(|n| (n.distance, n.tree));
                assert_eq!(got.len(), expected.len(), "τ={tau}");
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.tree, b.tree);
                    assert_eq!(a.distance, b.distance);
                }
                assert!(stats.refined >= stats.results);
            }
        }
    }

    #[test]
    fn histogram_engine_is_also_complete() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, HistogramFilter::build(&forest));
        let query = forest.tree(TreeId(1));
        let (got, _) = engine.knn(query, 3);
        let expected = sequential_knn(&forest, query, 3);
        let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
        assert_eq!(got_dists, expected_dists);
    }

    #[test]
    fn no_filter_refines_everything_for_range() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
        let (_, stats) = engine.range(forest.tree(TreeId(0)), 2);
        assert_eq!(stats.refined, forest.len());
        assert!((stats.accessed_percent() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn bibranch_filters_more_than_nothing() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (_, stats) = engine.range(forest.tree(TreeId(6)), 1);
        // q(r(s)) is far from everything except itself; the filter should
        // prune most of the dataset.
        assert!(stats.refined < forest.len(), "filter pruned nothing");
        assert_eq!(stats.results, 1);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, stats) = engine.knn(forest.tree(TreeId(0)), 0);
        assert!(results.is_empty());
        assert_eq!(stats.refined, 0);
        let (results, _) = engine.knn(forest.tree(TreeId(0)), 100);
        assert_eq!(results.len(), forest.len());
    }

    #[test]
    fn range_zero_finds_exact_duplicates() {
        let mut forest = forest();
        forest.parse_bracket("a(b c)").unwrap(); // duplicate of tree 2
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, _) = engine.range(forest.tree(TreeId(2)), 0);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|n| n.distance == 0));
    }

    #[test]
    fn external_query_not_in_dataset() {
        let mut forest = forest();
        // Build a query sharing the interner but not inserted as data.
        let query = {
            let interner = forest.interner_mut();
            let mut i2 = interner.clone();
            let t = treesim_tree::parse::bracket::parse(&mut i2, "a(b(c(d)) z)").unwrap();
            *interner = i2;
            t
        };
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (got, _) = engine.knn(&query, 3);
        let expected = sequential_knn(&forest, &query, 3);
        let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
        assert_eq!(got_dists, expected_dists);
    }

    #[test]
    fn weighted_cost_engine_matches_weighted_scan() {
        use treesim_edit::{edit_distance_with, WeightedCost};
        let forest = forest();
        let weighted = WeightedCost {
            relabel: 3,
            delete: 2,
            insert: 2,
        };
        let engine = SearchEngine::with_cost(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            weighted,
        );
        for (_, query) in forest.iter() {
            // Ground truth under the weighted model.
            let mut truth: Vec<(u64, TreeId)> = forest
                .iter()
                .map(|(id, t)| (edit_distance_with(query, t, &weighted), id))
                .collect();
            truth.sort_unstable();

            let (got, _) = engine.knn(query, 3);
            let got_d: Vec<u64> = got.iter().map(|n| n.distance).collect();
            let want_d: Vec<u64> = truth.iter().take(3).map(|&(d, _)| d).collect();
            assert_eq!(got_d, want_d);

            for tau in [0u32, 2, 4, 8, 12] {
                let (range_hits, _) = engine.range(query, tau);
                let expected = truth.iter().filter(|&&(d, _)| d <= u64::from(tau)).count();
                assert_eq!(range_hits.len(), expected, "τ={tau}");
            }
        }
    }

    #[test]
    fn weighted_engine_still_prunes() {
        use treesim_edit::WeightedCost;
        let forest = forest();
        let weighted = WeightedCost {
            relabel: 2,
            delete: 2,
            insert: 2,
        };
        let engine = SearchEngine::with_cost(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            weighted,
        );
        let (_, stats) = engine.range(forest.tree(TreeId(6)), 2);
        assert!(stats.refined < forest.len(), "filter pruned nothing");
    }
}
