//! The filter-and-refine similarity search engine (Algorithm 2 and §4.3),
//! with a staged lower-bound cascade and scoped-thread batch execution.
//!
//! * **k-NN** follows the optimal multi-step strategy of Seidl & Kriegel
//!   \[13\], which the paper adopts: process candidates in ascending
//!   lower-bound order, refine with the real Zhang–Shasha distance, and
//!   stop as soon as the next lower bound exceeds the current k-th
//!   distance — completeness is guaranteed by the lower-bound property.
//!   Bounds are evaluated **lazily through the filter's cascade**
//!   ([`Filter::stage_bound`]): every candidate starts with the coarsest
//!   stage (for the positional filter, the O(1) size difference) and only
//!   escalates to the next, more expensive stage when its current bound is
//!   the smallest outstanding one. Candidates pruned by a cheap stage
//!   never pay for `⌈BDist/5⌉` merges or `propt` binary searches.
//! * **Range queries** sweep the cascade stage by stage, discarding at
//!   each stage every candidate whose bound already exceeds `τ`, and
//!   refine only the survivors of the final (sharpest) stage.
//!
//! Both return results **bit-identical** to an exhaustive sequential scan
//! (ties broken by ascending [`TreeId`]); the cascade only changes how
//! much work the filtering step performs. Per-stage candidate counts,
//! prune counts and wall-clock live in [`SearchStats::stages`].
//!
//! Per-tree Zhang–Shasha precomputation ([`TreeInfo`]) is parallelized
//! across scoped threads at engine construction, and the batch entry
//! points ([`SearchEngine::knn_batch`], [`SearchEngine::range_batch`])
//! fan independent queries out over a scoped thread pool.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

use treesim_edit::{bounded_zhang_shasha, CostModel, TreeInfo, UnitCost, ZsWorkspace};
use treesim_obs::recorder::{self, QueryKind, QueryRecord};
use treesim_tree::{Forest, Tree, TreeId};

use crate::filter::Filter;
use crate::stats::{SearchStats, StageStats};

/// Per-candidate hooks the EXPLAIN replay taps into. The production path
/// runs with the no-op `()` impl, so the hooks cost nothing there; the
/// query cores call them at exactly the points the per-query
/// [`SearchStats`] counters are bumped, which is what makes EXPLAIN
/// verdicts telescope to the stats funnel.
pub(crate) trait QueryObserver {
    /// A cascade stage computed `bound` (scaled to cost space) for `id`.
    fn on_stage_bound(&mut self, _id: TreeId, _stage: usize, _bound: u64) {}
    /// `id` was eliminated at `stage`; `bound` is the value that did it.
    fn on_pruned(&mut self, _id: TreeId, _stage: usize, _bound: u64) {}
    /// The final-stage range predicate examined `id`.
    fn on_range_checked(&mut self, _id: TreeId, _stage: usize) {}
    /// The final-stage range predicate certified `EDist > τ` for `id`.
    fn on_range_pruned(&mut self, _id: TreeId, _stage: usize) {}
    /// `id` was refined to exact distance `distance`.
    fn on_refined(&mut self, _id: TreeId, _distance: u64) {}
    /// `id` reached refinement but the bounded DP proved its distance
    /// exceeds the live budget `budget` without computing it exactly.
    fn on_refine_cutoff(&mut self, _id: TreeId, _budget: u64) {}
}

/// The production observer: all hooks are no-ops.
impl QueryObserver for () {}

/// Assembles and deposits the flight record for one finished query.
pub(crate) fn emit_record(
    kind: QueryKind,
    param: u64,
    stats: &SearchStats,
    results: &[Neighbor],
    zs_nodes: u64,
    wall: std::time::Duration,
) {
    let mut record = QueryRecord::new(kind);
    record.param = param;
    record.dataset = stats.dataset_size as u64;
    for stage in &stats.stages {
        record.push_stage(stage.name, stage.evaluated as u64, stage.pruned as u64);
    }
    record.propt_iters = recorder::propt_iters_take();
    record.refined = stats.refined as u64;
    record.refine_cutoffs = stats.refine_cutoffs as u64;
    record.bands_skipped = stats.refine_bands_skipped;
    record.zs_nodes = zs_nodes;
    record.results = results.len() as u64;
    record.best = results.first().map(|n| n.distance);
    record.worst = results.last().map(|n| n.distance);
    record.wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    recorder::record_query(record);
}

/// Maps a cascade stage name (as reported by [`Filter::stage_name`]) to
/// the `cascade.*` span name used for that stage's node in a query's
/// span tree. Returning `&'static str` keeps trace span names
/// allocation-free; unknown stages fall back to the generic scan name.
pub(crate) fn stage_trace_name(stage: &'static str) -> &'static str {
    match stage {
        "size" => "cascade.size",
        "postings" => "cascade.postings",
        "bdist" => "cascade.bdist",
        "propt" => "cascade.propt",
        "histo" => "cascade.histo",
        _ => "cascade.scan",
    }
}

/// One query answer: a tree and its exact edit distance to the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// The matching tree.
    pub tree: TreeId,
    /// Its unit-cost edit distance to the query.
    pub distance: u64,
}

/// Picks a worker count for scoped-thread fan-out: the available
/// parallelism, capped by the number of work items.
fn default_threads(work_items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(work_items.max(1))
}

/// A similarity search engine over a fixed dataset with a pluggable filter
/// and cost model.
///
/// Filters produce lower bounds in *operation counts*; under a non-unit
/// [`CostModel`] the engine scales them by
/// [`CostModel::min_operation_cost`] (§2.1 of the paper: the approach
/// extends to general costs given a lower bound on per-operation cost).
///
/// # Determinism
///
/// For fixed inputs every query method is fully deterministic: results
/// are sorted by `(distance, tree id)` and k-NN tie-breaking keeps the
/// **smallest tree ids** among equal distances, regardless of filter,
/// cascade shape, or thread count.
pub struct SearchEngine<'a, F: Filter, C: CostModel = UnitCost> {
    forest: &'a Forest,
    filter: F,
    infos: Vec<TreeInfo>,
    cost: C,
}

impl<'a, F: Filter> SearchEngine<'a, F, UnitCost> {
    /// Builds a unit-cost engine: the filter indexes the dataset and the
    /// Zhang–Shasha per-tree tables are precomputed (in parallel).
    pub fn new(forest: &'a Forest, filter: F) -> Self {
        Self::with_cost(forest, filter, UnitCost)
    }
}

impl<'a, F: Filter, C: CostModel> SearchEngine<'a, F, C> {
    /// Builds an engine refining with an arbitrary cost model. The
    /// per-tree [`TreeInfo`] precomputation fans out across all available
    /// cores.
    pub fn with_cost(forest: &'a Forest, filter: F, cost: C) -> Self {
        Self::with_cost_threads(forest, filter, cost, default_threads(forest.len()))
    }

    /// Like [`SearchEngine::with_cost`] with an explicit worker count
    /// (`threads = 1` recovers the fully serial build). The assembled
    /// engine is identical regardless of `threads`.
    pub fn with_cost_threads(forest: &'a Forest, filter: F, cost: C, threads: usize) -> Self {
        let threads = threads.max(1);
        let trees: Vec<&Tree> = forest.iter().map(|(_, t)| t).collect();
        let chunk_size = trees.len().div_ceil(threads).max(1);
        // Parallel precomputation, sequential in-order assembly — same
        // scheme as `InvertedFileIndex::build_parallel`, so `infos[i]`
        // always belongs to `TreeId(i)`.
        let infos: Vec<TreeInfo> = if threads == 1 || trees.len() <= 1 {
            trees.iter().map(|t| TreeInfo::new(t)).collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = trees
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk.iter().map(|t| TreeInfo::new(t)).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("tree-info thread panicked"))
                    .collect()
            })
        };
        SearchEngine {
            forest,
            filter,
            infos,
            cost,
        }
    }

    /// Lower bounds count operations; one operation costs at least this.
    #[inline]
    fn bound_scale(&self) -> u64 {
        self.cost.min_operation_cost()
    }

    /// The underlying dataset.
    pub fn forest(&self) -> &'a Forest {
        self.forest
    }

    /// The filter in use.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// Edit distance between `query_info` and dataset tree `id`, bounded
    /// by the caller's live `budget` (the range τ or the current k-th heap
    /// distance). Returns `Some(d)` with the exact distance iff `d ≤
    /// budget`; `None` means the distance provably exceeds the budget (a
    /// *cutoff* — the candidate cannot affect the result).
    ///
    /// Each call records its **effective refinement volume** into the
    /// `refine.zs.nodes` histogram — the problem size (total nodes on both
    /// sides) scaled by the fraction of DP cells the bounded DP actually
    /// evaluated, so budget savings show up in the §4.3 cost profile — and
    /// its wall-clock into `refine.zs.us`. The volume also accumulates
    /// into `zs_nodes` (the flight record's per-query total); cutoffs and
    /// skipped cells feed the `refine.bounded.{cutoffs,bands_skipped}`
    /// counters and the matching [`SearchStats`] fields.
    fn refine(
        &self,
        query_info: &TreeInfo,
        id: TreeId,
        budget: u64,
        workspace: &mut ZsWorkspace,
        zs_nodes: &mut u64,
        stats: &mut SearchStats,
    ) -> Option<u64> {
        let data_info = &self.infos[id.index()];
        // Trace-only span (no histogram — `refine.zs.us` below already
        // carries the timing): one `refine.call` node per refined
        // candidate, with the live budget and the cutoff verdict.
        let mut trace_span = treesim_obs::trace::span("refine.call");
        trace_span.push_field("tree", || id.0.to_string());
        trace_span.push_field("budget", || budget.to_string());
        let start = Instant::now();
        let (distance, bounded) =
            bounded_zhang_shasha(query_info, data_info, &self.cost, budget, workspace);
        treesim_obs::histogram!("refine.zs.us").record_duration(start.elapsed());
        trace_span.push_field("verdict", || match distance {
            Some(d) => format!("refined d={d}"),
            None => format!("cutoff (d > {budget})"),
        });
        #[cfg(feature = "strict-checks")]
        {
            let oracle = treesim_edit::zhang_shasha(
                query_info,
                data_info,
                &self.cost,
                &mut ZsWorkspace::new(),
            );
            match distance {
                Some(d) => debug_assert_eq!(d, oracle, "bounded DP disagrees with oracle"),
                None => debug_assert!(
                    oracle > budget,
                    "bounded DP cut off a within-budget pair: oracle {oracle} ≤ budget {budget}"
                ),
            }
        }
        let nodes = (query_info.len() + data_info.len()) as u64;
        let effective = (nodes * bounded.cells_computed)
            .checked_div(bounded.cells_full)
            .unwrap_or(0);
        treesim_obs::histogram!("refine.zs.nodes").record(effective);
        *zs_nodes += effective;
        stats.refine_bands_skipped += bounded.cells_skipped;
        treesim_obs::counter!("refine.bounded.bands_skipped").add(bounded.cells_skipped);
        if distance.is_none() {
            stats.refine_cutoffs += 1;
            treesim_obs::counter!("refine.bounded.cutoffs").inc();
        }
        distance
    }

    fn stage_accumulators(&self) -> Vec<StageStats> {
        (0..self.filter.stages())
            .map(|s| StageStats::named(self.filter.stage_name(s)))
            .collect()
    }

    /// k-nearest-neighbor query (Algorithm 2). Returns up to `k` neighbors
    /// in ascending distance order — ties broken by **smallest tree id**,
    /// a guarantee the tie-handling tests pin down — and the query
    /// statistics.
    ///
    /// Candidates escalate lazily through the filter's bound cascade: an
    /// escalation heap keyed by `(bound, stage, id)` always advances the
    /// candidate with the smallest outstanding bound, either sharpening
    /// its bound with the next cascade stage or (once fully bounded)
    /// refining it. When the smallest outstanding bound exceeds the
    /// current k-th distance, no remaining candidate — at any stage — can
    /// enter the result, and the search stops. The comparison is strict
    /// (`>`), so candidates whose bound *equals* the current k-th distance
    /// are still refined; dropping them could lose a tied neighbor with a
    /// smaller id.
    pub fn knn(&self, query: &Tree, k: usize) -> (Vec<Neighbor>, SearchStats) {
        self.knn_observed(query, k, &mut ())
    }

    /// The observed k-NN entry point: wraps [`SearchEngine::knn_core`]
    /// with the query span, the `engine.knn.*` metrics flush and the
    /// flight record deposit. The production path passes `&mut ()`,
    /// EXPLAIN passes a recording observer — the algorithm is
    /// byte-for-byte the same either way.
    pub(crate) fn knn_observed<O: QueryObserver>(
        &self,
        query: &Tree,
        k: usize,
        observer: &mut O,
    ) -> (Vec<Neighbor>, SearchStats) {
        // The trace guard is declared before the span so the span closes
        // (and deposits itself) before the guard finalizes the trace.
        // Inside a batch/sharded/nested query this is inert — the query
        // joins the enclosing trace instead of starting its own.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("engine.knn", k = k, dataset = self.forest.len());
        let wall_start = Instant::now();
        recorder::propt_iters_take(); // discard any stale accumulation
        let (results, stats, zs_nodes) = self.knn_core(query, k, observer);
        stats.record_metrics("engine.knn");
        emit_record(
            QueryKind::Knn,
            k as u64,
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats)
    }

    /// The bare k-NN algorithm: answers the query and fills the per-query
    /// [`SearchStats`], but emits **nothing** — no span, no registry
    /// metrics, no flight record. [`SearchEngine::knn_observed`] adds the
    /// emission for the single-engine path; the sharded engine runs this
    /// core on per-shard worker threads and emits once for the merged
    /// query. Also returns the total Zhang–Shasha problem size (nodes)
    /// refined, for the flight record.
    pub(crate) fn knn_core<O: QueryObserver>(
        &self,
        query: &Tree,
        k: usize,
        observer: &mut O,
    ) -> (Vec<Neighbor>, SearchStats, u64) {
        let mut stats = SearchStats {
            dataset_size: self.forest.len(),
            stages: self.stage_accumulators(),
            ..Default::default()
        };
        if k == 0 || self.forest.is_empty() {
            return (Vec::new(), stats, 0);
        }

        let filter_start = Instant::now();
        let scale = self.bound_scale();
        let stage_count = self.filter.stages();
        let query_artifact = self.filter.prepare_query(query);

        // Stage 0 for every tree, in bulk: one batched sweep in ascending
        // tree-id (= arena) order, so arena-backed filters touch their CSR
        // slabs sequentially. The heap keys escalations by (bound, next
        // stage, id): of equally bounded entries the one with fewer stages
        // left runs first, reaching refinement sooner.
        let stage0_start = Instant::now();
        let sweep: Vec<TreeId> = self.forest.iter().map(|(id, _)| id).collect();
        let mut bounds: Vec<u64> = Vec::with_capacity(sweep.len());
        self.filter
            .stage_bound_batch(&query_artifact, &sweep, 0, &mut bounds);
        let mut escalation: BinaryHeap<Reverse<(u64, usize, TreeId)>> =
            BinaryHeap::with_capacity(self.forest.len());
        for (&id, &raw_bound) in sweep.iter().zip(&bounds) {
            let bound = raw_bound * scale;
            observer.on_stage_bound(id, 0, bound);
            escalation.push(Reverse((bound, 1, id)));
        }
        if let Some(stage0) = stats.stages.first_mut() {
            stage0.evaluated = self.forest.len();
            stage0.time = stage0_start.elapsed();
        }

        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        let mut refine_time = std::time::Duration::ZERO;
        let mut zs_nodes = 0u64;
        // Max-heap of the k best (distance, tree) pairs seen so far; the
        // push-then-pop below evicts the largest (distance, id), so among
        // equal distances the smallest ids survive.
        let mut heap: BinaryHeap<(u64, TreeId)> = BinaryHeap::with_capacity(k + 1);
        while let Some(&Reverse((bound, next_stage, id))) = escalation.peek() {
            if let Some(&(worst, _)) = heap.peek().filter(|_| heap.len() == k) {
                if bound > worst {
                    break; // no outstanding candidate can improve the result
                }
            }
            escalation.pop();
            if next_stage < stage_count {
                // Sharpen with the next cascade stage; keep the running
                // max (stages need not be pointwise monotone).
                let stage_start = Instant::now();
                let sharper = self.filter.stage_bound(&query_artifact, id, next_stage) * scale;
                stats.stages[next_stage].time += stage_start.elapsed();
                stats.stages[next_stage].evaluated += 1;
                observer.on_stage_bound(id, next_stage, sharper);
                escalation.push(Reverse((bound.max(sharper), next_stage + 1, id)));
            } else {
                // The live budget is the current k-th distance once the
                // heap is full: a candidate strictly beyond it would be
                // pushed and immediately evicted, so the bounded DP may
                // cut it off; at exactly the budget the exact distance is
                // still needed for the `(distance, id)` tie-break.
                let budget = match heap.peek() {
                    Some(&(worst, _)) if heap.len() == k => worst,
                    _ => u64::MAX,
                };
                let refine_start = Instant::now();
                let refined = self.refine(
                    &query_info,
                    id,
                    budget,
                    &mut workspace,
                    &mut zs_nodes,
                    &mut stats,
                );
                refine_time += refine_start.elapsed();
                stats.refined += 1;
                match refined {
                    Some(distance) => {
                        observer.on_refined(id, distance);
                        heap.push((distance, id));
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                    None => observer.on_refine_cutoff(id, budget),
                }
            }
        }
        // Whatever is still queued was pruned by its last evaluated stage.
        for &Reverse((bound, next_stage, id)) in escalation.iter() {
            stats.stages[next_stage - 1].pruned += 1;
            observer.on_pruned(id, next_stage - 1, bound);
        }
        stats.filter_time = filter_start.elapsed() - refine_time;
        stats.refine_time = refine_time;

        let mut results: Vec<Neighbor> = heap
            .into_iter()
            .map(|(distance, tree)| Neighbor { tree, distance })
            .collect();
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        (results, stats, zs_nodes)
    }

    /// Range query: all trees within edit distance `tau` of `query`,
    /// ascending by distance (ties by tree id).
    ///
    /// The candidate set is narrowed stage by stage: stage `s` drops every
    /// candidate whose stage-`s` bound already exceeds `τ`, and only the
    /// final-stage survivors are refined. The final stage uses the
    /// filter's sharpest range predicate ([`Filter::prunes_range`], which
    /// for the positional filter adds the Proposition 4.2 test at
    /// `pr = τ` on top of the `propt` bound).
    pub fn range(&self, query: &Tree, tau: u32) -> (Vec<Neighbor>, SearchStats) {
        self.range_observed(query, tau, &mut ())
    }

    /// The observed range entry point, mirroring
    /// [`SearchEngine::knn_observed`]: emission around
    /// [`SearchEngine::range_core`].
    pub(crate) fn range_observed<O: QueryObserver>(
        &self,
        query: &Tree,
        tau: u32,
        observer: &mut O,
    ) -> (Vec<Neighbor>, SearchStats) {
        // Trace before span, as in `knn_observed` (drop order matters).
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("engine.range", tau = tau, dataset = self.forest.len());
        let wall_start = Instant::now();
        recorder::propt_iters_take(); // discard any stale accumulation
        let (results, stats, zs_nodes) = self.range_core(query, tau, observer);
        stats.record_metrics("engine.range");
        emit_record(
            QueryKind::Range,
            u64::from(tau),
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats)
    }

    /// The bare range algorithm — emission-free like
    /// [`SearchEngine::knn_core`], for the same sharded reuse.
    pub(crate) fn range_core<O: QueryObserver>(
        &self,
        query: &Tree,
        tau: u32,
        observer: &mut O,
    ) -> (Vec<Neighbor>, SearchStats, u64) {
        let mut stats = SearchStats {
            dataset_size: self.forest.len(),
            stages: self.stage_accumulators(),
            ..Default::default()
        };
        let filter_start = Instant::now();
        let scale = self.bound_scale();
        let stage_count = self.filter.stages();
        let query_artifact = self.filter.prepare_query(query);
        // Filters prune in operation counts: EDist_cost ≥ ops · scale, so a
        // candidate is safe to drop when ops > ⌊tau / scale⌋.
        let ops_tau = u32::try_from(u64::from(tau) / self.bound_scale()).unwrap_or(u32::MAX);
        let mut candidates: Vec<TreeId> = self.forest.iter().map(|(id, _)| id).collect();
        let mut bounds: Vec<u64> = Vec::new();
        for stage in 0..stage_count {
            // Trace-only stage span (the `cascade.<stage>.us` histograms
            // already time these sweeps via `record_metrics`): one child
            // per cascade stage under the `engine.range` span, so the
            // funnel reads straight off the trace tree.
            let mut stage_span =
                treesim_obs::trace::span(stage_trace_name(self.filter.stage_name(stage)));
            let stage_start = Instant::now();
            let before = candidates.len();
            if stage + 1 == stage_count {
                candidates.retain(|&id| {
                    observer.on_range_checked(id, stage);
                    let pruned = self.filter.prunes_range(&query_artifact, id, ops_tau);
                    if pruned {
                        observer.on_range_pruned(id, stage);
                    }
                    !pruned
                });
            } else {
                // Candidates stay in ascending id order across stages, so
                // every non-final sweep is one batched arena-order walk.
                bounds.clear();
                self.filter
                    .stage_bound_batch(&query_artifact, &candidates, stage, &mut bounds);
                let mut kept = Vec::with_capacity(candidates.len());
                for (&id, &raw_bound) in candidates.iter().zip(&bounds) {
                    let bound = raw_bound * scale;
                    observer.on_stage_bound(id, stage, bound);
                    if bound <= u64::from(ops_tau) * scale {
                        kept.push(id);
                    } else {
                        observer.on_pruned(id, stage, bound);
                    }
                }
                candidates = kept;
            }
            stats.stages[stage].evaluated = before;
            stats.stages[stage].pruned = before - candidates.len();
            stats.stages[stage].time = stage_start.elapsed();
            let survivors = candidates.len();
            stage_span.push_field("evaluated", || before.to_string());
            stage_span.push_field("pruned", || (before - survivors).to_string());
        }
        stats.filter_time = filter_start.elapsed();

        let refine_start = Instant::now();
        let query_info = TreeInfo::new(query);
        let mut workspace = ZsWorkspace::new();
        let mut zs_nodes = 0u64;
        let mut results = Vec::new();
        for id in candidates {
            // The range radius is the refinement budget: `Some(d)` implies
            // `d ≤ τ` (a hit), `None` is exactly the old `distance > τ`
            // rejection without paying for the full DP.
            let refined = self.refine(
                &query_info,
                id,
                u64::from(tau),
                &mut workspace,
                &mut zs_nodes,
                &mut stats,
            );
            stats.refined += 1;
            match refined {
                Some(distance) => {
                    observer.on_refined(id, distance);
                    results.push(Neighbor { tree: id, distance });
                }
                None => observer.on_refine_cutoff(id, u64::from(tau)),
            }
        }
        stats.refine_time = refine_start.elapsed();
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        stats.results = results.len();
        (results, stats, zs_nodes)
    }

    /// Cascade stage names, coarsest first.
    fn stage_names(&self) -> Vec<&'static str> {
        (0..self.filter.stages())
            .map(|s| self.filter.stage_name(s))
            .collect()
    }

    /// EXPLAIN for a k-NN query: replays [`SearchEngine::knn`] through the
    /// same core with a recording observer and returns a per-candidate
    /// report — which stage pruned each dataset tree (and the bound value
    /// that did it), or its refined distance. The report's `stats` and
    /// `results` are identical to a production `knn` call, and the
    /// per-candidate verdicts telescope exactly to the stats funnel
    /// ([`crate::explain::ExplainReport::check_consistency`]).
    ///
    /// The replay runs the real query path, so it also updates the global
    /// metrics registry and deposits a flight record.
    pub fn explain_knn(&self, query: &Tree, k: usize) -> crate::explain::ExplainReport {
        // Own the trace here (the replay's own start is then inert) so
        // the id is still current when the report is assembled.
        let trace = treesim_obs::trace::start_trace();
        let trace_id = trace.id();
        let mut observer = crate::explain::ExplainObserver::new();
        let (results, stats) = self.knn_observed(query, k, &mut observer);
        let candidates = observer.into_candidates(&results, |_| 0);
        crate::explain::ExplainReport {
            kind: "knn",
            param: k as u64,
            stats,
            results,
            stage_names: self.stage_names(),
            candidates,
            trace_id,
        }
    }

    /// EXPLAIN for a range query; see [`SearchEngine::explain_knn`].
    ///
    /// The final cascade stage prunes through a predicate
    /// ([`Filter::prunes_range`]) that certifies `EDist > τ` without
    /// materializing a bound, so for predicate-pruned candidates the
    /// report recomputes that stage's generic lower bound afterwards,
    /// purely for display — the replay's statistics stay identical to a
    /// production [`SearchEngine::range`] call.
    pub fn explain_range(&self, query: &Tree, tau: u32) -> crate::explain::ExplainReport {
        // Trace ownership as in `explain_knn`.
        let trace = treesim_obs::trace::start_trace();
        let trace_id = trace.id();
        let mut observer = crate::explain::ExplainObserver::new();
        let (results, stats) = self.range_observed(query, tau, &mut observer);
        let scale = self.bound_scale();
        let last_stage = self.filter.stages() - 1;
        let query_artifact = self.filter.prepare_query(query);
        let candidates = observer.into_candidates(&results, |id| {
            self.filter.stage_bound(&query_artifact, id, last_stage) * scale
        });
        crate::explain::ExplainReport {
            kind: "range",
            param: u64::from(tau),
            stats,
            results,
            stage_names: self.stage_names(),
            candidates,
            trace_id,
        }
    }
}

impl<F, C> SearchEngine<'_, F, C>
where
    F: Filter + Sync,
    C: CostModel + Sync,
{
    /// Answers many k-NN queries, fanning out over all available cores.
    /// Results are in query order and each is identical to what
    /// [`SearchEngine::knn`] returns for that query alone.
    pub fn knn_batch(&self, queries: &[&Tree], k: usize) -> Vec<(Vec<Neighbor>, SearchStats)> {
        self.knn_batch_threads(queries, k, default_threads(queries.len()))
    }

    /// [`SearchEngine::knn_batch`] with an explicit worker count.
    pub fn knn_batch_threads(
        &self,
        queries: &[&Tree],
        k: usize,
        threads: usize,
    ) -> Vec<(Vec<Neighbor>, SearchStats)> {
        let threads = threads.clamp(1, queries.len().max(1));
        let mut results = self.batch(queries, threads, |query| self.knn(query, k));
        Self::stamp_threads(&mut results, threads);
        results
    }

    /// Answers many range queries, fanning out over all available cores.
    /// Results are in query order and each is identical to what
    /// [`SearchEngine::range`] returns for that query alone.
    pub fn range_batch(&self, queries: &[&Tree], tau: u32) -> Vec<(Vec<Neighbor>, SearchStats)> {
        self.range_batch_threads(queries, tau, default_threads(queries.len()))
    }

    /// [`SearchEngine::range_batch`] with an explicit worker count.
    pub fn range_batch_threads(
        &self,
        queries: &[&Tree],
        tau: u32,
        threads: usize,
    ) -> Vec<(Vec<Neighbor>, SearchStats)> {
        let threads = threads.clamp(1, queries.len().max(1));
        let mut results = self.batch(queries, threads, |query| self.range(query, tau));
        Self::stamp_threads(&mut results, threads);
        results
    }

    /// Shared batch driver: splits `queries` into `threads` contiguous
    /// chunks, answers each chunk on a scoped worker thread, and stitches
    /// the per-query results back together in input order. Each worker
    /// prepares its own query artifacts and Zhang–Shasha workspace, so no
    /// state is shared beyond the immutable engine.
    ///
    /// Each worker runs under an `engine.batch.worker` span (carrying its
    /// index and chunk size), the `engine.batch.workers.active` gauge
    /// tracks live workers, and `engine.batch.pending` drains from the
    /// batch size to zero as queries complete.
    fn batch<R, Run>(&self, queries: &[&Tree], threads: usize, run: Run) -> Vec<(Vec<Neighbor>, R)>
    where
        R: Send,
        Run: Fn(&Tree) -> (Vec<Neighbor>, R) + Sync,
    {
        let threads = threads.clamp(1, queries.len().max(1));
        let chunk_size = queries.len().div_ceil(threads).max(1);
        // One trace for the whole batch: the handle captured below carries
        // the trace across the scoped-thread boundary, so every worker's
        // spans (and each query's spans under them) reassemble into a
        // single tree with the `engine.batch` span at the root.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!("engine.batch", queries = queries.len(), workers = threads);
        let trace_handle = treesim_obs::trace::current_handle();
        let pending = treesim_obs::gauge!("engine.batch.pending");
        let active = treesim_obs::gauge!("engine.batch.workers.active");
        pending.add(queries.len() as i64);
        std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = queries
                .chunks(chunk_size)
                .enumerate()
                .map(|(worker, chunk)| {
                    let trace_handle = trace_handle.clone();
                    scope.spawn(move || {
                        // Join the batch trace from this worker thread;
                        // worker index becomes the Chrome-trace `tid` row
                        // (the coordinator thread is tid 0).
                        let _trace = trace_handle.map(|h| h.install(0, worker as u32 + 1));
                        let _span = treesim_obs::span!(
                            "engine.batch.worker",
                            worker = worker,
                            queries = chunk.len()
                        );
                        // Flight records deposited by this worker's queries
                        // are tagged as batch work (thread-local context,
                        // so it must be entered on the worker thread).
                        let _batch = recorder::BatchContext::enter();
                        active.add(1);
                        let answers = chunk
                            .iter()
                            .map(|q| {
                                let answer = run(q);
                                pending.sub(1);
                                answer
                            })
                            .collect::<Vec<_>>();
                        active.sub(1);
                        answers
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("batch query thread panicked"))
                .collect()
        })
    }

    /// Stamps `threads` into a batch's per-query stats (the batch APIs
    /// report the pool size they actually used).
    fn stamp_threads(results: &mut [(Vec<Neighbor>, SearchStats)], threads: usize) {
        for (_, stats) in results {
            stats.threads = threads;
        }
    }

    /// Worker count the auto-sizing batch APIs would use for `n` queries.
    pub fn batch_threads_for(&self, n: usize) -> usize {
        default_threads(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, HistogramFilter, MaxFilter, NoFilter};
    use treesim_edit::edit_distance;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
            "a(b(c(d)) b e f)",
            "q(r(s))",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn sequential_knn(forest: &Forest, query: &Tree, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = forest
            .iter()
            .map(|(tree, t)| Neighbor {
                tree,
                distance: edit_distance(query, t),
            })
            .collect();
        all.sort_unstable_by_key(|n| (n.distance, n.tree));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_sequential_scan() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for k in 1..=forest.len() {
                let (got, stats) = engine.knn(query, k);
                let expected = sequential_knn(&forest, query, k);
                let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
                let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
                assert_eq!(got_dists, expected_dists, "k={k}");
                assert!(stats.refined <= forest.len());
                assert_eq!(stats.results, k.min(forest.len()));
            }
        }
    }

    #[test]
    fn knn_ties_keep_smallest_ids() {
        // Three exact duplicates: every k must return the k smallest ids.
        let mut forest = Forest::new();
        for spec in ["a(b c)", "a(b c)", "a(b c)", "x(y z)", "a(b d)"] {
            forest.parse_bracket(spec).unwrap();
        }
        for build_filter in 0..2 {
            let results_for = |k: usize| -> Vec<(TreeId, u64)> {
                let query = forest.tree(TreeId(1));
                let neighbors = if build_filter == 0 {
                    let engine = SearchEngine::new(
                        &forest,
                        BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
                    );
                    engine.knn(query, k).0
                } else {
                    let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
                    engine.knn(query, k).0
                };
                neighbors.iter().map(|n| (n.tree, n.distance)).collect()
            };
            assert_eq!(results_for(1), vec![(TreeId(0), 0)]);
            assert_eq!(results_for(2), vec![(TreeId(0), 0), (TreeId(1), 0)]);
            assert_eq!(
                results_for(3),
                vec![(TreeId(0), 0), (TreeId(1), 0), (TreeId(2), 0)]
            );
            // A tie at the boundary distance: ids decide who enters.
            assert_eq!(
                results_for(4),
                vec![
                    (TreeId(0), 0),
                    (TreeId(1), 0),
                    (TreeId(2), 0),
                    (TreeId(4), 1)
                ]
            );
        }
    }

    #[test]
    fn knn_self_query_returns_self_first() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, _) = engine.knn(forest.tree(TreeId(0)), 1);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].distance, 0);
        assert_eq!(results[0].tree, TreeId(0));
    }

    #[test]
    fn range_matches_sequential_scan() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for tau in 0..=6u32 {
                let (got, stats) = engine.range(query, tau);
                let mut expected: Vec<Neighbor> = forest
                    .iter()
                    .map(|(tree, t)| Neighbor {
                        tree,
                        distance: edit_distance(query, t),
                    })
                    .filter(|n| n.distance <= u64::from(tau))
                    .collect();
                expected.sort_unstable_by_key(|n| (n.distance, n.tree));
                assert_eq!(got.len(), expected.len(), "τ={tau}");
                for (a, b) in got.iter().zip(&expected) {
                    assert_eq!(a.tree, b.tree);
                    assert_eq!(a.distance, b.distance);
                }
                assert!(stats.refined >= stats.results);
            }
        }
    }

    #[test]
    fn cascade_stage_stats_are_consistent() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            let (_, stats) = engine.range(query, 1);
            assert_eq!(stats.stages.len(), 3);
            assert_eq!(stats.stages[0].name, "size");
            assert_eq!(stats.stages[0].evaluated, forest.len());
            // Survivors of stage s are exactly what stage s+1 evaluates.
            for pair in stats.stages.windows(2) {
                assert_eq!(pair[0].survivors(), pair[1].evaluated);
            }
            // Final-stage survivors are the refinement candidates.
            assert_eq!(stats.stages.last().unwrap().survivors(), stats.refined);

            let (_, stats) = engine.knn(query, 2);
            assert_eq!(stats.stages.len(), 3);
            assert_eq!(stats.stages[0].evaluated, forest.len());
            // Lazy escalation: later stages never evaluate more than
            // earlier ones, and propt computations never exceed the
            // dataset size (the pre-cascade behavior).
            for pair in stats.stages.windows(2) {
                assert!(pair[1].evaluated <= pair[0].evaluated);
            }
            assert!(stats.final_stage_evaluated() <= forest.len());
            // Every candidate is accounted for: refined or pruned at some
            // stage.
            let pruned: usize = stats.stages.iter().map(|s| s.pruned).sum();
            assert_eq!(pruned + stats.refined, forest.len());
        }
    }

    #[test]
    fn cascade_saves_final_stage_work() {
        // A query far from most of the dataset: the size stage alone
        // prunes, so strictly fewer propt bounds than trees are computed.
        let mut forest = forest();
        for i in 0..8 {
            forest
                .parse_bracket(&format!("z{i}(w x y v u t s r p o n m l)"))
                .unwrap();
        }
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (_, stats) = engine.knn(forest.tree(TreeId(6)), 1);
        assert!(
            stats.final_stage_evaluated() < forest.len(),
            "cascade should skip propt for size-pruned candidates: {} vs {}",
            stats.final_stage_evaluated(),
            forest.len()
        );
        let (_, stats) = engine.range(forest.tree(TreeId(6)), 1);
        assert!(stats.final_stage_evaluated() < forest.len());
    }

    #[test]
    fn histogram_engine_is_also_complete() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, HistogramFilter::build(&forest));
        let query = forest.tree(TreeId(1));
        let (got, _) = engine.knn(query, 3);
        let expected = sequential_knn(&forest, query, 3);
        let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
        assert_eq!(got_dists, expected_dists);
    }

    #[test]
    fn stacked_filter_cascade_is_complete() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            MaxFilter {
                first: BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
                second: HistogramFilter::build(&forest),
            },
        );
        for (_, query) in forest.iter() {
            let (got, stats) = engine.knn(query, 4);
            let expected = sequential_knn(&forest, query, 4);
            assert_eq!(
                got.iter().map(|n| n.distance).collect::<Vec<_>>(),
                expected.iter().map(|n| n.distance).collect::<Vec<_>>()
            );
            assert_eq!(stats.stages.len(), 3);
            for tau in 0..=4 {
                let (hits, _) = engine.range(query, tau);
                let want = forest
                    .iter()
                    .filter(|(_, t)| edit_distance(query, t) <= u64::from(tau))
                    .count();
                assert_eq!(hits.len(), want);
            }
        }
    }

    #[test]
    fn no_filter_refines_everything_for_range() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
        let (_, stats) = engine.range(forest.tree(TreeId(0)), 2);
        assert_eq!(stats.refined, forest.len());
        assert!((stats.accessed_percent() - 100.0).abs() < 1e-12);
        assert_eq!(stats.stages.len(), 1);
    }

    #[test]
    fn bibranch_filters_more_than_nothing() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (_, stats) = engine.range(forest.tree(TreeId(6)), 1);
        // q(r(s)) is far from everything except itself; the filter should
        // prune most of the dataset.
        assert!(stats.refined < forest.len(), "filter pruned nothing");
        assert_eq!(stats.results, 1);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, stats) = engine.knn(forest.tree(TreeId(0)), 0);
        assert!(results.is_empty());
        assert_eq!(stats.refined, 0);
        let (results, _) = engine.knn(forest.tree(TreeId(0)), 100);
        assert_eq!(results.len(), forest.len());
    }

    #[test]
    fn range_zero_finds_exact_duplicates() {
        let mut forest = forest();
        forest.parse_bracket("a(b c)").unwrap(); // duplicate of tree 2
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (results, _) = engine.range(forest.tree(TreeId(2)), 0);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|n| n.distance == 0));
    }

    #[test]
    fn external_query_not_in_dataset() {
        let mut forest = forest();
        // Build a query sharing the interner but not inserted as data.
        let query = {
            let interner = forest.interner_mut();
            let mut i2 = interner.clone();
            let t = treesim_tree::parse::bracket::parse(&mut i2, "a(b(c(d)) z)").unwrap();
            *interner = i2;
            t
        };
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let (got, _) = engine.knn(&query, 3);
        let expected = sequential_knn(&forest, &query, 3);
        let got_dists: Vec<u64> = got.iter().map(|n| n.distance).collect();
        let expected_dists: Vec<u64> = expected.iter().map(|n| n.distance).collect();
        assert_eq!(got_dists, expected_dists);
    }

    #[test]
    fn weighted_cost_engine_matches_weighted_scan() {
        use treesim_edit::{edit_distance_with, WeightedCost};
        let forest = forest();
        let weighted = WeightedCost {
            relabel: 3,
            delete: 2,
            insert: 2,
        };
        let engine = SearchEngine::with_cost(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            weighted,
        );
        for (_, query) in forest.iter() {
            // Ground truth under the weighted model.
            let mut truth: Vec<(u64, TreeId)> = forest
                .iter()
                .map(|(id, t)| (edit_distance_with(query, t, &weighted), id))
                .collect();
            truth.sort_unstable();

            let (got, _) = engine.knn(query, 3);
            let got_d: Vec<u64> = got.iter().map(|n| n.distance).collect();
            let want_d: Vec<u64> = truth.iter().take(3).map(|&(d, _)| d).collect();
            assert_eq!(got_d, want_d);

            for tau in [0u32, 2, 4, 8, 12] {
                let (range_hits, _) = engine.range(query, tau);
                let expected = truth.iter().filter(|&&(d, _)| d <= u64::from(tau)).count();
                assert_eq!(range_hits.len(), expected, "τ={tau}");
            }
        }
    }

    #[test]
    fn weighted_engine_still_prunes() {
        use treesim_edit::WeightedCost;
        let forest = forest();
        let weighted = WeightedCost {
            relabel: 2,
            delete: 2,
            insert: 2,
        };
        let engine = SearchEngine::with_cost(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            weighted,
        );
        let (_, stats) = engine.range(forest.tree(TreeId(6)), 2);
        assert!(stats.refined < forest.len(), "filter pruned nothing");
    }

    #[test]
    fn serial_and_parallel_construction_agree() {
        let forest = forest();
        let serial = SearchEngine::with_cost_threads(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            UnitCost,
            1,
        );
        let parallel = SearchEngine::with_cost_threads(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            UnitCost,
            4,
        );
        for (_, query) in forest.iter() {
            let (a, _) = serial.knn(query, 4);
            let (b, _) = parallel.knn(query, 4);
            assert_eq!(
                a.iter().map(|n| (n.tree, n.distance)).collect::<Vec<_>>(),
                b.iter().map(|n| (n.tree, n.distance)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn batch_queries_match_single_queries() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let queries: Vec<&Tree> = forest.iter().map(|(_, t)| t).collect();
        for threads in [1usize, 2, 4, 16] {
            let knn_batch = engine.knn_batch_threads(&queries, 3, threads);
            let range_batch = engine.range_batch_threads(&queries, 2, threads);
            assert_eq!(knn_batch.len(), queries.len());
            assert_eq!(range_batch.len(), queries.len());
            for (i, query) in queries.iter().enumerate() {
                let (single, single_stats) = engine.knn(query, 3);
                assert_eq!(
                    knn_batch[i]
                        .0
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                    single
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                    "threads={threads} query={i}"
                );
                // The cascade is deterministic, so even the work counters
                // agree between batch and single execution.
                assert_eq!(knn_batch[i].1.threads, threads.min(queries.len()));
                assert_eq!(knn_batch[i].1.refined, single_stats.refined);
                assert_eq!(
                    knn_batch[i].1.final_stage_evaluated(),
                    single_stats.final_stage_evaluated()
                );

                let (single, _) = engine.range(query, 2);
                assert_eq!(
                    range_batch[i]
                        .0
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                    single
                        .iter()
                        .map(|n| (n.tree, n.distance))
                        .collect::<Vec<_>>(),
                    "threads={threads} query={i}"
                );
            }
        }
    }

    #[test]
    fn batch_handles_empty_and_auto_threads() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let none: Vec<&Tree> = Vec::new();
        assert!(engine.knn_batch(&none, 3).is_empty());
        assert!(engine.range_batch(&none, 1).is_empty());
        assert!(engine.batch_threads_for(100) >= 1);
        let queries: Vec<&Tree> = forest.iter().map(|(_, t)| t).take(2).collect();
        assert_eq!(engine.knn_batch(&queries, 1).len(), 2);
    }
}
