//! Per-query EXPLAIN: replay one k-NN or range query capturing, for
//! every dataset tree, which cascade stage pruned it (and the bound value
//! that did it) or what exact distance refinement produced.
//!
//! [`SearchEngine::explain_knn`] / [`SearchEngine::explain_range`] run
//! the *same* query cores as the production path — the cores are
//! parameterized over an observer whose production impl is a no-op — so
//! the per-candidate verdicts telescope exactly to the [`SearchStats`]
//! funnel of the same query: stage `s`'s `evaluated` equals the number of
//! candidates whose trail contains a stage-`s` entry, and its `pruned`
//! equals the number of verdicts naming stage `s`. A proptest pins this
//! identity down.
//!
//! [`SearchEngine::explain_knn`]: crate::SearchEngine::explain_knn
//! [`SearchEngine::explain_range`]: crate::SearchEngine::explain_range

use std::collections::BTreeMap;
use std::fmt;

use treesim_tree::TreeId;

use crate::engine::{Neighbor, QueryObserver};
use crate::stats::SearchStats;

/// One cascade-stage evaluation in a candidate's trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEval {
    /// Stage index (into [`ExplainReport::stage_names`]).
    pub stage: usize,
    /// The computed lower bound (cost space), or `None` for the final
    /// range stage, whose sharpest predicate certifies `EDist > τ`
    /// without materializing a bound value.
    pub bound: Option<u64>,
}

/// A candidate's fate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Eliminated at `stage` because `bound` exceeded the pruning
    /// threshold (the running k-th distance, or τ).
    Pruned {
        /// The stage that eliminated the candidate.
        stage: usize,
        /// The lower bound that did it.
        bound: u64,
    },
    /// Eliminated by the final-stage range predicate (Proposition 4.2);
    /// `bound` is that stage's generic lower bound, recomputed for the
    /// report — the predicate can prune even when this value is ≤ τ.
    PrunedByRangePredicate {
        /// The stage that eliminated the candidate.
        stage: usize,
        /// The stage's generic lower bound (display only).
        bound: u64,
    },
    /// Survived the cascade; `distance` is the exact edit distance.
    Refined {
        /// Exact edit distance to the query.
        distance: u64,
        /// Whether the candidate made the final result set.
        in_result: bool,
    },
    /// Survived the cascade and entered refinement, but the bounded DP
    /// ([`treesim_edit::bounded_zhang_shasha`]) proved the exact distance
    /// exceeds the live threshold `budget` (the running k-th distance, or
    /// τ) without finishing the computation. Counts as *refined* in the
    /// funnel — the candidate was not stage-pruned — but carries no exact
    /// distance.
    RefineCutoff {
        /// The live threshold the distance provably exceeds.
        budget: u64,
    },
}

/// One dataset tree's EXPLAIN row: the bounds each stage computed for it
/// and its final fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateExplain {
    /// The dataset tree.
    pub tree: TreeId,
    /// Stage evaluations in cascade order.
    pub trail: Vec<StageEval>,
    /// Final fate.
    pub verdict: Verdict,
}

/// The full EXPLAIN of one query. Render with `Display` (whole table) or
/// [`ExplainReport::render`] (bounded row count).
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// `"knn"` or `"range"`.
    pub kind: &'static str,
    /// `k` or `τ`.
    pub param: u64,
    /// The replayed query's statistics (identical counters to the
    /// production run of the same query).
    pub stats: SearchStats,
    /// The replayed query's results (identical to the production run).
    pub results: Vec<Neighbor>,
    /// Cascade stage names, coarsest first.
    pub stage_names: Vec<&'static str>,
    /// One row per dataset tree, ascending by tree id.
    pub candidates: Vec<CandidateExplain>,
    /// The trace id of the replayed query (`0` when tracing was off) —
    /// cross-reference into `/trace.json` or `treesim trace` to see the
    /// same query as a span tree.
    pub trace_id: u64,
}

impl ExplainReport {
    /// Per-stage `(evaluated, pruned)` totals recomputed from the
    /// per-candidate verdicts. Equality with `stats.stages` is the
    /// telescoping invariant ([`ExplainReport::check_consistency`]).
    pub fn stage_totals(&self) -> Vec<(usize, usize)> {
        let mut totals = vec![(0usize, 0usize); self.stage_names.len()];
        for candidate in &self.candidates {
            for eval in &candidate.trail {
                if let Some(slot) = totals.get_mut(eval.stage) {
                    slot.0 += 1;
                }
            }
            let pruned_stage = match candidate.verdict {
                Verdict::Pruned { stage, .. } => Some(stage),
                Verdict::PrunedByRangePredicate { stage, .. } => Some(stage),
                Verdict::Refined { .. } | Verdict::RefineCutoff { .. } => None,
            };
            if let Some(stage) = pruned_stage {
                if let Some(slot) = totals.get_mut(stage) {
                    slot.1 += 1;
                }
            }
        }
        totals
    }

    /// Checks the telescoping invariant against `stats`; returns the
    /// first mismatch as `(stage, from_verdicts, from_stats)` if any.
    #[allow(clippy::type_complexity)]
    pub fn check_consistency(&self) -> Result<(), (usize, (usize, usize), (usize, usize))> {
        for (stage, (totals, stats)) in self
            .stage_totals()
            .iter()
            .zip(&self.stats.stages)
            .enumerate()
        {
            let from_stats = (stats.evaluated, stats.pruned);
            if *totals != from_stats {
                return Err((stage, *totals, from_stats));
            }
        }
        Ok(())
    }

    /// Renders the report with at most `limit` candidate rows (the
    /// summary and stage totals always cover every candidate).
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain {} {}={} over {} trees: {} results, {} refined",
            self.kind,
            if self.kind == "knn" { "k" } else { "tau" },
            self.param,
            self.stats.dataset_size,
            self.stats.results,
            self.stats.refined,
        );
        if self.trace_id != 0 {
            let _ = writeln!(out, "trace: {} (span tree in /trace.json)", self.trace_id);
        }
        let totals = self.stage_totals();
        let _ = write!(out, "funnel:");
        for (name, (evaluated, pruned)) in self.stage_names.iter().zip(&totals) {
            let _ = write!(out, "  {name} {evaluated}/{pruned}");
        }
        let _ = writeln!(out, "  (stage evaluated/pruned)");

        let _ = write!(out, "{:>8}", "tree");
        for name in &self.stage_names {
            let _ = write!(out, "  {name:>8}");
        }
        let _ = writeln!(out, "  verdict");
        for candidate in self.candidates.iter().take(limit) {
            let _ = write!(out, "{:>8}", format!("#{}", candidate.tree.0));
            for stage in 0..self.stage_names.len() {
                let cell = candidate
                    .trail
                    .iter()
                    .find(|e| e.stage == stage)
                    .map_or("-".to_owned(), |e| {
                        e.bound.map_or("tau?".to_owned(), |b| b.to_string())
                    });
                let _ = write!(out, "  {cell:>8}");
            }
            let verdict = match candidate.verdict {
                Verdict::Pruned { stage, bound } => format!(
                    "pruned@{} (bound {bound})",
                    self.stage_names.get(stage).copied().unwrap_or("?")
                ),
                Verdict::PrunedByRangePredicate { stage, bound } => format!(
                    "pruned@{} (predicate; lb {bound})",
                    self.stage_names.get(stage).copied().unwrap_or("?")
                ),
                Verdict::Refined {
                    distance,
                    in_result,
                } => format!(
                    "refined d={distance} {}",
                    if in_result { "[hit]" } else { "[miss]" }
                ),
                Verdict::RefineCutoff { budget } => format!("refine cut off (d > {budget})"),
            };
            let _ = writeln!(out, "  {verdict}");
        }
        if self.candidates.len() > limit {
            let _ = writeln!(out, "... ({} more rows)", self.candidates.len() - limit);
        }
        out
    }
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(usize::MAX))
    }
}

/// The recording observer backing EXPLAIN replays. Collects each
/// candidate's trail and fate; [`ExplainObserver::into_candidates`]
/// finalizes them against the result set.
#[derive(Debug, Default)]
pub(crate) struct ExplainObserver {
    rows: BTreeMap<u32, (Vec<StageEval>, Option<Verdict>)>,
}

impl ExplainObserver {
    pub(crate) fn new() -> ExplainObserver {
        ExplainObserver::default()
    }

    fn row(&mut self, id: TreeId) -> &mut (Vec<StageEval>, Option<Verdict>) {
        self.rows.entry(id.0).or_default()
    }

    /// Finalizes the rows: stamps result membership into refined
    /// verdicts and resolves range-predicate bounds via `range_bound`
    /// (recomputed outside the replay so the replay's stats stay
    /// identical to a production run).
    pub(crate) fn into_candidates(
        self,
        results: &[Neighbor],
        mut range_bound: impl FnMut(TreeId) -> u64,
    ) -> Vec<CandidateExplain> {
        self.rows
            .into_iter()
            .map(|(raw, (trail, verdict))| {
                let tree = TreeId(raw);
                let verdict = match verdict {
                    Some(Verdict::Refined { distance, .. }) => Verdict::Refined {
                        distance,
                        in_result: results.iter().any(|n| n.tree == tree),
                    },
                    Some(Verdict::PrunedByRangePredicate { stage, .. }) => {
                        Verdict::PrunedByRangePredicate {
                            stage,
                            bound: range_bound(tree),
                        }
                    }
                    Some(v) => v,
                    // Unreachable in practice: every candidate the cores
                    // touch gets a verdict. Keep a conservative fallback.
                    None => Verdict::Pruned { stage: 0, bound: 0 },
                };
                CandidateExplain {
                    tree,
                    trail,
                    verdict,
                }
            })
            .collect()
    }
}

impl QueryObserver for ExplainObserver {
    fn on_stage_bound(&mut self, id: TreeId, stage: usize, bound: u64) {
        self.row(id).0.push(StageEval {
            stage,
            bound: Some(bound),
        });
    }

    fn on_pruned(&mut self, id: TreeId, stage: usize, bound: u64) {
        self.row(id).1 = Some(Verdict::Pruned { stage, bound });
    }

    fn on_range_checked(&mut self, id: TreeId, stage: usize) {
        self.row(id).0.push(StageEval { stage, bound: None });
    }

    fn on_range_pruned(&mut self, id: TreeId, stage: usize) {
        self.row(id).1 = Some(Verdict::PrunedByRangePredicate { stage, bound: 0 });
    }

    fn on_refined(&mut self, id: TreeId, distance: u64) {
        self.row(id).1 = Some(Verdict::Refined {
            distance,
            in_result: false,
        });
    }

    fn on_refine_cutoff(&mut self, id: TreeId, budget: u64) {
        self.row(id).1 = Some(Verdict::RefineCutoff { budget });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, NoFilter};
    use crate::SearchEngine;
    use treesim_tree::Forest;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
            "a(b(c(d)) b e f)",
            "q(r(s))",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    #[test]
    fn explain_knn_telescopes_and_matches_query() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for k in [1usize, 3, 7] {
                let report = engine.explain_knn(query, k);
                let (plain, plain_stats) = engine.knn(query, k);
                assert_eq!(report.results, plain);
                assert_eq!(report.stats.refined, plain_stats.refined);
                report.check_consistency().unwrap();
                // Every dataset tree has a row; hits are marked.
                assert_eq!(report.candidates.len(), forest.len());
                let hits = report
                    .candidates
                    .iter()
                    .filter(|c| {
                        matches!(
                            c.verdict,
                            Verdict::Refined {
                                in_result: true,
                                ..
                            }
                        )
                    })
                    .count();
                assert_eq!(hits, plain.len());
            }
        }
    }

    #[test]
    fn explain_range_telescopes_and_matches_query() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        for (_, query) in forest.iter() {
            for tau in 0..=4u32 {
                let report = engine.explain_range(query, tau);
                let (plain, _) = engine.range(query, tau);
                assert_eq!(report.results, plain);
                report.check_consistency().unwrap();
            }
        }
    }

    #[test]
    fn cutoff_verdicts_telescope_like_refined() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let mut saw_cutoff = false;
        for (_, query) in forest.iter() {
            for tau in 0..=2u32 {
                let report = engine.explain_range(query, tau);
                let (plain, plain_stats) = engine.range(query, tau);
                assert_eq!(report.results, plain);
                report.check_consistency().unwrap();
                let cutoffs = report
                    .candidates
                    .iter()
                    .filter(|c| matches!(c.verdict, Verdict::RefineCutoff { .. }))
                    .count();
                assert_eq!(cutoffs, plain_stats.refine_cutoffs);
                if cutoffs > 0 {
                    saw_cutoff = true;
                    let rendered = report.render(usize::MAX);
                    assert!(rendered.contains("refine cut off"));
                }
            }
        }
        assert!(saw_cutoff, "expected at least one refinement cutoff");
    }

    #[test]
    fn render_is_bounded_and_complete() {
        let forest = forest();
        let engine = SearchEngine::new(
            &forest,
            BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
        );
        let report = engine.explain_knn(forest.tree(treesim_tree::TreeId(0)), 2);
        let full = format!("{report}");
        assert!(full.contains("explain knn k=2"));
        assert!(full.contains("funnel:"));
        assert!(full.contains("size"));
        // Bounded rendering keeps the summary but truncates rows.
        let bounded = report.render(2);
        assert!(bounded.contains("more rows"));
        assert!(bounded.lines().count() < full.lines().count());
    }

    #[test]
    fn scan_baseline_explains_too() {
        let forest = forest();
        let engine = SearchEngine::new(&forest, NoFilter::build(&forest));
        let report = engine.explain_range(forest.tree(treesim_tree::TreeId(0)), 2);
        report.check_consistency().unwrap();
        assert_eq!(report.stage_names, vec!["scan"]);
    }
}
