//! Lower-bound filters pluggable into the filter-and-refine engine.
//!
//! A [`Filter`] precomputes per-tree artifacts at indexing time and, given a
//! query, produces a lower bound of the edit distance to any dataset tree.
//! Correctness contract: `lower_bound(query, t) ≤ EDist(query, t)` — the
//! engine's completeness (no false negatives) rests on it.

use treesim_core::{
    BranchVocab, DenseQuery, InvertedFileIndex, PositionalVector, QueryVocab, VectorArena,
};
use treesim_histogram::{BinBudget, HistogramVector};
use treesim_tree::{Forest, Tree, TreeId};

/// Publishes an arena's footprint gauges (`arena.trees`, `arena.entries`)
/// — refreshed whenever a filter (re)builds its CSR arena.
pub(crate) fn publish_arena_gauges(arena: &VectorArena) {
    treesim_obs::gauge!("arena.trees").set(arena.len() as i64);
    treesim_obs::gauge!("arena.entries").set(arena.entry_count() as i64);
}

/// A lower-bound filter over an indexed dataset.
pub trait Filter {
    /// Per-query artifact (typically the query's vector under the dataset
    /// vocabulary).
    type Query;

    /// Human-readable name for reports ("BiBranch", "Histo", …).
    fn name(&self) -> &'static str;

    /// Vectorizes a query tree.
    fn prepare_query(&self, query: &Tree) -> Self::Query;

    /// A lower bound on `EDist(query, candidate)`.
    fn lower_bound(&self, query: &Self::Query, candidate: TreeId) -> u64;

    /// Number of cascade stages, coarsest (cheapest) first. Stage
    /// `stages() − 1` must compute [`Filter::lower_bound`]; earlier stages
    /// may be arbitrarily looser but must each be valid lower bounds of
    /// `EDist(query, candidate)` on their own — the engine prunes on any
    /// of them.
    fn stages(&self) -> usize {
        1
    }

    /// Short name of cascade stage `stage`, for per-stage reporting.
    fn stage_name(&self, stage: usize) -> &'static str {
        debug_assert!(stage < self.stages());
        self.name()
    }

    /// The stage-`stage` lower bound on `EDist(query, candidate)`.
    ///
    /// Stages need not be pointwise monotone (a cheap stage may exceed a
    /// later one on some pairs); the engine keeps the running maximum,
    /// which is itself a valid lower bound.
    fn stage_bound(&self, query: &Self::Query, candidate: TreeId, stage: usize) -> u64 {
        debug_assert!(stage < self.stages());
        self.lower_bound(query, candidate)
    }

    /// Range-query pruning: `true` only if `EDist(query, candidate) > tau`
    /// is certain. The default tests the generic lower bound; filters with
    /// sharper range predicates (Proposition 4.2) override this.
    fn prunes_range(&self, query: &Self::Query, candidate: TreeId, tau: u32) -> bool {
        self.lower_bound(query, candidate) > u64::from(tau)
    }

    /// Appends `stage_bound(query, id, stage)` for every id in
    /// `candidates` (in order) to `out`.
    ///
    /// `candidates` must be ascending by tree id — the engine's bulk
    /// sweeps always are — so arena-backed filters can override this to
    /// walk their CSR slabs strictly sequentially (and, for the postings
    /// stage, replace per-candidate binary searches with one merged walk).
    /// Results are exactly the per-candidate bounds in the same order;
    /// overrides count their batched evaluations in
    /// `cascade.batch.evaluated`.
    fn stage_bound_batch(
        &self,
        query: &Self::Query,
        candidates: &[TreeId],
        stage: usize,
        out: &mut Vec<u64>,
    ) {
        debug_assert!(candidates.windows(2).all(|w| matches!(w, [a, b] if a < b)));
        out.extend(
            candidates
                .iter()
                .map(|&id| self.stage_bound(query, id, stage)),
        );
    }
}

/// How the binary branch filter derives its bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BiBranchMode {
    /// `⌈BDist/(4(q−1)+1)⌉` — counts only (§3).
    Plain,
    /// The positional optimistic bound `propt` of §4.2 (tighter, slightly
    /// more expensive).
    #[default]
    Positional,
}

/// The paper's filter: binary branch vectors with optional positional
/// tightening. The counts-only data additionally lives in a CSR
/// [`VectorArena`], which the `size`/`bdist` stages read — batched
/// candidate sweeps then touch one contiguous slab in tree-id order.
#[derive(Debug)]
pub struct BiBranchFilter {
    vocab: BranchVocab,
    vectors: Vec<PositionalVector>,
    arena: VectorArena,
    mode: BiBranchMode,
}

/// Per-query artifact of [`BiBranchFilter`]: the query's positional vector
/// plus its counts scattered into a dense lookup for the arena kernels.
#[derive(Debug)]
pub struct BiBranchQuery {
    vector: PositionalVector,
    dense: DenseQuery,
}

impl BiBranchQuery {
    /// The query's positional vector under the dataset vocabulary.
    pub fn vector(&self) -> &PositionalVector {
        &self.vector
    }
}

impl BiBranchFilter {
    /// Indexes `forest` with q-level branches via the inverted file index
    /// (Algorithm 1).
    pub fn build(forest: &Forest, q: usize, mode: BiBranchMode) -> Self {
        Self::from_index(&InvertedFileIndex::build(forest, q), mode)
    }

    /// Builds from an existing inverted file index.
    pub fn from_index(index: &InvertedFileIndex, mode: BiBranchMode) -> Self {
        let arena = VectorArena::from_index(index);
        publish_arena_gauges(&arena);
        BiBranchFilter {
            vocab: index.vocab().clone(),
            vectors: index.positional_vectors(),
            arena,
            mode,
        }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.vocab.q()
    }

    /// The dataset vector of `tree` (for inspection / experiments).
    pub fn vector(&self, tree: TreeId) -> &PositionalVector {
        &self.vectors[tree.index()]
    }

    /// The CSR arena backing the `size`/`bdist` stages.
    pub fn arena(&self) -> &VectorArena {
        &self.arena
    }

    /// The `bdist` stage bound through the arena's dense shared-mass
    /// kernel — bit-identical to the sparse merge (asserted under
    /// `strict-checks`), but reads only the candidate's contiguous slab
    /// run.
    fn bdist_bound(&self, query: &BiBranchQuery, candidate: TreeId) -> u64 {
        let bdist = self.arena.bdist(candidate.index() as u32, &query.dense);
        #[cfg(feature = "strict-checks")]
        debug_assert_eq!(
            bdist,
            query.vector.bdist(&self.vectors[candidate.index()]),
            "arena dense BDist diverged from the sparse merge for tree {candidate:?}"
        );
        treesim_core::edit_lower_bound(bdist, self.q())
    }
}

/// The `propt` bound with observability: records how many binary-search
/// iterations the §4.2 probe took into the `cascade.propt.iters`
/// histogram and into the flight recorder's per-query thread-local
/// accumulator. Shared by [`BiBranchFilter`] and the dynamic index so
/// every propt evaluation is counted the same way.
pub(crate) fn propt_bound(query: &PositionalVector, data: &PositionalVector) -> u64 {
    let (bound, iterations) = query.optimistic_bound_counted(data);
    treesim_obs::histogram!("cascade.propt.iters").record(u64::from(iterations));
    treesim_obs::recorder::propt_iters_add(u64::from(iterations));
    bound
}

impl Filter for BiBranchFilter {
    type Query = BiBranchQuery;

    fn name(&self) -> &'static str {
        match self.mode {
            BiBranchMode::Plain => "BiBranch(plain)",
            BiBranchMode::Positional => "BiBranch",
        }
    }

    fn prepare_query(&self, query: &Tree) -> BiBranchQuery {
        let mut query_vocab = QueryVocab::new(&self.vocab);
        let vector = PositionalVector::build_query(query, &mut query_vocab);
        let dense = DenseQuery::new(
            self.vocab.len(),
            vector.iter_counts(),
            u64::from(vector.tree_size()),
        );
        BiBranchQuery { vector, dense }
    }

    fn lower_bound(&self, query: &BiBranchQuery, candidate: TreeId) -> u64 {
        match self.mode {
            BiBranchMode::Plain => self.bdist_bound(query, candidate),
            BiBranchMode::Positional => {
                propt_bound(&query.vector, &self.vectors[candidate.index()])
            }
        }
    }

    /// Cascade: O(1) size difference, then `⌈BDist/(4(q−1)+1)⌉` (one
    /// sorted-entry merge), then — in positional mode — the `propt` binary
    /// search of §4.2, which only unpruned candidates reach.
    fn stages(&self) -> usize {
        match self.mode {
            BiBranchMode::Plain => 2,
            BiBranchMode::Positional => 3,
        }
    }

    fn stage_name(&self, stage: usize) -> &'static str {
        match stage {
            0 => "size",
            1 => "bdist",
            _ => "propt",
        }
    }

    fn stage_bound(&self, query: &BiBranchQuery, candidate: TreeId, stage: usize) -> u64 {
        match stage {
            0 => u64::from(
                query
                    .vector
                    .tree_size()
                    .abs_diff(self.arena.tree_size(candidate.index() as u32)),
            ),
            1 => self.bdist_bound(query, candidate),
            _ => propt_bound(&query.vector, &self.vectors[candidate.index()]),
        }
    }

    fn stage_bound_batch(
        &self,
        query: &BiBranchQuery,
        candidates: &[TreeId],
        stage: usize,
        out: &mut Vec<u64>,
    ) {
        debug_assert!(candidates.windows(2).all(|w| matches!(w, [a, b] if a < b)));
        match stage {
            // Both arena-backed stages walk the slabs in tree-id order —
            // candidates ascend, so memory is touched sequentially.
            0 => {
                let query_size = query.vector.tree_size();
                out.extend(candidates.iter().map(|&id| {
                    u64::from(query_size.abs_diff(self.arena.tree_size(id.index() as u32)))
                }));
            }
            1 => out.extend(candidates.iter().map(|&id| self.bdist_bound(query, id))),
            // propt stays per-candidate: its binary search touches the
            // sparse positional vectors, not the arena.
            _ => {
                out.extend(
                    candidates
                        .iter()
                        .map(|&id| self.stage_bound(query, id, stage)),
                );
                return;
            }
        }
        treesim_obs::counter!("cascade.batch.evaluated").add(candidates.len() as u64);
    }

    fn prunes_range(&self, query: &BiBranchQuery, candidate: TreeId, tau: u32) -> bool {
        match self.mode {
            BiBranchMode::Plain => self.bdist_bound(query, candidate) > u64::from(tau),
            BiBranchMode::Positional => query
                .vector
                .exceeds_range(&self.vectors[candidate.index()], tau),
        }
    }
}

/// The paper's space-matching bin budget (§5): the total histogram
/// dimensionality per tree equals the average binary branch vector size
/// plus twice the average tree size. Shared by [`HistogramFilter::build`]
/// and [`PostingsFilter::with_histogram`] so both price the histogram
/// stage identically.
fn paper_matched_budget(forest: &Forest) -> BinBudget {
    let stats = forest.stats();
    // Average number of nonzero branch-vector dimensions per tree.
    let mut vocab = treesim_core::BranchVocab::new(2);
    let total_dims: usize = forest
        .iter()
        .map(|(_, t)| treesim_core::BranchVector::build(t, &mut vocab).nonzero_dims())
        .sum();
    let avg_dims = total_dims as f64 / forest.len().max(1) as f64;
    BinBudget::paper_matched(avg_dims, stats.avg_size)
}

/// The default production filter: the positional cascade of
/// [`BiBranchFilter`] fronted by a **stage −1 inverted-list candidate
/// generator**. At query time the query's branch posting lists are k-way
/// merged ([`InvertedFileIndex::shared_branch_mass`]) into a sorted
/// per-tree shared-branch-mass table, from which stage 0 derives
///
/// ```text
/// BDist(q, t) ≥ |BRV(q)| + |BRV(t)| − 2·shared(q, t)
/// ```
///
/// without ever touching the candidate's vector (DESIGN §10). With
/// min-clamped shared mass the inequality is an *equality*, so the stage
/// is exactly as tight as the `bdist` stage at posting-merge cost, and
/// trees sharing no branch with the query are bounded from their stored
/// size alone. Out-of-vocabulary query branches have no posting list and
/// therefore contribute zero to `shared` — but their mass stays in
/// `|BRV(q)|`, which keeps the bound sound (the no-false-negative edge
/// case the `strict-checks` assertion pins down).
#[derive(Debug)]
pub struct PostingsFilter {
    index: InvertedFileIndex,
    vectors: Vec<PositionalVector>,
    arena: VectorArena,
    histograms: Option<(Vec<HistogramVector>, BinBudget)>,
}

/// Per-query artifact of [`PostingsFilter`]: the query vector plus the
/// merged posting table and the dense count lookup for the arena kernels.
#[derive(Debug)]
pub struct PostingsQuery {
    vector: PositionalVector,
    dense: DenseQuery,
    histogram: Option<HistogramVector>,
    /// `(tree, Σ_b min(count_q(b), count_t(b)))`, ascending by tree id;
    /// trees absent from every query posting list are absent here and
    /// share mass 0.
    shared: Vec<(TreeId, u64)>,
    /// `|BRV(q)|` — total query branch mass, OOV branches included.
    total: u64,
}

impl PostingsQuery {
    /// Number of trees sharing at least one branch with the query.
    pub fn candidate_count(&self) -> usize {
        self.shared.len()
    }
}

impl PostingsFilter {
    /// Indexes `forest` with q-level branches (Algorithm 1) and keeps the
    /// inverted file index for posting-list candidate generation.
    pub fn build(forest: &Forest, q: usize) -> Self {
        Self::from_index(InvertedFileIndex::build(forest, q))
    }

    /// Like [`PostingsFilter::build`], additionally wiring the label
    /// histogram bound in as a cascade stage between `size` and `bdist`
    /// (ROADMAP item #2; see EXPERIMENTS.md §histo for when it pays).
    pub fn with_histogram(forest: &Forest, q: usize) -> Self {
        let budget = paper_matched_budget(forest);
        let vectors = forest
            .iter()
            .map(|(_, tree)| HistogramVector::build_bucketed(tree, budget))
            .collect();
        PostingsFilter {
            histograms: Some((vectors, budget)),
            ..Self::build(forest, q)
        }
    }

    /// Builds from an existing inverted file index, taking ownership.
    pub fn from_index(index: InvertedFileIndex) -> Self {
        let arena = VectorArena::from_index(&index);
        publish_arena_gauges(&arena);
        PostingsFilter {
            vectors: index.positional_vectors(),
            arena,
            index,
            histograms: None,
        }
    }

    /// The branch level `q`.
    pub fn q(&self) -> usize {
        self.index.q()
    }

    /// Whether the histogram stage is part of the cascade.
    pub fn has_histogram(&self) -> bool {
        self.histograms.is_some()
    }

    /// The dataset vector of `tree` (for inspection / experiments).
    pub fn vector(&self, tree: TreeId) -> &PositionalVector {
        &self.vectors[tree.index()]
    }

    /// The CSR arena backing the `size`/`bdist` stages.
    pub fn arena(&self) -> &VectorArena {
        &self.arena
    }

    /// The `bdist` stage bound through the arena's dense shared-mass
    /// kernel (see [`BiBranchFilter`]'s equivalent).
    fn bdist_bound(&self, query: &PostingsQuery, candidate: TreeId) -> u64 {
        let bdist = self.arena.bdist(candidate.index() as u32, &query.dense);
        #[cfg(feature = "strict-checks")]
        debug_assert_eq!(
            bdist,
            query.vector.bdist(&self.vectors[candidate.index()]),
            "arena dense BDist diverged from the sparse merge for tree {candidate:?}"
        );
        treesim_core::edit_lower_bound(bdist, self.q())
    }

    /// The stage-0 bound: `|BRV(q)| + |BRV(t)| − 2·shared(q, t)` scaled to
    /// edit operations. O(log candidates) per tree — one binary search
    /// into the merged posting table.
    fn postings_bound(&self, query: &PostingsQuery, candidate: TreeId) -> u64 {
        let shared = match query
            .shared
            .binary_search_by_key(&candidate, |&(tree, _)| tree)
        {
            Ok(found) => query.shared[found].1,
            Err(_) => 0,
        };
        let bdist_floor = query.total + u64::from(self.index.tree_size(candidate)) - 2 * shared;
        #[cfg(feature = "strict-checks")]
        debug_assert!(
            bdist_floor <= query.vector.bdist(&self.vectors[candidate.index()]),
            "stage -1 bound {bdist_floor} above exact BDist {} for tree {candidate:?} \
             (OOV query mass must never enter shared)",
            query.vector.bdist(&self.vectors[candidate.index()]),
        );
        treesim_core::edit_lower_bound(bdist_floor, self.q())
    }
}

impl Filter for PostingsFilter {
    type Query = PostingsQuery;

    fn name(&self) -> &'static str {
        match self.histograms {
            Some(_) => "Postings+histo",
            None => "Postings",
        }
    }

    fn prepare_query(&self, query: &Tree) -> PostingsQuery {
        let mut query_vocab = QueryVocab::new(self.index.vocab());
        let vector = PositionalVector::build_query(query, &mut query_vocab);
        let counts: Vec<(treesim_core::BranchId, u32)> = vector.iter_counts().collect();
        let shared = self.index.shared_branch_mass(&counts);
        treesim_obs::histogram!("cascade.postings.candidates").record(shared.len() as u64);
        let total = u64::from(vector.tree_size());
        PostingsQuery {
            dense: DenseQuery::new(self.index.vocab().len(), counts, total),
            total,
            shared,
            histogram: self
                .histograms
                .as_ref()
                .map(|(_, budget)| HistogramVector::build_bucketed(query, *budget)),
            vector,
        }
    }

    fn lower_bound(&self, query: &PostingsQuery, candidate: TreeId) -> u64 {
        propt_bound(&query.vector, &self.vectors[candidate.index()])
    }

    /// Cascade: the posting-merge bound, the O(1) size screen, optionally
    /// the label histogram, then `⌈BDist/(4(q−1)+1)⌉` and the `propt`
    /// binary search of §4.2. (`postings` and `bdist` are pointwise equal
    /// under min-clamped shared mass; keeping both stages makes the funnel
    /// report how much of the pruning needed no per-candidate vector work.)
    fn stages(&self) -> usize {
        match self.histograms {
            Some(_) => 5,
            None => 4,
        }
    }

    fn stage_name(&self, stage: usize) -> &'static str {
        match (stage, self.histograms.is_some()) {
            (0, _) => "postings",
            (1, _) => "size",
            (2, true) => "histo",
            (2, false) | (3, true) => "bdist",
            _ => "propt",
        }
    }

    fn stage_bound(&self, query: &PostingsQuery, candidate: TreeId, stage: usize) -> u64 {
        match (stage, self.histograms.is_some()) {
            (0, _) => self.postings_bound(query, candidate),
            (1, _) => u64::from(
                query
                    .vector
                    .tree_size()
                    .abs_diff(self.arena.tree_size(candidate.index() as u32)),
            ),
            (2, true) => match (&self.histograms, &query.histogram) {
                (Some((vectors, _)), Some(histogram)) => {
                    histogram.lower_bound(&vectors[candidate.index()])
                }
                _ => unreachable!("histo stage without histograms"),
            },
            (2, false) | (3, true) => self.bdist_bound(query, candidate),
            _ => propt_bound(&query.vector, &self.vectors[candidate.index()]),
        }
    }

    fn stage_bound_batch(
        &self,
        query: &PostingsQuery,
        candidates: &[TreeId],
        stage: usize,
        out: &mut Vec<u64>,
    ) {
        debug_assert!(candidates.windows(2).all(|w| matches!(w, [a, b] if a < b)));
        #[cfg(feature = "strict-checks")]
        let check_from = out.len();
        match (stage, self.histograms.is_some()) {
            // Stage −1 batched: candidates and the merged posting table
            // both ascend by tree id, so one forward walk over `shared`
            // replaces the per-candidate binary searches.
            (0, _) => {
                let mut table = query.shared.iter().peekable();
                out.extend(candidates.iter().map(|&id| {
                    while table.peek().is_some_and(|&&(tree, _)| tree < id) {
                        table.next();
                    }
                    let shared = match table.peek() {
                        Some(&&(tree, mass)) if tree == id => mass,
                        _ => 0,
                    };
                    let floor = query.total + u64::from(self.arena.tree_size(id.index() as u32))
                        - 2 * shared;
                    treesim_core::edit_lower_bound(floor, self.q())
                }));
            }
            (1, _) => {
                let query_size = query.vector.tree_size();
                out.extend(candidates.iter().map(|&id| {
                    u64::from(query_size.abs_diff(self.arena.tree_size(id.index() as u32)))
                }));
            }
            (2, false) | (3, true) => {
                out.extend(candidates.iter().map(|&id| self.bdist_bound(query, id)));
            }
            // histo / propt stay per-candidate.
            _ => {
                out.extend(
                    candidates
                        .iter()
                        .map(|&id| self.stage_bound(query, id, stage)),
                );
                return;
            }
        }
        #[cfg(feature = "strict-checks")]
        debug_assert!(
            candidates
                .iter()
                .zip(out.iter().skip(check_from))
                .all(|(&id, &bound)| bound == self.stage_bound(query, id, stage)),
            "batched stage-{stage} bounds diverged from the per-candidate path"
        );
        treesim_obs::counter!("cascade.batch.evaluated").add(candidates.len() as u64);
    }

    fn prunes_range(&self, query: &PostingsQuery, candidate: TreeId, tau: u32) -> bool {
        if let (Some((vectors, _)), Some(histogram)) = (&self.histograms, &query.histogram) {
            if histogram.lower_bound(&vectors[candidate.index()]) > u64::from(tau) {
                return true;
            }
        }
        query
            .vector
            .exceeds_range(&self.vectors[candidate.index()], tau)
    }
}

/// The baseline histogram filter (Kailing et al., reference \[7\]).
#[derive(Debug)]
pub struct HistogramFilter {
    vectors: Vec<HistogramVector>,
    budget: BinBudget,
}

impl HistogramFilter {
    /// Builds the histograms under the paper's space-matching rule (§5,
    /// `paper_matched_budget`). On small label universes this is
    /// effectively exact; on label-rich data it blurs the label histogram,
    /// as in the paper's evaluation.
    pub fn build(forest: &Forest) -> Self {
        Self::build_with_budget(forest, paper_matched_budget(forest))
    }

    /// Builds exact (unbucketed) histograms.
    pub fn build_exact(forest: &Forest) -> Self {
        Self::build_with_budget(forest, BinBudget::UNLIMITED)
    }

    /// Builds histograms under an explicit bin budget.
    pub fn build_with_budget(forest: &Forest, budget: BinBudget) -> Self {
        HistogramFilter {
            vectors: forest
                .iter()
                .map(|(_, tree)| HistogramVector::build_bucketed(tree, budget))
                .collect(),
            budget,
        }
    }

    /// The bin budget in effect.
    pub fn budget(&self) -> BinBudget {
        self.budget
    }

    /// The dataset histogram vector of `tree`.
    pub fn vector(&self, tree: TreeId) -> &HistogramVector {
        &self.vectors[tree.index()]
    }
}

impl Filter for HistogramFilter {
    type Query = HistogramVector;

    fn name(&self) -> &'static str {
        "Histo"
    }

    fn prepare_query(&self, query: &Tree) -> HistogramVector {
        HistogramVector::build_bucketed(query, self.budget)
    }

    fn lower_bound(&self, query: &HistogramVector, candidate: TreeId) -> u64 {
        query.lower_bound(&self.vectors[candidate.index()])
    }

    /// Cascade: O(1) size difference, then the full histogram bound.
    fn stages(&self) -> usize {
        2
    }

    fn stage_name(&self, stage: usize) -> &'static str {
        match stage {
            0 => "size",
            _ => "histo",
        }
    }

    fn stage_bound(&self, query: &HistogramVector, candidate: TreeId, stage: usize) -> u64 {
        let data = &self.vectors[candidate.index()];
        match stage {
            0 => u64::from(query.size.abs_diff(data.size)),
            _ => query.lower_bound(data),
        }
    }
}

/// The no-op filter: a lower bound of 0 everywhere, turning the engine into
/// the sequential-scan baseline.
#[derive(Debug, Default)]
pub struct NoFilter {
    size: usize,
}

impl NoFilter {
    /// Creates a no-op filter for a dataset of `forest.len()` trees.
    pub fn build(forest: &Forest) -> Self {
        NoFilter { size: forest.len() }
    }

    /// Number of trees covered.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }
}

impl Filter for NoFilter {
    type Query = ();

    fn name(&self) -> &'static str {
        "Sequential"
    }

    fn stage_name(&self, _stage: usize) -> &'static str {
        // The metric-name contract requires stage names from
        // `treesim_obs::naming::CASCADE_STAGES` (the default would leak
        // the display name "Sequential" into `cascade.*` metrics).
        "scan"
    }

    fn prepare_query(&self, _query: &Tree) {}

    fn lower_bound(&self, _query: &(), _candidate: TreeId) -> u64 {
        0
    }
}

/// Combines two filters by taking the larger lower bound — used for
/// ablations (e.g., BiBranch + Histogram stacking).
#[derive(Debug)]
pub struct MaxFilter<A, B> {
    /// First component.
    pub first: A,
    /// Second component.
    pub second: B,
}

impl<A: Filter, B: Filter> Filter for MaxFilter<A, B> {
    type Query = (A::Query, B::Query);

    fn name(&self) -> &'static str {
        "Max"
    }

    fn prepare_query(&self, query: &Tree) -> Self::Query {
        (
            self.first.prepare_query(query),
            self.second.prepare_query(query),
        )
    }

    fn lower_bound(&self, query: &Self::Query, candidate: TreeId) -> u64 {
        self.first
            .lower_bound(&query.0, candidate)
            .max(self.second.lower_bound(&query.1, candidate))
    }

    /// Components' cascades run aligned from the *end*, so the final stage
    /// is `max(first.lower_bound, second.lower_bound)` = `lower_bound` and
    /// the shorter cascade simply starts later.
    fn stages(&self) -> usize {
        self.first.stages().max(self.second.stages())
    }

    fn stage_name(&self, stage: usize) -> &'static str {
        // Attribute the stage to the longer cascade (ties: first).
        if self.first.stages() >= self.second.stages() {
            self.first.stage_name(stage)
        } else {
            self.second.stage_name(stage)
        }
    }

    fn stage_bound(&self, query: &Self::Query, candidate: TreeId, stage: usize) -> u64 {
        let total = self.stages();
        let mut bound = 0u64;
        let offset = total - self.first.stages();
        if stage >= offset {
            bound = bound.max(self.first.stage_bound(&query.0, candidate, stage - offset));
        }
        let offset = total - self.second.stages();
        if stage >= offset {
            bound = bound.max(self.second.stage_bound(&query.1, candidate, stage - offset));
        }
        bound
    }

    fn prunes_range(&self, query: &Self::Query, candidate: TreeId, tau: u32) -> bool {
        self.first.prunes_range(&query.0, candidate, tau)
            || self.second.prunes_range(&query.1, candidate, tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use treesim_edit::edit_distance;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn check_filter<F: Filter>(filter: &F, forest: &Forest) {
        assert!(filter.stages() >= 1);
        for (_, query_tree) in forest.iter() {
            let query = filter.prepare_query(query_tree);
            for (id, data_tree) in forest.iter() {
                let edist = edit_distance(query_tree, data_tree);
                let bound = filter.lower_bound(&query, id);
                assert!(
                    bound <= edist,
                    "{}: bound {bound} > EDist {edist}",
                    filter.name()
                );
                // Every cascade stage is a sound lower bound on its own,
                // and the final stage computes lower_bound exactly.
                for stage in 0..filter.stages() {
                    let staged = filter.stage_bound(&query, id, stage);
                    assert!(
                        staged <= edist,
                        "{} stage {stage} ({}): bound {staged} > EDist {edist}",
                        filter.name(),
                        filter.stage_name(stage),
                    );
                }
                assert_eq!(
                    filter.stage_bound(&query, id, filter.stages() - 1),
                    bound,
                    "{}: final stage must equal lower_bound",
                    filter.name()
                );
                for tau in 0..=4u32 {
                    if filter.prunes_range(&query, id, tau) {
                        assert!(edist > u64::from(tau), "{} pruned a result", filter.name());
                    }
                }
            }
        }
    }

    #[test]
    fn bibranch_positional_is_sound() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        assert_eq!(filter.name(), "BiBranch");
        assert_eq!(filter.q(), 2);
        check_filter(&filter, &forest);
    }

    #[test]
    fn bibranch_plain_is_sound() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Plain);
        assert_eq!(filter.name(), "BiBranch(plain)");
        check_filter(&filter, &forest);
    }

    #[test]
    fn bibranch_q3_is_sound() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 3, BiBranchMode::Positional);
        check_filter(&filter, &forest);
    }

    #[test]
    fn postings_filter_is_sound() {
        let forest = forest();
        let filter = PostingsFilter::build(&forest, 2);
        assert_eq!(filter.name(), "Postings");
        assert_eq!(filter.q(), 2);
        assert!(!filter.has_histogram());
        check_filter(&filter, &forest);
    }

    #[test]
    fn postings_with_histogram_is_sound() {
        let forest = forest();
        let filter = PostingsFilter::with_histogram(&forest, 2);
        assert_eq!(filter.name(), "Postings+histo");
        assert!(filter.has_histogram());
        check_filter(&filter, &forest);
    }

    #[test]
    fn postings_stage_equals_bdist_stage() {
        // With min-clamped shared mass the posting-merge identity
        // |BRV(q)| + |BRV(t)| − 2·Σ min(count_q, count_t) = BDist(q, t)
        // is exact, so stage −1 must be pointwise equal to the bdist stage
        // (which recomputes BDist from the candidate's vector).
        let forest = forest();
        let filter = PostingsFilter::build(&forest, 2);
        let bibranch = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        for (_, query_tree) in forest.iter() {
            let query = filter.prepare_query(query_tree);
            let bquery = bibranch.prepare_query(query_tree);
            for (id, _) in forest.iter() {
                assert_eq!(
                    filter.stage_bound(&query, id, 0),
                    bibranch.stage_bound(&bquery, id, 1),
                    "postings bound diverged from bdist for tree {id:?}"
                );
            }
        }
    }

    #[test]
    fn postings_oov_query_keeps_guarantee() {
        // A query whose branches are 100% out-of-vocabulary: the merged
        // posting table is empty, yet every stage bound must stay a sound
        // lower bound (the unmatched query mass is accounted via |BRV(q)|).
        let mut forest = forest();
        let query = {
            let mut interner = forest.interner().clone();
            let t = treesim_tree::parse::bracket::parse(&mut interner, "m(n(o) p q)").unwrap();
            *forest.interner_mut() = interner;
            t
        };
        let filter = PostingsFilter::build(&forest, 2);
        let artifact = filter.prepare_query(&query);
        assert_eq!(
            artifact.candidate_count(),
            0,
            "OOV query generated candidates"
        );
        for (id, data_tree) in forest.iter() {
            let edist = edit_distance(&query, data_tree);
            for stage in 0..filter.stages() {
                let bound = filter.stage_bound(&artifact, id, stage);
                assert!(
                    bound <= edist,
                    "stage {stage} bound {bound} > EDist {edist} on an OOV query"
                );
            }
        }
    }

    #[test]
    fn histogram_filter_is_sound() {
        let forest = forest();
        let filter = HistogramFilter::build(&forest);
        assert_eq!(filter.name(), "Histo");
        check_filter(&filter, &forest);
    }

    #[test]
    fn no_filter_never_prunes() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        assert_eq!(filter.len(), 5);
        assert!(!filter.is_empty());
        filter.prepare_query(forest.tree(TreeId(0)));
        let query = ();
        for (id, _) in forest.iter() {
            assert_eq!(filter.lower_bound(&query, id), 0);
            assert!(!filter.prunes_range(&query, id, 0));
        }
    }

    #[test]
    fn max_filter_dominates_components() {
        let forest = forest();
        let combined = MaxFilter {
            first: BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            second: HistogramFilter::build(&forest),
        };
        check_filter(&combined, &forest);
        let query_tree = forest.tree(TreeId(0));
        let query = combined.prepare_query(query_tree);
        for (id, _) in forest.iter() {
            let bound = combined.lower_bound(&query, id);
            assert!(bound >= combined.first.lower_bound(&query.0, id));
            assert!(bound >= combined.second.lower_bound(&query.1, id));
        }
    }

    #[test]
    fn positional_at_least_as_tight_as_plain() {
        let forest = forest();
        let positional = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        let plain = BiBranchFilter::build(&forest, 2, BiBranchMode::Plain);
        let query_tree = forest.tree(TreeId(3));
        let pq = positional.prepare_query(query_tree);
        let sq = plain.prepare_query(query_tree);
        for (id, _) in forest.iter() {
            assert!(positional.lower_bound(&pq, id) >= plain.lower_bound(&sq, id));
        }
    }

    #[test]
    fn cascade_shapes() {
        let forest = forest();
        let positional = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        assert_eq!(positional.stages(), 3);
        assert_eq!(
            (0..3).map(|s| positional.stage_name(s)).collect::<Vec<_>>(),
            vec!["size", "bdist", "propt"]
        );
        let plain = BiBranchFilter::build(&forest, 2, BiBranchMode::Plain);
        assert_eq!(plain.stages(), 2);
        assert_eq!(plain.stage_name(1), "bdist");
        let histogram = HistogramFilter::build(&forest);
        assert_eq!(histogram.stages(), 2);
        assert_eq!(histogram.stage_name(0), "size");
        let none = NoFilter::build(&forest);
        assert_eq!(none.stages(), 1);
        let stacked = MaxFilter {
            first: BiBranchFilter::build(&forest, 2, BiBranchMode::Positional),
            second: HistogramFilter::build(&forest),
        };
        assert_eq!(stacked.stages(), 3);
        assert_eq!(stacked.stage_name(2), "propt");
        let postings = PostingsFilter::build(&forest, 2);
        assert_eq!(postings.stages(), 4);
        assert_eq!(
            (0..4).map(|s| postings.stage_name(s)).collect::<Vec<_>>(),
            vec!["postings", "size", "bdist", "propt"]
        );
        let postings_histo = PostingsFilter::with_histogram(&forest, 2);
        assert_eq!(postings_histo.stages(), 5);
        assert_eq!(
            (0..5)
                .map(|s| postings_histo.stage_name(s))
                .collect::<Vec<_>>(),
            vec!["postings", "size", "histo", "bdist", "propt"]
        );
    }

    #[test]
    fn positional_cascade_is_monotone() {
        // For the positional bi-branch filter specifically, later stages
        // are pointwise at least as tight: propt ≥ ⌈BDist/5⌉ and
        // propt ≥ pr_min = size difference.
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        for (_, query_tree) in forest.iter() {
            let query = filter.prepare_query(query_tree);
            for (id, _) in forest.iter() {
                let size = filter.stage_bound(&query, id, 0);
                let bdist = filter.stage_bound(&query, id, 1);
                let propt = filter.stage_bound(&query, id, 2);
                assert!(propt >= size, "propt {propt} < size bound {size}");
                assert!(propt >= bdist, "propt {propt} < bdist bound {bdist}");
            }
        }
    }

    #[test]
    fn filter_vector_accessors() {
        let forest = forest();
        let bibranch = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        assert_eq!(bibranch.vector(TreeId(0)).tree_size(), 6);
        let histogram = HistogramFilter::build(&forest);
        assert_eq!(histogram.vector(TreeId(0)).size, 6);
    }
}
