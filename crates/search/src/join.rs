//! Approximate similarity join — one of the operations the paper's
//! introduction motivates (approximate join, data cleansing, integration).
//!
//! A τ-join reports every pair of trees within edit distance τ. The
//! filter-and-refine strategy applies per pair: the O(1) size bound, then
//! the filter's lower bound (Proposition 4.2 pruning for the binary branch
//! filter), and only then the refinement — which runs the *bounded*
//! Zhang–Shasha DP ([`treesim_edit::bounded_zhang_shasha`]) with the join
//! radius (or, for [`closest_pairs`], the running k-th pair distance) as
//! its budget, so pairs whose distance provably exceeds the threshold
//! abandon the DP early without changing any result.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use treesim_edit::{bounded_zhang_shasha, TreeInfo, UnitCost, ZsWorkspace};
use treesim_tree::{Forest, TreeId};

use crate::filter::Filter;

/// One join result: a pair of trees within the join radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPair {
    /// The pair. For self-joins, `left < right`. For cross-joins the pair
    /// keeps its (left-partition, right-partition) orientation — except
    /// that self-pairs (`l == r`) are never emitted, and when the
    /// partitions overlap so that *both* orientations of a pair qualify,
    /// only the `left < right` copy is reported.
    pub left: TreeId,
    /// Right partner.
    pub right: TreeId,
    /// Exact edit distance (≤ τ).
    pub distance: u64,
}

/// Counters describing the join's filtering effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Candidate pairs considered (after the trivial size pre-filter).
    pub pairs_considered: usize,
    /// Pairs surviving the filter (refinement DPs started).
    pub pairs_refined: usize,
    /// Pairs in the result.
    pub pairs_joined: usize,
    /// Refinements the bounded DP cut off at the live threshold without
    /// producing an exact distance (counted in `pairs_refined` too).
    pub pairs_cutoff: usize,
    /// DP cells the bounded refinement skipped across all pairs (band +
    /// subproblem pruning).
    pub cells_skipped: u64,
}

impl JoinStats {
    /// Fraction of considered pairs that needed refinement.
    pub fn refine_fraction(&self) -> f64 {
        if self.pairs_considered == 0 {
            0.0
        } else {
            self.pairs_refined as f64 / self.pairs_considered as f64
        }
    }

    /// Flushes the counters into the global `treesim-obs` registry under
    /// `prefix` (the join operations record as `"join"`), following the
    /// `treesim_obs::naming` grammar: `{prefix}.queries` counts join
    /// invocations, `{prefix}.pairs.{considered,refined,joined,cutoffs}`
    /// mirror the per-call fields, and `{prefix}.cells_skipped` totals the
    /// bounded-DP savings.
    pub fn record_into(&self, prefix: &str) {
        use treesim_obs::metrics::counter;
        counter(&format!("{prefix}.queries")).inc();
        counter(&format!("{prefix}.pairs.considered")).add(self.pairs_considered as u64);
        counter(&format!("{prefix}.pairs.refined")).add(self.pairs_refined as u64);
        counter(&format!("{prefix}.pairs.joined")).add(self.pairs_joined as u64);
        counter(&format!("{prefix}.pairs.cutoffs")).add(self.pairs_cutoff as u64);
        counter(&format!("{prefix}.cells_skipped")).add(self.cells_skipped);
    }
}

/// Memoizes `TreeInfo::new(forest.tree(id))` in `infos[id]`, so only
/// trees that actually reach a refinement pay artifact construction.
fn ensure_info(infos: &mut [Option<TreeInfo>], forest: &Forest, id: TreeId) {
    if infos[id.index()].is_none() {
        infos[id.index()] = Some(TreeInfo::new(forest.tree(id)));
    }
}

/// Similarity self-join: all unordered pairs `{i, j}` with
/// `EDist(Ti, Tj) ≤ tau`, reported with `left < right`.
///
/// # Examples
///
/// ```
/// use treesim_search::{similarity_self_join, BiBranchFilter, BiBranchMode};
/// use treesim_tree::Forest;
///
/// let mut forest = Forest::new();
/// forest.parse_bracket("a(b c)").unwrap();
/// forest.parse_bracket("a(b d)").unwrap(); // 1 edit away from the first
/// forest.parse_bracket("x(y z w)").unwrap();
///
/// let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
/// let (pairs, stats) = similarity_self_join(&forest, &filter, 1);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].distance, 1);
/// assert!(stats.pairs_refined <= stats.pairs_considered);
/// ```
pub fn similarity_self_join<F: Filter>(
    forest: &Forest,
    filter: &F,
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    // Trace before span (the span must close before the trace finalizes);
    // inert when an enclosing trace is already live.
    let _trace = treesim_obs::trace::start_trace();
    let _span = treesim_obs::span!("join.self", tau = tau, trees = forest.len());
    let ids: Vec<TreeId> = forest.iter().map(|(id, _)| id).collect();
    join_partitions(forest, filter, &ids, None, tau)
}

/// Similarity join between two id sets over the same forest (e.g., two
/// sources loaded into one label space for data integration):
/// all pairs `(l, r)` with `l ∈ left`, `r ∈ right`, `EDist ≤ tau`.
pub fn similarity_join<F: Filter>(
    forest: &Forest,
    filter: &F,
    left: &[TreeId],
    right: &[TreeId],
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    // Trace before span, as in `similarity_self_join`.
    let _trace = treesim_obs::trace::start_trace();
    let _span = treesim_obs::span!(
        "join.cross",
        tau = tau,
        left = left.len(),
        right = right.len()
    );
    join_partitions(forest, filter, left, Some(right), tau)
}

/// The `k` closest pairs of distinct trees (a top-k self-join): optimal
/// multi-step over pair lower bounds, refining in ascending-bound order and
/// stopping once no remaining pair can beat the current k-th distance.
///
/// The pair bounds are *heapified*, not fully sorted — only the pairs
/// actually popped before the stop condition pay ordering cost — and
/// [`TreeInfo`] artifacts are built lazily, only for trees that reach a
/// refinement. Each refinement runs the bounded DP with the running k-th
/// pair distance as its budget, so provably-worse pairs abandon early.
pub fn closest_pairs<F: Filter>(
    forest: &Forest,
    filter: &F,
    k: usize,
) -> (Vec<JoinPair>, JoinStats) {
    // Trace before span, as in `similarity_self_join`.
    let _trace = treesim_obs::trace::start_trace();
    let _span = treesim_obs::span!("join.closest", k = k, trees = forest.len());
    let mut stats = JoinStats::default();
    if k == 0 || forest.len() < 2 {
        stats.record_into("join");
        return (Vec::new(), stats);
    }
    let ids: Vec<TreeId> = forest.iter().map(|(id, _)| id).collect();
    // Pair lower bounds (each query artifact prepared once). `Reverse`
    // makes the max-heap pop in ascending (bound, l, r) order — the same
    // order the previous full sort visited, so results and refinement
    // counts are identical.
    let mut bounds: Vec<Reverse<(u64, TreeId, TreeId)>> = Vec::new();
    for (position, &l) in ids.iter().enumerate() {
        let query = filter.prepare_query(forest.tree(l));
        for &r in &ids[position + 1..] {
            bounds.push(Reverse((filter.lower_bound(&query, r), l, r)));
            stats.pairs_considered += 1;
        }
    }
    let mut frontier = BinaryHeap::from(bounds);

    let mut infos: Vec<Option<TreeInfo>> = (0..forest.len()).map(|_| None).collect();
    let mut workspace = ZsWorkspace::new();
    let mut heap: BinaryHeap<(u64, TreeId, TreeId)> = BinaryHeap::with_capacity(k + 1);
    while let Some(Reverse((bound, l, r))) = frontier.pop() {
        // The running k-th distance is both the optimal multi-step stop
        // condition and the refinement budget. Equal distances must still
        // refine exactly: a pair at `worst` can evict the incumbent on the
        // (distance, l, r) tie-break, and `bounded_zhang_shasha` returns
        // the exact distance whenever it is ≤ the budget.
        let budget = match heap.peek() {
            Some(&(worst, _, _)) if heap.len() == k => {
                if bound > worst {
                    break;
                }
                worst
            }
            _ => u64::MAX,
        };
        ensure_info(&mut infos, forest, l);
        ensure_info(&mut infos, forest, r);
        let (Some(info_l), Some(info_r)) = (infos[l.index()].as_ref(), infos[r.index()].as_ref())
        else {
            continue; // unreachable: both slots were just memoized
        };
        let (refined, bstats) =
            bounded_zhang_shasha(info_l, info_r, &UnitCost, budget, &mut workspace);
        stats.pairs_refined += 1;
        stats.cells_skipped += bstats.cells_skipped;
        #[cfg(feature = "strict-checks")]
        {
            let oracle = treesim_edit::zhang_shasha(info_l, info_r, &UnitCost, &mut workspace);
            match refined {
                Some(d) => debug_assert_eq!(d, oracle, "bounded DP disagrees with oracle"),
                None => debug_assert!(oracle > budget, "false dismissal: {oracle} <= {budget}"),
            }
        }
        match refined {
            Some(distance) => {
                heap.push((distance, l, r));
                if heap.len() > k {
                    heap.pop();
                }
            }
            None => stats.pairs_cutoff += 1,
        }
    }
    let mut results: Vec<JoinPair> = heap
        .into_iter()
        .map(|(distance, left, right)| JoinPair {
            left,
            right,
            distance,
        })
        .collect();
    results.sort_unstable_by_key(|p| (p.distance, p.left, p.right));
    stats.pairs_joined = results.len();
    stats.record_into("join");
    (results, stats)
}

fn join_partitions<F: Filter>(
    forest: &Forest,
    filter: &F,
    left: &[TreeId],
    right: Option<&[TreeId]>,
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    let sizes: Vec<u64> = forest.iter().map(|(_, t)| t.len() as u64).collect();
    let mut infos: Vec<Option<TreeInfo>> = (0..forest.len()).map(|_| None).collect();
    let mut workspace = ZsWorkspace::new();
    let mut stats = JoinStats::default();
    let mut results = Vec::new();

    // Overlapping cross-join partitions can present the same unordered
    // pair in both orientations; membership masks detect that case so the
    // mirrored copy is skipped before it is even counted.
    let membership: Option<(Vec<bool>, Vec<bool>)> = right.map(|right_ids| {
        let mut in_left = vec![false; forest.len()];
        for &id in left {
            in_left[id.index()] = true;
        }
        let mut in_right = vec![false; forest.len()];
        for &id in right_ids {
            in_right[id.index()] = true;
        }
        (in_left, in_right)
    });

    for (position, &l) in left.iter().enumerate() {
        let query = filter.prepare_query(forest.tree(l));
        // Self-join: only partners after `l` in the id list; cross-join:
        // the whole right side.
        let partners: &[TreeId] = match right {
            Some(r) => r,
            None => &left[position + 1..],
        };
        for &r in partners {
            if r == l {
                continue;
            }
            if let Some((in_left, in_right)) = &membership {
                // Both orientations of this pair qualify for emission;
                // keep only the `left < right` copy.
                if l > r && in_right[l.index()] && in_left[r.index()] {
                    continue;
                }
            }
            // Trivial size pre-filter (EDist ≥ | |T1|−|T2| |).
            if sizes[l.index()].abs_diff(sizes[r.index()]) > u64::from(tau) {
                continue;
            }
            stats.pairs_considered += 1;
            if filter.prunes_range(&query, r, tau) {
                continue;
            }
            stats.pairs_refined += 1;
            ensure_info(&mut infos, forest, l);
            ensure_info(&mut infos, forest, r);
            let (Some(info_l), Some(info_r)) =
                (infos[l.index()].as_ref(), infos[r.index()].as_ref())
            else {
                continue; // unreachable: both slots were just memoized
            };
            // The join radius is the refinement budget: `Some(d)` iff
            // `d ≤ τ`, so every completed refinement is a join result.
            let (refined, bstats) =
                bounded_zhang_shasha(info_l, info_r, &UnitCost, u64::from(tau), &mut workspace);
            stats.cells_skipped += bstats.cells_skipped;
            #[cfg(feature = "strict-checks")]
            {
                let oracle = treesim_edit::zhang_shasha(info_l, info_r, &UnitCost, &mut workspace);
                match refined {
                    Some(d) => debug_assert_eq!(d, oracle, "bounded DP disagrees with oracle"),
                    None => debug_assert!(
                        oracle > u64::from(tau),
                        "false dismissal: {oracle} <= {tau}"
                    ),
                }
            }
            match refined {
                Some(distance) => {
                    stats.pairs_joined += 1;
                    let (a, b) = if right.is_none() && r < l {
                        (r, l)
                    } else {
                        (l, r)
                    };
                    results.push(JoinPair {
                        left: a,
                        right: b,
                        distance,
                    });
                }
                None => stats.pairs_cutoff += 1,
            }
        }
    }
    results.sort_unstable_by_key(|p| (p.left, p.right));
    stats.record_into("join");
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, HistogramFilter, NoFilter};
    use treesim_edit::edit_distance;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b(c(d)) b e)", // duplicate of 0
            "x(y z)",
            "a(b c)",
            "a(b(c(d)) b e f)",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn brute_force_pairs(forest: &Forest, tau: u32) -> Vec<(TreeId, TreeId, u64)> {
        let mut out = Vec::new();
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if j <= i {
                    continue;
                }
                let d = edit_distance(t1, t2);
                if d <= u64::from(tau) {
                    out.push((i, j, d));
                }
            }
        }
        out
    }

    #[test]
    fn self_join_matches_brute_force() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        for tau in [0u32, 1, 2, 4] {
            let (pairs, stats) = similarity_self_join(&forest, &filter, tau);
            let expected = brute_force_pairs(&forest, tau);
            let got: Vec<(TreeId, TreeId, u64)> = pairs
                .iter()
                .map(|p| (p.left, p.right, p.distance))
                .collect();
            assert_eq!(got, expected, "τ={tau}");
            assert_eq!(stats.pairs_joined, expected.len());
            assert!(stats.pairs_refined <= stats.pairs_considered);
        }
    }

    #[test]
    fn zero_tau_finds_duplicates() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        let (pairs, _) = similarity_self_join(&forest, &filter, 0);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].left, pairs[0].right), (TreeId(0), TreeId(2)));
    }

    #[test]
    fn filter_reduces_refinements() {
        let forest = forest();
        let bibranch = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        let none = NoFilter::build(&forest);
        let (_, with_filter) = similarity_self_join(&forest, &bibranch, 1);
        let (_, without) = similarity_self_join(&forest, &none, 1);
        assert!(with_filter.pairs_refined < without.pairs_refined);
        assert_eq!(with_filter.pairs_joined, without.pairs_joined);
        assert!(with_filter.refine_fraction() <= 1.0);
    }

    #[test]
    fn cross_join_partitions() {
        let forest = forest();
        let filter = HistogramFilter::build(&forest);
        let left = [TreeId(0), TreeId(1)];
        let right = [TreeId(2), TreeId(3), TreeId(5)];
        let (pairs, _) = similarity_join(&forest, &filter, &left, &right, 2);
        // Verify against direct computation.
        for pair in &pairs {
            assert!(left.contains(&pair.left));
            assert!(right.contains(&pair.right));
            assert_eq!(
                pair.distance,
                edit_distance(forest.tree(pair.left), forest.tree(pair.right))
            );
            assert!(pair.distance <= 2);
        }
        // (0,2) duplicate pair at distance 0, (1,2)? EDist(1,2)=1, (0,5) d=1, (1,5) d=2.
        assert!(pairs
            .iter()
            .any(|p| p.left == TreeId(0) && p.right == TreeId(2) && p.distance == 0));
        assert!(pairs
            .iter()
            .any(|p| p.left == TreeId(0) && p.right == TreeId(5) && p.distance == 1));
    }

    #[test]
    fn empty_partitions() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        let (pairs, stats) = similarity_join(&forest, &filter, &[], &[TreeId(0)], 3);
        assert!(pairs.is_empty());
        assert_eq!(stats.pairs_considered, 0);
        assert_eq!(stats.refine_fraction(), 0.0);
    }

    #[test]
    fn overlapping_partitions_dedup_and_skip_self_pairs() {
        let forest = forest();
        let filter = HistogramFilter::build(&forest);
        let left = [TreeId(0), TreeId(1), TreeId(2)];
        let right = [TreeId(1), TreeId(2), TreeId(3), TreeId(0)];
        let (pairs, stats) = similarity_join(&forest, &filter, &left, &right, 4);
        // Never a self-pair, and each unordered pair appears exactly once.
        assert!(pairs.iter().all(|p| p.left != p.right));
        let mut unordered: Vec<(TreeId, TreeId)> = pairs
            .iter()
            .map(|p| (p.left.min(p.right), p.left.max(p.right)))
            .collect();
        let emitted = unordered.len();
        unordered.sort_unstable();
        unordered.dedup();
        assert_eq!(emitted, unordered.len(), "duplicate orientations emitted");
        // Pairs whose mirror also qualifies are reported `left < right`.
        for p in &pairs {
            if right.contains(&p.left) && left.contains(&p.right) {
                assert!(p.left < p.right);
            }
        }
        // The normalized result set matches brute force over all
        // qualifying unordered pairs.
        let mut expected: Vec<(TreeId, TreeId, u64)> = Vec::new();
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if j <= i {
                    continue;
                }
                let qualifies = (left.contains(&i) && right.contains(&j))
                    || (left.contains(&j) && right.contains(&i));
                if !qualifies {
                    continue;
                }
                let d = edit_distance(t1, t2);
                if d <= 4 {
                    expected.push((i, j, d));
                }
            }
        }
        expected.sort_unstable();
        let mut got: Vec<(TreeId, TreeId, u64)> = pairs
            .iter()
            .map(|p| (p.left.min(p.right), p.left.max(p.right), p.distance))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(stats.pairs_refined <= stats.pairs_considered);
    }

    #[test]
    fn join_counts_cutoffs_and_records_registry_counters() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        let queries_before = treesim_obs::metrics::counter("join.queries").get();
        let joined_before = treesim_obs::metrics::counter("join.pairs.joined").get();
        let cutoffs_before = treesim_obs::metrics::counter("join.pairs.cutoffs").get();
        let (pairs, stats) = similarity_self_join(&forest, &filter, 1);
        // NoFilter sends every size-compatible pair to refinement; at τ=1
        // most exceed the radius, so the bounded DP cuts them off — and a
        // completed refinement is always a join result (`Some(d)` ⇔ d ≤ τ).
        assert!(stats.pairs_cutoff > 0);
        assert_eq!(stats.pairs_refined, stats.pairs_joined + stats.pairs_cutoff);
        assert_eq!(stats.pairs_joined, pairs.len());
        assert_eq!(
            treesim_obs::metrics::counter("join.queries").get(),
            queries_before + 1
        );
        assert_eq!(
            treesim_obs::metrics::counter("join.pairs.joined").get(),
            joined_before + stats.pairs_joined as u64
        );
        assert_eq!(
            treesim_obs::metrics::counter("join.pairs.cutoffs").get(),
            cutoffs_before + stats.pairs_cutoff as u64
        );
    }

    #[test]
    fn closest_pairs_match_brute_force() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        // Brute-force all pair distances.
        let mut all: Vec<(u64, TreeId, TreeId)> = Vec::new();
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if j > i {
                    all.push((edit_distance(t1, t2), i, j));
                }
            }
        }
        all.sort_unstable();
        for k in [1usize, 3, 5, all.len()] {
            let (pairs, stats) = closest_pairs(&forest, &filter, k);
            // Exact tuples, not just distances: the lazy-artifact +
            // heapified-frontier implementation must reproduce the eager
            // sort's output bit for bit, ties included.
            let got: Vec<(u64, TreeId, TreeId)> = pairs
                .iter()
                .map(|p| (p.distance, p.left, p.right))
                .collect();
            let want: Vec<(u64, TreeId, TreeId)> = all.iter().take(k).copied().collect();
            assert_eq!(got, want, "k={k}");
            assert!(stats.pairs_refined <= stats.pairs_considered);
        }
    }

    #[test]
    fn closest_pairs_edge_cases() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        assert!(closest_pairs(&forest, &filter, 0).0.is_empty());
        let mut tiny = Forest::new();
        tiny.parse_bracket("a").unwrap();
        let tiny_filter = NoFilter::build(&tiny);
        assert!(closest_pairs(&tiny, &tiny_filter, 3).0.is_empty());
    }
}
