//! Approximate similarity join — one of the operations the paper's
//! introduction motivates (approximate join, data cleansing, integration).
//!
//! A τ-join reports every pair of trees within edit distance τ. The
//! filter-and-refine strategy applies per pair: the O(1) size bound, then
//! the filter's lower bound (Proposition 4.2 pruning for the binary branch
//! filter), and only then the Zhang–Shasha refinement.

use treesim_edit::{zhang_shasha, TreeInfo, UnitCost, ZsWorkspace};
use treesim_tree::{Forest, TreeId};

use crate::filter::Filter;

/// One join result: a pair of trees within the join radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPair {
    /// The pair (for self-joins, `left < right`).
    pub left: TreeId,
    /// Right partner.
    pub right: TreeId,
    /// Exact edit distance (≤ τ).
    pub distance: u64,
}

/// Counters describing the join's filtering effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Candidate pairs considered (after the trivial size pre-filter).
    pub pairs_considered: usize,
    /// Pairs surviving the filter (exact distances computed).
    pub pairs_refined: usize,
    /// Pairs in the result.
    pub pairs_joined: usize,
}

impl JoinStats {
    /// Fraction of considered pairs that needed refinement.
    pub fn refine_fraction(&self) -> f64 {
        if self.pairs_considered == 0 {
            0.0
        } else {
            self.pairs_refined as f64 / self.pairs_considered as f64
        }
    }
}

/// Similarity self-join: all unordered pairs `{i, j}` with
/// `EDist(Ti, Tj) ≤ tau`, reported with `left < right`.
///
/// # Examples
///
/// ```
/// use treesim_search::{similarity_self_join, BiBranchFilter, BiBranchMode};
/// use treesim_tree::Forest;
///
/// let mut forest = Forest::new();
/// forest.parse_bracket("a(b c)").unwrap();
/// forest.parse_bracket("a(b d)").unwrap(); // 1 edit away from the first
/// forest.parse_bracket("x(y z w)").unwrap();
///
/// let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
/// let (pairs, stats) = similarity_self_join(&forest, &filter, 1);
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].distance, 1);
/// assert!(stats.pairs_refined <= stats.pairs_considered);
/// ```
pub fn similarity_self_join<F: Filter>(
    forest: &Forest,
    filter: &F,
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    let ids: Vec<TreeId> = forest.iter().map(|(id, _)| id).collect();
    join_partitions(forest, filter, &ids, None, tau)
}

/// Similarity join between two id sets over the same forest (e.g., two
/// sources loaded into one label space for data integration):
/// all pairs `(l, r)` with `l ∈ left`, `r ∈ right`, `EDist ≤ tau`.
pub fn similarity_join<F: Filter>(
    forest: &Forest,
    filter: &F,
    left: &[TreeId],
    right: &[TreeId],
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    join_partitions(forest, filter, left, Some(right), tau)
}

/// The `k` closest pairs of distinct trees (a top-k self-join): optimal
/// multi-step over pair lower bounds, refining in ascending-bound order and
/// stopping once no remaining pair can beat the current k-th distance.
pub fn closest_pairs<F: Filter>(
    forest: &Forest,
    filter: &F,
    k: usize,
) -> (Vec<JoinPair>, JoinStats) {
    let mut stats = JoinStats::default();
    if k == 0 || forest.len() < 2 {
        return (Vec::new(), stats);
    }
    let ids: Vec<TreeId> = forest.iter().map(|(id, _)| id).collect();
    // Pair lower bounds (each query artifact prepared once).
    let mut bounds: Vec<(u64, TreeId, TreeId)> = Vec::new();
    for (position, &l) in ids.iter().enumerate() {
        let query = filter.prepare_query(forest.tree(l));
        for &r in &ids[position + 1..] {
            bounds.push((filter.lower_bound(&query, r), l, r));
            stats.pairs_considered += 1;
        }
    }
    bounds.sort_unstable();

    let infos: Vec<TreeInfo> = forest.iter().map(|(_, t)| TreeInfo::new(t)).collect();
    let mut workspace = ZsWorkspace::new();
    let mut heap: std::collections::BinaryHeap<(u64, TreeId, TreeId)> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for &(bound, l, r) in &bounds {
        if let Some(&(worst, _, _)) = heap.peek().filter(|_| heap.len() == k) {
            if bound > worst {
                break;
            }
        }
        let distance = zhang_shasha(
            &infos[l.index()],
            &infos[r.index()],
            &UnitCost,
            &mut workspace,
        );
        stats.pairs_refined += 1;
        heap.push((distance, l, r));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut results: Vec<JoinPair> = heap
        .into_iter()
        .map(|(distance, left, right)| JoinPair {
            left,
            right,
            distance,
        })
        .collect();
    results.sort_unstable_by_key(|p| (p.distance, p.left, p.right));
    stats.pairs_joined = results.len();
    (results, stats)
}

fn join_partitions<F: Filter>(
    forest: &Forest,
    filter: &F,
    left: &[TreeId],
    right: Option<&[TreeId]>,
    tau: u32,
) -> (Vec<JoinPair>, JoinStats) {
    let infos: Vec<TreeInfo> = forest.iter().map(|(_, t)| TreeInfo::new(t)).collect();
    let sizes: Vec<u64> = forest.iter().map(|(_, t)| t.len() as u64).collect();
    let mut workspace = ZsWorkspace::new();
    let mut stats = JoinStats::default();
    let mut results = Vec::new();

    for (position, &l) in left.iter().enumerate() {
        let query = filter.prepare_query(forest.tree(l));
        // Self-join: only partners after `l` in the id list; cross-join:
        // the whole right side.
        let partners: &[TreeId] = match right {
            Some(r) => r,
            None => &left[position + 1..],
        };
        for &r in partners {
            if r == l {
                continue;
            }
            // Trivial size pre-filter (EDist ≥ | |T1|−|T2| |).
            if sizes[l.index()].abs_diff(sizes[r.index()]) > u64::from(tau) {
                continue;
            }
            stats.pairs_considered += 1;
            if filter.prunes_range(&query, r, tau) {
                continue;
            }
            stats.pairs_refined += 1;
            let distance = zhang_shasha(
                &infos[l.index()],
                &infos[r.index()],
                &UnitCost,
                &mut workspace,
            );
            if distance <= u64::from(tau) {
                stats.pairs_joined += 1;
                let (a, b) = if right.is_none() && r < l {
                    (r, l)
                } else {
                    (l, r)
                };
                results.push(JoinPair {
                    left: a,
                    right: b,
                    distance,
                });
            }
        }
    }
    results.sort_unstable_by_key(|p| (p.left, p.right));
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{BiBranchFilter, BiBranchMode, HistogramFilter, NoFilter};
    use treesim_edit::edit_distance;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b(c(d)) b e)", // duplicate of 0
            "x(y z)",
            "a(b c)",
            "a(b(c(d)) b e f)",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn brute_force_pairs(forest: &Forest, tau: u32) -> Vec<(TreeId, TreeId, u64)> {
        let mut out = Vec::new();
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if j <= i {
                    continue;
                }
                let d = edit_distance(t1, t2);
                if d <= u64::from(tau) {
                    out.push((i, j, d));
                }
            }
        }
        out
    }

    #[test]
    fn self_join_matches_brute_force() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        for tau in [0u32, 1, 2, 4] {
            let (pairs, stats) = similarity_self_join(&forest, &filter, tau);
            let expected = brute_force_pairs(&forest, tau);
            let got: Vec<(TreeId, TreeId, u64)> = pairs
                .iter()
                .map(|p| (p.left, p.right, p.distance))
                .collect();
            assert_eq!(got, expected, "τ={tau}");
            assert_eq!(stats.pairs_joined, expected.len());
            assert!(stats.pairs_refined <= stats.pairs_considered);
        }
    }

    #[test]
    fn zero_tau_finds_duplicates() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        let (pairs, _) = similarity_self_join(&forest, &filter, 0);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].left, pairs[0].right), (TreeId(0), TreeId(2)));
    }

    #[test]
    fn filter_reduces_refinements() {
        let forest = forest();
        let bibranch = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        let none = NoFilter::build(&forest);
        let (_, with_filter) = similarity_self_join(&forest, &bibranch, 1);
        let (_, without) = similarity_self_join(&forest, &none, 1);
        assert!(with_filter.pairs_refined < without.pairs_refined);
        assert_eq!(with_filter.pairs_joined, without.pairs_joined);
        assert!(with_filter.refine_fraction() <= 1.0);
    }

    #[test]
    fn cross_join_partitions() {
        let forest = forest();
        let filter = HistogramFilter::build(&forest);
        let left = [TreeId(0), TreeId(1)];
        let right = [TreeId(2), TreeId(3), TreeId(5)];
        let (pairs, _) = similarity_join(&forest, &filter, &left, &right, 2);
        // Verify against direct computation.
        for pair in &pairs {
            assert!(left.contains(&pair.left));
            assert!(right.contains(&pair.right));
            assert_eq!(
                pair.distance,
                edit_distance(forest.tree(pair.left), forest.tree(pair.right))
            );
            assert!(pair.distance <= 2);
        }
        // (0,2) duplicate pair at distance 0, (1,2)? EDist(1,2)=1, (0,5) d=1, (1,5) d=2.
        assert!(pairs
            .iter()
            .any(|p| p.left == TreeId(0) && p.right == TreeId(2) && p.distance == 0));
        assert!(pairs
            .iter()
            .any(|p| p.left == TreeId(0) && p.right == TreeId(5) && p.distance == 1));
    }

    #[test]
    fn empty_partitions() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        let (pairs, stats) = similarity_join(&forest, &filter, &[], &[TreeId(0)], 3);
        assert!(pairs.is_empty());
        assert_eq!(stats.pairs_considered, 0);
        assert_eq!(stats.refine_fraction(), 0.0);
    }

    #[test]
    fn closest_pairs_match_brute_force() {
        let forest = forest();
        let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
        // Brute-force all pair distances.
        let mut all: Vec<(u64, TreeId, TreeId)> = Vec::new();
        for (i, t1) in forest.iter() {
            for (j, t2) in forest.iter() {
                if j > i {
                    all.push((edit_distance(t1, t2), i, j));
                }
            }
        }
        all.sort_unstable();
        for k in [1usize, 3, 5, all.len()] {
            let (pairs, stats) = closest_pairs(&forest, &filter, k);
            let got: Vec<u64> = pairs.iter().map(|p| p.distance).collect();
            let want: Vec<u64> = all.iter().take(k).map(|&(d, _, _)| d).collect();
            assert_eq!(got, want, "k={k}");
            assert!(stats.pairs_refined <= stats.pairs_considered);
        }
    }

    #[test]
    fn closest_pairs_edge_cases() {
        let forest = forest();
        let filter = NoFilter::build(&forest);
        assert!(closest_pairs(&forest, &filter, 0).0.is_empty());
        let mut tiny = Forest::new();
        tiny.parse_bracket("a").unwrap();
        let tiny_filter = NoFilter::build(&tiny);
        assert!(closest_pairs(&tiny, &tiny_filter, 3).0.is_empty());
    }
}
