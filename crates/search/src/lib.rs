//! Filter-and-refine similarity search over tree datasets.
//!
//! The engine ([`SearchEngine`]) runs k-NN (Algorithm 2: optimal multi-step
//! with sorted lower bounds and early termination) and range queries over a
//! [`treesim_tree::Forest`], refining candidates with the exact Zhang–Shasha
//! edit distance. Filters:
//!
//! * [`PostingsFilter`] — the positional cascade fronted by the
//!   inverted-list stage −1 candidate generator (the default);
//! * [`BiBranchFilter`] — the paper's binary branch lower bounds (plain or
//!   positional);
//! * [`HistogramFilter`] — the Kailing et al. baseline;
//! * [`NoFilter`] — the sequential-scan baseline;
//! * [`MaxFilter`] — pointwise maximum of two filters (ablations).
//!
//! [`ShardedEngine`] partitions the forest ([`ShardedForest::split`])
//! and answers each query on every shard concurrently, merging the
//! per-shard heaps into the identical result set.
//!
//! # Example
//!
//! ```
//! use treesim_search::{BiBranchFilter, BiBranchMode, SearchEngine};
//! use treesim_tree::Forest;
//!
//! let mut forest = Forest::new();
//! forest.parse_bracket("a(b(c(d)) b e)").unwrap();
//! forest.parse_bracket("a(c(d) b e)").unwrap();
//! forest.parse_bracket("x(y z)").unwrap();
//!
//! let filter = BiBranchFilter::build(&forest, 2, BiBranchMode::Positional);
//! let engine = SearchEngine::new(&forest, filter);
//! let (hits, stats) = engine.range(forest.tree(treesim_tree::TreeId(0)), 1);
//! assert_eq!(hits.len(), 2); // itself and the 1-edit neighbor
//! assert!(stats.refined <= forest.len());
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod cluster;
pub mod dynamic;
pub mod engine;
pub mod explain;
pub mod filter;
pub mod join;
pub mod ops;
pub mod sharded;
pub mod stats;
pub mod subtree;

pub use classify::KnnClassifier;
pub use cluster::{threshold_clusters, Clustering};
pub use dynamic::DynamicIndex;
pub use engine::{Neighbor, SearchEngine};
pub use explain::{CandidateExplain, ExplainReport, StageEval, Verdict};
pub use filter::{
    BiBranchFilter, BiBranchMode, BiBranchQuery, Filter, HistogramFilter, MaxFilter, NoFilter,
    PostingsFilter, PostingsQuery,
};
pub use join::{closest_pairs, similarity_join, similarity_self_join, JoinPair, JoinStats};
pub use sharded::{ShardedEngine, ShardedForest};
pub use stats::{AveragedStage, AveragedStats, LatencyBuckets, SearchStats, StageStats};
pub use subtree::{subtree_search, SubtreeMatch, SubtreeStats};
