//! The operation catalog: one label per user-facing query path, shared
//! between the engines' spans (`<op>` / `<op>.us`), the flight recorder,
//! and the SLO target table in `treesim_obs::slo` — the op-label plumbing
//! that keeps "what we measure" and "what we promise" the same set of
//! strings.
//!
//! Failures are counted here too: [`record_error`] bumps `<op>.errors`,
//! the counter the SLO engine's error-rate objectives divide by that op's
//! `<op>.us` sample count. The engines themselves return `Result`-free
//! values today, so errors are recorded at the driver layer (the CLI
//! commands) where failures actually surface.

use treesim_obs::metrics::{counter, Counter};

/// Every cataloged operation label, in SLO-table order. Each `<op>` has a
/// `<op>.us` latency histogram recorded by its span and an `<op>.errors`
/// counter recorded by [`record_error`].
pub const OPS: &[&str] = &[
    "engine.knn",
    "engine.range",
    "dynamic.knn",
    "dynamic.range",
    "classify.knn",
    "join.self",
    "cluster.run",
];

/// Whether `op` is a cataloged operation label.
pub fn is_known(op: &str) -> bool {
    OPS.contains(&op)
}

/// The `<op>.errors` counter for a cataloged op (`None` for labels
/// outside the catalog — callers should not mint error series for
/// unknown ops).
pub fn error_counter(op: &str) -> Option<&'static Counter> {
    is_known(op).then(|| counter(&format!("{op}.errors")))
}

/// Counts one failure against `op`'s error budget. Returns `false` (and
/// records nothing) when `op` is not in the catalog, so call sites can
/// surface the mismatch instead of silently inventing a series.
pub fn record_error(op: &str) -> bool {
    match error_counter(op) {
        Some(c) => {
            c.inc();
            true
        }
        None => false,
    }
}

/// Materializes every `<op>.errors` counter at zero, so scrapes and SLO
/// evaluations see complete series before the first failure. Called by
/// the CLI's `serve-metrics` on startup.
pub fn register() {
    for op in OPS {
        if let Some(c) = error_counter(op) {
            // Registration is the side effect; the value stays put.
            let _ = c.get();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_the_slo_target_table() {
        // Every SLO target points at a cataloged op and vice versa, so
        // the promise table cannot drift from the plumbing.
        for target in treesim_obs::slo::DEFAULT_TARGETS {
            assert!(is_known(target.op), "SLO target {} not in OPS", target.op);
        }
        for op in OPS {
            assert!(
                treesim_obs::slo::DEFAULT_TARGETS
                    .iter()
                    .any(|t| t.op == *op),
                "op {op} has no SLO target"
            );
        }
    }

    #[test]
    fn errors_are_counted_only_for_known_ops() {
        register();
        let before = treesim_obs::metrics::snapshot();
        assert!(record_error("engine.knn"));
        assert!(!record_error("engine.warp"));
        let after = treesim_obs::metrics::snapshot();
        assert_eq!(after.counter_delta(&before, "engine.knn.errors"), 1);
        assert_eq!(after.counter("engine.warp.errors"), None);
        // register() materialized the full catalog.
        for op in OPS {
            assert!(
                after.counter(&format!("{op}.errors")).is_some(),
                "{op}.errors missing"
            );
        }
    }
}
