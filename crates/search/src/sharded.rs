//! Sharded forest execution: partition the dataset into S shards, each
//! owning its own filter index (for [`PostingsFilter`], its own inverted
//! file index and postings stage), answer each query on every shard
//! concurrently via scoped worker threads, and merge the per-shard
//! answers.
//!
//! # Result equivalence
//!
//! Shards are **contiguous, ascending tree-id ranges** of the original
//! forest, so a shard-local id plus the shard's base offset is the
//! original [`TreeId`]. For k-NN every shard returns its own top-k
//! (computed by the same [`SearchEngine`] core as the single-engine
//! path); the global top-k is a subset of that union, and sorting the
//! union by `(distance, global id)` before truncating to `k` reproduces
//! the single-engine smallest-id tie-breaking exactly. Range queries
//! simply union the per-shard result sets. A proptest pins down that
//! `S = 1` and `S = 4` return identical results.
//!
//! # Observability
//!
//! Per-shard [`SearchStats`] merge by *summing* the funnels: each shard
//! runs the same cascade (stage names are asserted to match), so stage
//! `s`'s merged `evaluated`/`pruned` are the sums over shards and the
//! telescoping invariant (survivors of stage `s` = evaluated of stage
//! `s + 1`) survives the merge. Merged queries flush under the
//! `shard.knn.*` / `shard.range.*` metric prefixes, deposit
//! [`QueryKind::ShardedKnn`]/[`QueryKind::ShardedRange`] flight records,
//! and each worker runs under a `shard.worker` span with the
//! `shard.workers.active` gauge tracking live workers.
//!
//! [`PostingsFilter`]: crate::filter::PostingsFilter

use std::time::Instant;

use treesim_edit::UnitCost;
use treesim_obs::recorder::{self, QueryKind};
use treesim_tree::{Forest, Tree, TreeId};

use crate::engine::{emit_record, Neighbor, QueryObserver, SearchEngine};
use crate::explain::{ExplainObserver, ExplainReport};
use crate::filter::Filter;
use crate::stats::SearchStats;

/// A forest partitioned into contiguous shards, each a self-contained
/// [`Forest`] sharing the original label interner.
#[derive(Debug)]
pub struct ShardedForest {
    shards: Vec<Forest>,
    /// `bases[s]` is the original id of shard `s`'s first tree.
    bases: Vec<u32>,
    total: usize,
}

impl ShardedForest {
    /// Splits `forest` into (up to) `shard_count` contiguous shards of
    /// near-equal size. The count is clamped to `[1, forest.len()]` (an
    /// empty forest yields one empty shard so engines can still be
    /// built).
    pub fn split(forest: &Forest, shard_count: usize) -> Self {
        let shard_count = shard_count.clamp(1, forest.len().max(1));
        let chunk = forest.len().div_ceil(shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut bases = Vec::with_capacity(shard_count);
        let mut base = 0u32;
        let trees: Vec<&Tree> = forest.iter().map(|(_, tree)| tree).collect();
        for chunk_trees in trees.chunks(chunk) {
            let mut shard = Forest::new();
            *shard.interner_mut() = forest.interner().clone();
            for tree in chunk_trees {
                shard.push((*tree).clone());
            }
            bases.push(base);
            base += chunk_trees.len() as u32;
            shards.push(shard);
        }
        if shards.is_empty() {
            let mut shard = Forest::new();
            *shard.interner_mut() = forest.interner().clone();
            shards.push(shard);
            bases.push(0);
        }
        ShardedForest {
            shards,
            bases,
            total: forest.len(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total trees across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the (whole) forest is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The shard forests, in ascending id order.
    pub fn shards(&self) -> &[Forest] {
        &self.shards
    }

    /// Maps a shard-local id back to the original forest's id.
    pub fn global_id(&self, shard: usize, local: TreeId) -> TreeId {
        TreeId(self.bases[shard] + local.0)
    }
}

/// A search engine running one [`SearchEngine`] per shard on scoped
/// worker threads and merging the per-shard answers. Results are
/// bit-identical to a single engine over the unsplit forest with the
/// same filter (see the module docs for why).
pub struct ShardedEngine<'a, F: Filter> {
    engines: Vec<SearchEngine<'a, F, UnitCost>>,
    bases: Vec<u32>,
    total: usize,
}

impl<'a, F: Filter + Send + Sync> ShardedEngine<'a, F> {
    /// Builds one engine per shard, constructing each shard's filter
    /// index with `build` (e.g. `|shard| PostingsFilter::build(shard, 2)`)
    /// on its own scoped thread.
    pub fn new(forest: &'a ShardedForest, build: impl Fn(&Forest) -> F + Sync) -> Self {
        treesim_obs::gauge!("shard.count").set(forest.shard_count() as i64);
        let engines: Vec<SearchEngine<'a, F, UnitCost>> = std::thread::scope(|scope| {
            let build = &build;
            let handles: Vec<_> = forest
                .shards()
                .iter()
                .map(|shard| scope.spawn(move || SearchEngine::new(shard, build(shard))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard build thread panicked"))
                .collect()
        });
        ShardedEngine {
            engines,
            bases: forest.bases.clone(),
            total: forest.len(),
        }
    }

    /// Number of shards (= worker threads per query).
    pub fn shard_count(&self) -> usize {
        self.engines.len()
    }

    /// Total trees across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the sharded dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The per-shard engines, in ascending id order.
    pub fn engines(&self) -> &[SearchEngine<'a, F, UnitCost>] {
        &self.engines
    }

    /// k-nearest neighbors over all shards; same contract as
    /// [`SearchEngine::knn`] on the unsplit forest.
    pub fn knn(&self, query: &Tree, k: usize) -> (Vec<Neighbor>, SearchStats) {
        let (results, stats, _) = self.knn_merged(query, k, || ());
        (results, stats)
    }

    /// Range query over all shards; same contract as
    /// [`SearchEngine::range`] on the unsplit forest.
    pub fn range(&self, query: &Tree, tau: u32) -> (Vec<Neighbor>, SearchStats) {
        let (results, stats, _) = self.range_merged(query, tau, || ());
        (results, stats)
    }

    /// EXPLAIN for a sharded k-NN query: replays every shard's core with
    /// a recording observer and stitches the per-shard candidate rows
    /// (remapped to global ids) into one report whose verdicts telescope
    /// to the merged stats funnel.
    pub fn explain_knn(&self, query: &Tree, k: usize) -> ExplainReport {
        // Own the trace so its id is still current when the report is
        // assembled (the replay's own start is then inert).
        let trace = treesim_obs::trace::start_trace();
        let trace_id = trace.id();
        let (results, stats, observers) = self.knn_merged(query, k, ExplainObserver::new);
        let candidates = self.merge_candidates(observers, &results, |_, _| 0);
        ExplainReport {
            kind: "knn",
            param: k as u64,
            stats,
            results,
            stage_names: self.stage_names(),
            candidates,
            trace_id,
        }
    }

    /// EXPLAIN for a sharded range query; see
    /// [`ShardedEngine::explain_knn`] and
    /// [`SearchEngine::explain_range`] for the range-predicate bound
    /// recomputation.
    pub fn explain_range(&self, query: &Tree, tau: u32) -> ExplainReport {
        // Trace ownership as in `explain_knn`.
        let trace = treesim_obs::trace::start_trace();
        let trace_id = trace.id();
        let (results, stats, observers) = self.range_merged(query, tau, ExplainObserver::new);
        // Recompute final-stage bounds for predicate-pruned rows, per
        // shard (display only — the replay stats are already final). The
        // engines are unit-cost, so no bound scaling applies.
        let artifacts: Vec<F::Query> = self
            .engines
            .iter()
            .map(|engine| engine.filter().prepare_query(query))
            .collect();
        let last_stage = self.stages() - 1;
        let candidates = self.merge_candidates(observers, &results, |shard, local| {
            self.engines[shard]
                .filter()
                .stage_bound(&artifacts[shard], local, last_stage)
        });
        ExplainReport {
            kind: "range",
            param: u64::from(tau),
            stats,
            results,
            stage_names: self.stage_names(),
            candidates,
            trace_id,
        }
    }

    /// Runs `run` once per shard on scoped worker threads, pairing each
    /// shard's return value with the `propt` iteration count its worker
    /// accumulated (the thread-local accumulator is cleared on entry, so
    /// the count is exactly this query's).
    fn run_shards<R, Run>(&self, run: Run) -> Vec<(R, u64)>
    where
        R: Send,
        Run: Fn(&SearchEngine<'a, F, UnitCost>) -> R + Sync,
    {
        let active = treesim_obs::gauge!("shard.workers.active");
        // Carry the caller's trace (started in `knn_merged`/`range_merged`)
        // onto the shard workers: each worker's spans land under the query
        // span with the 1-based shard index as the Chrome-trace `pid`.
        let trace_handle = treesim_obs::trace::current_handle();
        std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = self
                .engines
                .iter()
                .enumerate()
                .map(|(worker, engine)| {
                    let trace_handle = trace_handle.clone();
                    scope.spawn(move || {
                        let _trace = trace_handle.map(|h| h.install(worker as u32 + 1, 0));
                        let _span = treesim_obs::span!(
                            "shard.worker",
                            worker = worker,
                            trees = engine.forest().len()
                        );
                        active.add(1);
                        recorder::propt_iters_take(); // fresh per-worker accumulator
                        let out = run(engine);
                        let iters = recorder::propt_iters_take();
                        active.sub(1);
                        (out, iters)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker thread panicked"))
                .collect()
        })
    }

    /// The shared k-NN pipeline: fan out, merge results and stats, emit.
    /// Returns the per-shard observers (in shard order) for EXPLAIN.
    fn knn_merged<O>(
        &self,
        query: &Tree,
        k: usize,
        make: impl Fn() -> O + Sync,
    ) -> (Vec<Neighbor>, SearchStats, Vec<O>)
    where
        O: QueryObserver + Send,
    {
        // Trace before span: the `shard.knn` span (and the worker spans
        // under it) must deposit before the guard finalizes the tree.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!(
            "shard.knn",
            k = k,
            shards = self.engines.len(),
            dataset = self.total
        );
        let wall_start = Instant::now();
        let per_shard = self.run_shards(|engine| {
            let mut observer = make();
            let (results, stats, zs_nodes) = engine.knn_core(query, k, &mut observer);
            (results, stats, zs_nodes, observer)
        });
        let merge_span = treesim_obs::trace::span("shard.merge");
        let (mut results, stats, zs_nodes, observers) = self.merge(per_shard);
        // Each shard returned its own top-k; sorting the union by
        // (distance, global id) and truncating reproduces the
        // single-engine tie-breaking because shard id ranges are
        // contiguous and ascending.
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        results.truncate(k);
        drop(merge_span);
        let mut stats = stats;
        stats.results = results.len();
        stats.record_metrics("shard.knn");
        emit_record(
            QueryKind::ShardedKnn,
            k as u64,
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats, observers)
    }

    /// The shared range pipeline, mirroring [`ShardedEngine::knn_merged`].
    fn range_merged<O>(
        &self,
        query: &Tree,
        tau: u32,
        make: impl Fn() -> O + Sync,
    ) -> (Vec<Neighbor>, SearchStats, Vec<O>)
    where
        O: QueryObserver + Send,
    {
        // Trace before span, as in `knn_merged`.
        let _trace = treesim_obs::trace::start_trace();
        let _span = treesim_obs::span!(
            "shard.range",
            tau = tau,
            shards = self.engines.len(),
            dataset = self.total
        );
        let wall_start = Instant::now();
        let per_shard = self.run_shards(|engine| {
            let mut observer = make();
            let (results, stats, zs_nodes) = engine.range_core(query, tau, &mut observer);
            (results, stats, zs_nodes, observer)
        });
        let merge_span = treesim_obs::trace::span("shard.merge");
        let (mut results, stats, zs_nodes, observers) = self.merge(per_shard);
        results.sort_unstable_by_key(|n| (n.distance, n.tree));
        drop(merge_span);
        let mut stats = stats;
        stats.results = results.len();
        stats.record_metrics("shard.range");
        emit_record(
            QueryKind::ShardedRange,
            u64::from(tau),
            &stats,
            &results,
            zs_nodes,
            wall_start.elapsed(),
        );
        (results, stats, observers)
    }

    /// Merges per-shard outputs: remaps neighbor ids to global, sums the
    /// stats funnels (shards run identical cascades, so the telescoping
    /// invariant survives the sum), totals the refinement volume, and
    /// re-deposits the summed `propt` iteration count into this thread's
    /// accumulator so `emit_record` picks it up.
    ///
    /// [`SearchStats::accumulate`] is deliberately *not* used here: it
    /// models many queries against one dataset, whereas this is one query
    /// against many dataset *partitions* (different per-shard
    /// `dataset_size`s, and `results` must come from the merged set).
    #[allow(clippy::type_complexity)]
    fn merge<O>(
        &self,
        per_shard: Vec<((Vec<Neighbor>, SearchStats, u64, O), u64)>,
    ) -> (Vec<Neighbor>, SearchStats, u64, Vec<O>) {
        let mut stats = SearchStats {
            dataset_size: self.total,
            threads: self.engines.len().max(1),
            ..Default::default()
        };
        let mut results = Vec::new();
        let mut zs_total = 0u64;
        let mut propt_total = 0u64;
        let mut observers = Vec::with_capacity(per_shard.len());
        for (shard, ((shard_results, shard_stats, zs_nodes, observer), propt_iters)) in
            per_shard.into_iter().enumerate()
        {
            let base = self.bases[shard];
            results.extend(shard_results.into_iter().map(|n| Neighbor {
                tree: TreeId(base + n.tree.0),
                distance: n.distance,
            }));
            stats.refined += shard_stats.refined;
            stats.refine_cutoffs += shard_stats.refine_cutoffs;
            stats.refine_bands_skipped += shard_stats.refine_bands_skipped;
            stats.filter_time += shard_stats.filter_time;
            stats.refine_time += shard_stats.refine_time;
            if stats.stages.is_empty() {
                stats.stages = shard_stats.stages;
            } else {
                assert_eq!(
                    stats.stages.len(),
                    shard_stats.stages.len(),
                    "shards ran different cascades"
                );
                for (mine, theirs) in stats.stages.iter_mut().zip(&shard_stats.stages) {
                    assert_eq!(mine.name, theirs.name, "shard cascade stage order diverged");
                    mine.evaluated += theirs.evaluated;
                    mine.pruned += theirs.pruned;
                    mine.time += theirs.time;
                }
            }
            zs_total += zs_nodes;
            propt_total += propt_iters;
            observers.push(observer);
        }
        recorder::propt_iters_take(); // drop the merger thread's stale state
        recorder::propt_iters_add(propt_total);
        (results, stats, zs_total, observers)
    }

    /// Stitches per-shard EXPLAIN rows into one globally-id'd candidate
    /// list. `range_bound(shard, local_id)` resolves predicate-pruned
    /// bounds (pass a constant for k-NN reports, which have none).
    fn merge_candidates(
        &self,
        observers: Vec<ExplainObserver>,
        results: &[Neighbor],
        range_bound: impl Fn(usize, TreeId) -> u64,
    ) -> Vec<crate::explain::CandidateExplain> {
        let mut candidates = Vec::new();
        for (shard, observer) in observers.into_iter().enumerate() {
            let base = self.bases[shard];
            let shard_len = self.engines[shard].forest().len() as u32;
            // Result membership is judged against the *merged* result
            // set, localized to this shard's id range.
            let local_results: Vec<Neighbor> = results
                .iter()
                .filter(|n| n.tree.0 >= base && n.tree.0 < base + shard_len)
                .map(|n| Neighbor {
                    tree: TreeId(n.tree.0 - base),
                    distance: n.distance,
                })
                .collect();
            let mut rows = observer.into_candidates(&local_results, |id| range_bound(shard, id));
            for row in &mut rows {
                row.tree = TreeId(row.tree.0 + base);
            }
            candidates.extend(rows);
        }
        // Per-shard rows are ascending and bases ascend, so this is
        // already sorted; keep the sort as a cheap invariant guard.
        candidates.sort_by_key(|c| c.tree);
        candidates
    }

    /// Cascade depth (identical across shards).
    fn stages(&self) -> usize {
        self.engines
            .first()
            .map_or(1, |engine| engine.filter().stages())
    }

    /// Cascade stage names, coarsest first (identical across shards).
    fn stage_names(&self) -> Vec<&'static str> {
        self.engines.first().map_or_else(Vec::new, |engine| {
            (0..engine.filter().stages())
                .map(|s| engine.filter().stage_name(s))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::PostingsFilter;
    use crate::SearchEngine;

    fn forest() -> Forest {
        let mut forest = Forest::new();
        for spec in [
            "a(b(c(d)) b e)",
            "a(c(d) b e)",
            "a(b c)",
            "x(y z)",
            "a(b(c d e) f)",
            "a(b(c(d)) b e f)",
            "q(r(s))",
            "a(b c d)",
            "x(y(z) w)",
            "a(a(a) a)",
        ] {
            forest.parse_bracket(spec).unwrap();
        }
        forest
    }

    fn single_engine(forest: &Forest) -> SearchEngine<'_, PostingsFilter> {
        SearchEngine::new(forest, PostingsFilter::build(forest, 2))
    }

    #[test]
    fn split_covers_the_forest_contiguously() {
        let forest = forest();
        for shard_count in [1usize, 2, 3, 4, 10, 100] {
            let sharded = ShardedForest::split(&forest, shard_count);
            assert_eq!(sharded.len(), forest.len());
            assert!(sharded.shard_count() <= shard_count.max(1));
            let mut seen = 0usize;
            for (shard, part) in sharded.shards().iter().enumerate() {
                for (local, tree) in part.iter() {
                    let global = sharded.global_id(shard, local);
                    assert_eq!(global, TreeId(seen as u32));
                    assert_eq!(tree.len(), forest.tree(global).len());
                    seen += 1;
                }
            }
            assert_eq!(seen, forest.len());
        }
    }

    #[test]
    fn sharded_knn_matches_single_engine() {
        let forest = forest();
        let single = single_engine(&forest);
        for shard_count in [1usize, 2, 4] {
            let sharded_forest = ShardedForest::split(&forest, shard_count);
            let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
            assert_eq!(sharded.shard_count(), shard_count);
            for (_, query) in forest.iter() {
                for k in [1usize, 3, forest.len(), forest.len() + 5] {
                    let (want, _) = single.knn(query, k);
                    let (got, stats) = sharded.knn(query, k);
                    assert_eq!(got, want, "S={shard_count} k={k}");
                    assert_eq!(stats.dataset_size, forest.len());
                    assert_eq!(stats.threads, shard_count);
                }
            }
        }
    }

    #[test]
    fn sharded_range_matches_single_engine() {
        let forest = forest();
        let single = single_engine(&forest);
        for shard_count in [1usize, 3, 4] {
            let sharded_forest = ShardedForest::split(&forest, shard_count);
            let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
            for (_, query) in forest.iter() {
                for tau in 0..=5u32 {
                    let (want, _) = single.range(query, tau);
                    let (got, stats) = sharded.range(query, tau);
                    assert_eq!(got, want, "S={shard_count} tau={tau}");
                    assert_eq!(stats.results, want.len());
                }
            }
        }
    }

    #[test]
    fn merged_stats_telescope_and_account_for_every_tree() {
        let forest = forest();
        let sharded_forest = ShardedForest::split(&forest, 3);
        let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
        for (_, query) in forest.iter() {
            let (_, stats) = sharded.range(query, 2);
            assert_eq!(
                stats.stages.iter().map(|s| s.name).collect::<Vec<_>>(),
                vec!["postings", "size", "bdist", "propt"]
            );
            assert_eq!(stats.stages[0].evaluated, forest.len());
            for pair in stats.stages.windows(2) {
                assert_eq!(pair[0].survivors(), pair[1].evaluated);
            }
            assert_eq!(stats.stages.last().unwrap().survivors(), stats.refined);

            let (_, stats) = sharded.knn(query, 3);
            assert_eq!(stats.stages[0].evaluated, forest.len());
            let pruned: usize = stats.stages.iter().map(|s| s.pruned).sum();
            assert_eq!(pruned + stats.refined, forest.len());
        }
    }

    #[test]
    fn sharded_explain_telescopes_and_matches_query() {
        let forest = forest();
        let sharded_forest = ShardedForest::split(&forest, 4);
        let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
        for (_, query) in forest.iter().take(4) {
            let report = sharded.explain_knn(query, 3);
            let (plain, _) = sharded.knn(query, 3);
            assert_eq!(report.results, plain);
            report.check_consistency().unwrap();
            assert_eq!(report.candidates.len(), forest.len());
            for pair in report.candidates.windows(2) {
                assert!(pair[0].tree < pair[1].tree, "rows out of order");
            }

            let report = sharded.explain_range(query, 2);
            let (plain, _) = sharded.range(query, 2);
            assert_eq!(report.results, plain);
            report.check_consistency().unwrap();
            assert_eq!(report.stage_names[0], "postings");
        }
    }

    #[test]
    fn degenerate_forests() {
        let empty = Forest::new();
        let sharded_forest = ShardedForest::split(&empty, 4);
        assert!(sharded_forest.is_empty());
        assert_eq!(sharded_forest.shard_count(), 1);
        let sharded = ShardedEngine::new(&sharded_forest, |s| PostingsFilter::build(s, 2));
        assert!(sharded.is_empty());
        let mut one = Forest::new();
        let query = {
            one.parse_bracket("a(b)").unwrap();
            one.tree(TreeId(0)).clone()
        };
        let (results, stats) = sharded.knn(&query, 3);
        assert!(results.is_empty());
        assert_eq!(stats.dataset_size, 0);

        let sharded_one = ShardedForest::split(&one, 5);
        assert_eq!(sharded_one.shard_count(), 1);
        let engine = ShardedEngine::new(&sharded_one, |s| PostingsFilter::build(s, 2));
        assert_eq!(engine.len(), 1);
        let (results, _) = engine.knn(&query, 1);
        assert_eq!(
            results,
            vec![Neighbor {
                tree: TreeId(0),
                distance: 0
            }]
        );
        let (results, _) = engine.range(&query, 0);
        assert_eq!(results.len(), 1);
    }
}
