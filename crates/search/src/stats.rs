//! Per-query statistics — the quantities reported in the paper's figures.

use std::time::Duration;

/// Measurements collected while answering one similarity query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of trees in the dataset.
    pub dataset_size: usize,
    /// Trees whose real edit distance was computed (true + false positives —
    /// the "% of accessed data" numerator of Figures 7–14).
    pub refined: usize,
    /// Trees in the final result set (true positives).
    pub results: usize,
    /// Time spent computing lower bounds.
    pub filter_time: Duration,
    /// Time spent computing real edit distances.
    pub refine_time: Duration,
}

impl SearchStats {
    /// The paper's headline metric:
    /// `(|TruePositive| + |FalsePositive|) / |Dataset| × 100 %`.
    pub fn accessed_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.refined as f64 / self.dataset_size as f64 * 100.0
    }

    /// Fraction of the result set within the accessed data (selectivity).
    pub fn result_percent(&self) -> f64 {
        if self.dataset_size == 0 {
            return 0.0;
        }
        self.results as f64 / self.dataset_size as f64 * 100.0
    }

    /// Total query time.
    pub fn total_time(&self) -> Duration {
        self.filter_time + self.refine_time
    }

    /// Accumulates another query's stats (for workload averages).
    pub fn accumulate(&mut self, other: &SearchStats) {
        self.dataset_size = other.dataset_size;
        self.refined += other.refined;
        self.results += other.results;
        self.filter_time += other.filter_time;
        self.refine_time += other.refine_time;
    }

    /// Divides accumulated counters by the number of queries.
    pub fn averaged(&self, queries: usize) -> AveragedStats {
        let q = queries.max(1) as f64;
        AveragedStats {
            queries,
            dataset_size: self.dataset_size,
            avg_refined: self.refined as f64 / q,
            avg_results: self.results as f64 / q,
            avg_accessed_percent: self.accessed_percent() / q,
            avg_result_percent: self.result_percent() / q,
            avg_filter_time: self.filter_time.div_f64(q),
            avg_refine_time: self.refine_time.div_f64(q),
        }
    }
}

/// Workload-averaged statistics (the paper averages over 100 queries).
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedStats {
    /// Number of queries averaged over.
    pub queries: usize,
    /// Dataset size.
    pub dataset_size: usize,
    /// Mean number of refined (accessed) trees per query.
    pub avg_refined: f64,
    /// Mean result-set size per query.
    pub avg_results: f64,
    /// Mean accessed-data percentage per query.
    pub avg_accessed_percent: f64,
    /// Mean result percentage per query.
    pub avg_result_percent: f64,
    /// Mean filtering time per query.
    pub avg_filter_time: Duration,
    /// Mean refinement time per query.
    pub avg_refine_time: Duration,
}

impl AveragedStats {
    /// Mean total time per query.
    pub fn avg_total_time(&self) -> Duration {
        self.avg_filter_time + self.avg_refine_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessed_percent_basic() {
        let stats = SearchStats {
            dataset_size: 200,
            refined: 10,
            results: 5,
            ..Default::default()
        };
        assert!((stats.accessed_percent() - 5.0).abs() < 1e-12);
        assert!((stats.result_percent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_zero_percent() {
        let stats = SearchStats::default();
        assert_eq!(stats.accessed_percent(), 0.0);
        assert_eq!(stats.result_percent(), 0.0);
    }

    #[test]
    fn accumulate_and_average() {
        let mut total = SearchStats::default();
        for refined in [10, 20] {
            total.accumulate(&SearchStats {
                dataset_size: 100,
                refined,
                results: 5,
                filter_time: Duration::from_millis(2),
                refine_time: Duration::from_millis(8),
            });
        }
        assert_eq!(total.refined, 30);
        let averaged = total.averaged(2);
        assert!((averaged.avg_refined - 15.0).abs() < 1e-12);
        assert!((averaged.avg_accessed_percent - 15.0).abs() < 1e-12);
        assert_eq!(averaged.avg_total_time(), Duration::from_millis(10));
    }
}
